"""State-model data structures (Soteria Sec. 4.2).

A state model is a triple (Q, Sigma, delta): Q the set of states (tuples of
attribute values), Sigma the transition labels (events + residual guards),
and delta the labelled transition function.  Soteria restricts attention to
deterministic models and reports nondeterminism as a safety violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.abstraction import AbstractDomain
from repro.analysis.predicates import PathCondition, render_condition
from repro.analysis.symexec import Action, PathSummary
from repro.ir.ir import EntryPoint
from repro.platform.events import Event

#: A state: attribute values, positionally aligned with
#: :attr:`StateModel.attributes`.
State = tuple[str, ...]


@dataclass(frozen=True)
class StateAttribute:
    """One dimension of the state space."""

    device: str
    attribute: str
    domain: tuple[str, ...]
    is_numeric: bool = False

    @property
    def qualified(self) -> str:
        return f"{self.device}.{self.attribute}"


@dataclass(frozen=True)
class Transition:
    """One labelled transition of delta."""

    source: State
    target: State
    event: Event
    condition: PathCondition = ()
    actions: tuple[Action, ...] = ()
    app: str = ""
    via_reflection: bool = False
    sends: tuple[str, ...] = ()

    def label(self) -> str:
        text = self.event.label()
        guard = render_condition(self.condition)
        if guard:
            text += f" [{guard}]"
        return text


@dataclass
class StateModel:
    """The extracted model of one app (or a union of apps)."""

    name: str
    attributes: list[StateAttribute]
    states: list[State] = field(default_factory=list)
    transitions: list[Transition] = field(default_factory=list)
    #: The symbolic transition rules the model was expanded from; general
    #: properties S.1-S.5 are checked on these.
    rules: dict[EntryPoint, list[PathSummary]] = field(default_factory=dict)
    numeric_domains: dict[tuple[str, str], AbstractDomain] = field(
        default_factory=dict
    )
    #: Raw state count before property abstraction (Fig. 11 top).
    raw_state_count: int = 0
    apps: list[str] = field(default_factory=list)
    #: (app, rule) pairs — app attribution survives the union (Algorithm 2),
    #: which general multi-app property checks need.
    rule_origins: list[tuple[str, PathSummary]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def attribute_index(self, device: str, attribute: str) -> int | None:
        for index, attr in enumerate(self.attributes):
            if attr.device == device and attr.attribute == attribute:
                return index
        return None

    def value_in(self, state: State, device: str, attribute: str) -> str | None:
        index = self.attribute_index(device, attribute)
        if index is None:
            return None
        return state[index]

    def state_label(self, state: State) -> str:
        """Render a state the way the paper's Fig. 9 does:
        ``[water.wet, valve.close]``."""
        parts = []
        for attr, value in zip(self.attributes, state):
            parts.append(f"{attr.attribute}.{value}")
        return "[" + ", ".join(parts) + "]"

    def out_transitions(self, state: State) -> list[Transition]:
        return [t for t in self.transitions if t.source == state]

    def events(self) -> list[Event]:
        seen: list[Event] = []
        for transition in self.transitions:
            if transition.event not in seen:
                seen.append(transition.event)
        return seen

    def all_rules(self) -> list[PathSummary]:
        flattened: list[PathSummary] = []
        for summaries in self.rules.values():
            flattened.extend(summaries)
        return flattened

    def size(self) -> int:
        return len(self.states)

    # ------------------------------------------------------------------
    def nondeterministic_pairs(self) -> list[tuple[Transition, Transition]]:
        """Transition pairs violating determinism: same source state, same
        concrete event, compatible guards, different targets.

        The paper: "after a state model is extracted, Soteria reports
        nondeterministic state models as a safety violation."
        """
        from repro.analysis.feasibility import is_feasible

        by_key: dict[tuple[State, str], list[Transition]] = {}
        for transition in self.transitions:
            key = (transition.source, transition.event.label())
            by_key.setdefault(key, []).append(transition)
        pairs: list[tuple[Transition, Transition]] = []
        for group in by_key.values():
            for i, first in enumerate(group):
                for second in group[i + 1 :]:
                    if first.target == second.target:
                        continue
                    if first.via_reflection or second.via_reflection:
                        # Reflection over-approximates the call graph; the
                        # induced branching is not real nondeterminism.
                        continue
                    combined = tuple(first.condition) + tuple(second.condition)
                    if is_feasible(combined):
                        pairs.append((first, second))
        return pairs
