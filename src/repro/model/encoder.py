"""Symbolic union encoding: per-app state models -> BDDs, no product.

:func:`build_union_model` materializes Algorithm 2's Cartesian product
before anything is checked, which caps multi-app analysis at the state
budget (the 13-app MalIoT interaction cluster alone unions to ~82 944
states).  This module is the non-materializing path: it compiles the
*symbolic rules* of each app straight into a BDD transition relation over
shared attribute variables, so the product only ever exists implicitly.

Variable blocks
---------------
Every attribute of the deduplicated union attribute set (apps sharing a
device handle share the attribute, hence the *same* variable block) gets a
block of ``ceil(log2 |domain|)`` boolean variables encoding the index of
its current value, with current (``x``) and next (``y``) bits interleaved
— the standard good ordering for transition relations.  One extra block
encodes the *incoming fragment*: which symbolic transition produced the
state.  That block carries the transition-derived atomic propositions of
the explicit Kripke construction (``ev:``, ``act:``, ``actsrc:``,
``cmd:``, ``app:``, ``sent-notification``, ...), so CTL formulas written
against :mod:`repro.model.kripke`'s vocabulary check unchanged.  (The
state-dependent residual-guard ``src:`` labels are the one deliberate
omission: no property references them, and dropping them is exactly the
bisimulation quotient that keeps every CTL verdict identical.)

Fragments
---------
A *fragment* is one symbolic transition: an app's path summary fired for
one concrete event value.  Its guard is decided per referenced attribute
value (never per product state), its action writes are state-independent
labels, and every untouched attribute keeps its value through an
``x = y`` frame constraint.  The union transition relation is the
disjunction of all fragments — asynchronous interleaving, exactly the
explicit expansion's semantics — made total by identity self-loops on
deadlocked states.  Reachability is a symbolic least fixpoint from the
initial-state BDD; the breadth-first frontiers are kept for
counterexample witness extraction in :mod:`repro.mc.symbolic`.

Encodings
---------
Two interchangeable relation encodings produce identical state sets:

* ``monolithic`` — conjoin every fragment with its frame constraints and
  disjoin everything into one relation BDD.  Fine for paper-scale
  clusters, but each fragment's frame mentions *every* variable block, so
  the single relation blows up combinatorially on wide unions (the
  82-app all-corpus union never finishes encoding).
* ``partitioned`` — keep the disjunctive partition: one cluster per
  app/event fragment, stored as its x-side firing conjuncts plus the
  cube of written next values, with no frame constraints at all.  Images
  and preimages are computed fragment by fragment through
  :meth:`repro.mc.bdd.BDD.and_exists_list`, which existentially
  quantifies each variable out as soon as no later conjunct of the
  schedule mentions it; untouched attributes simply *stay in place*
  (the frame is implicit), so no BDD ever mentions more variables than
  one fragment touches.  This is Burch et al.'s partitioned transition
  relation specialised to asynchronous interleaving, and it is what
  makes the all-corpus union checkable.

``auto`` picks per model: partitioned above
:data:`PARTITION_FRAGMENT_THRESHOLD` fragments, monolithic below (small
unions check marginally faster on the fused relation).  Both encodings
arm sifting-based dynamic variable reordering
(:meth:`repro.mc.bdd.BDD.sift`) on node-count growth during encoding and
reachability, moving interleaved (x, y) pairs as indivisible groups so
the pairing invariant survives any reorder.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.mc.kernel import BddKernel, make_kernel
from repro.model.extractor import (
    _decide_atom,
    _moved_attribute,
    _numeric_write_label,
    _resolve_operand,
)
from repro.model.kripke import KripkeState, attr_prop, transition_props
from repro.model.statemodel import StateModel, Transition
from repro.platform.events import Event


#: Recognized relation encodings.
ENCODINGS = ("auto", "monolithic", "partitioned")

#: Fragment count beyond which ``auto`` switches from the monolithic
#: relation to the disjunctive partition.  Paper-scale clusters (every
#: Table-4 group, every MalIoT environment — the 13-app cluster encodes
#: ~70 fragments) stay monolithic; corpus-wide unions partition.
PARTITION_FRAGMENT_THRESHOLD = 96

#: Live-node-count trigger for the first automatic sift during encoding
#: and reachability (doubles after every reorder, CUDD-style).
REORDER_NODE_THRESHOLD = 60_000


def resolve_encoding(encoding: str, fragment_count: int) -> str:
    """Pick the relation encoding for a model of ``fragment_count``
    fragments: ``auto`` partitions above
    :data:`PARTITION_FRAGMENT_THRESHOLD`; explicit choices are honored."""
    if encoding not in ENCODINGS:
        raise ValueError(
            f"unknown encoding {encoding!r}; expected one of {', '.join(ENCODINGS)}"
        )
    if encoding != "auto":
        return encoding
    return (
        "partitioned"
        if fragment_count > PARTITION_FRAGMENT_THRESHOLD
        else "monolithic"
    )


@dataclass(frozen=True)
class Fragment:
    """One symbolic transition of the union relation.

    ``fid`` is the fragment's code in the incoming-fragment block (0 is
    reserved for "no incoming transition", the initial states).
    """

    fid: int
    app: str
    event: Event                  # concretized (value filled in)
    moved_index: int | None
    new_value: str | None
    writes: tuple[tuple[int, str], ...]   # (attribute index, new label)
    props: tuple[str, ...]        # transition-derived propositions
    via_reflection: bool = False


# ----------------------------------------------------------------------
# Fragment enumeration and firing semantics, shared by every symbolic
# backend: the BDD encodings below and the CNF unroller (repro.mc.cnf)
# compile the *same* fragment descriptors and guard tables, which is what
# makes their transition relations identical by construction.
# ----------------------------------------------------------------------
def enumerate_fragments(model: StateModel):
    """All fragments of ``model``'s union rules, with their summaries.

    Mirrors ``extractor._expand_summary`` minus the per-state loop:
    everything here is state-independent.
    """
    descriptors = []
    fid = 0
    for app, summary in model.rule_origins:
        entry = summary.entry
        event = entry.event
        moved = _moved_attribute(model, event)
        if moved is None:
            if not summary.actions:
                continue  # no-op timer path, skipped by the expansion
            candidates: list[tuple[int | None, str | None]] = [(None, None)]
        else:
            index, attr = moved
            if event.value is not None:
                candidates = [(index, event.value)]
            else:
                candidates = [(index, value) for value in attr.domain]
        for index, new_value in candidates:
            if index is not None and new_value is not None:
                if new_value not in model.attributes[index].domain:
                    # The explicit path would carry this transition to a
                    # state outside the domain product; no corpus app
                    # subscribes to an out-of-domain value (asserted by
                    # the differential suite), so the fragment is moot.
                    continue
            fid += 1
            descriptors.append(
                (_make_fragment(model, fid, app, summary, index, new_value), summary)
            )
    return descriptors


def _make_fragment(model: StateModel, fid, app, summary, index, new_value):
    event = summary.entry.event
    concrete_event = (
        Event(event.kind, event.device, event.attribute, new_value)
        if index is not None
        else event
    )
    writes: dict[int, str] = {}
    if index is not None and new_value is not None:
        writes[index] = new_value
    for action in summary.actions:
        if action.attribute is None:
            continue
        target = model.attribute_index(action.device, action.attribute)
        if target is None:
            continue
        attr = model.attributes[target]
        if attr.is_numeric:
            label = _numeric_write_label(model, attr, action.value)
            if label is not None:
                writes[target] = label
        elif isinstance(action.value, str) and action.value in attr.domain:
            writes[target] = action.value
    witness = Transition(
        source=(),
        target=(),
        event=concrete_event,
        condition=(),   # residual guards are state-dependent; their
                        # src: labels are the documented omission
        actions=summary.actions,
        app=app,
        via_reflection=summary.uses_reflection,
        sends=summary.sends,
    )
    props = tuple(
        p for p in transition_props(witness) if not p.startswith("src:")
    )
    return Fragment(
        fid=fid,
        app=app,
        event=concrete_event,
        moved_index=index,
        new_value=new_value,
        writes=tuple(sorted(writes.items())),
        props=props,
        via_reflection=summary.uses_reflection,
    )


def atom_guard_table(model: StateModel, atom, moved_index, new_value, event):
    """The value combinations under which ``atom`` is not definitely
    false — the state-independent analogue of the expansion's per-state
    guard decision.  Undecidable combinations stay permitted (they are
    residual labels, not restrictions), exactly like
    :func:`extractor._decide_condition`.

    Returns ``True`` (no referenced attributes, atom not definitely
    false), ``False`` (atom definitely false), or a ``(refs, combos)``
    pair: the referenced attribute indices and the allowed value-label
    tuples over them, in domain-product order.
    """
    from repro.analysis.values import DeviceRead

    refs: list[int] = []
    for operand in (atom.lhs, atom.rhs):
        if isinstance(operand, DeviceRead):
            index = model.attribute_index(operand.device, operand.attribute)
            if index is None:
                continue
            if index == moved_index and new_value is not None:
                continue  # reads of the event device see the new value
            if index not in refs:
                refs.append(index)
    template = [attr.domain[0] if attr.domain else "" for attr in model.attributes]
    if not refs:
        state = tuple(template)
        lhs = _resolve_operand(model, atom.lhs, state, moved_index, new_value, event)
        rhs = _resolve_operand(model, atom.rhs, state, moved_index, new_value, event)
        return _decide_atom(lhs, atom.op, rhs) is not False
    allowed: list[tuple[str, ...]] = []
    domains = [model.attributes[index].domain for index in refs]
    for combo in itertools.product(*domains):
        for index, value in zip(refs, combo):
            template[index] = value
        state = tuple(template)
        lhs = _resolve_operand(model, atom.lhs, state, moved_index, new_value, event)
        rhs = _resolve_operand(model, atom.rhs, state, moved_index, new_value, event)
        if _decide_atom(lhs, atom.op, rhs) is False:
            continue
        allowed.append(combo)
    return tuple(refs), allowed


def fire_requirements(model: StateModel, written, fragment: Fragment, summary):
    """The state-side firing requirements of one fragment, or ``None``
    when it can never fire.

    The single definition of the firing semantics shared by every
    encoding (BDD monolithic/partitioned and CNF):

    * the fire-on-change condition — device events fire on attribute
      *changes*, except that app-written values re-stimulate
      co-installed subscribers (multi-app cascades, Sec. 4.4);
    * every guard atom's not-definitely-false region.

    Each requirement is ``("change", index, label)`` (attribute ``index``
    must *not* currently hold ``label``) or ``("atom", refs, combos)``
    (the referenced attributes must jointly hold one of the allowed
    label combinations).
    """
    index, new_value = fragment.moved_index, fragment.new_value
    requirements: list[tuple] = []
    if index is not None and new_value is not None:
        attr = model.attributes[index]
        if (
            not attr.is_numeric
            and (attr.device, attr.attribute, new_value) not in written
        ):
            requirements.append(("change", index, new_value))
    for atom in summary.condition:
        table = atom_guard_table(model, atom, index, new_value, summary.entry.event)
        if table is False:
            return None
        if table is True:
            continue
        refs, combos = table
        if not combos:
            return None
        requirements.append(("atom", refs, combos))
    return requirements


@dataclass(frozen=True)
class _Partition:
    """One cluster of the disjunctive transition partition.

    The relation restricted to one fragment is
    ``fire(x) & writes(y) & frame(x, y)`` — but the frame is never built:
    images keep the untouched current-state variables in place and only
    quantify ``quant_x`` (the written blocks plus the incoming-fragment
    block), then stamp ``write_x``, the written values re-encoded over
    *current*-state variables.
    """

    fragment: Fragment
    #: x-side firing conjuncts (change condition + guard atoms), kept
    #: unconjoined so the early-quantification schedule can interleave
    #: them with the frontier set.
    fire: tuple[int, ...]
    #: The conjunction of ``fire`` (used for preimages and deadlock).
    fire_all: int
    #: Written values + fragment id, as a cube over x variables.
    write_x: int
    #: x variables whose post-value is fixed by the fragment.
    quant_x: tuple[str, ...]


class SymbolicUnionModel:
    """A union state model compiled to BDDs, product never enumerated.

    Built from a :func:`repro.model.union.build_union_skeleton` result:
    the skeleton's ``rule_origins`` carry every app's renamed rules, its
    ``attributes`` are the shared variable blocks.  Exposes the transition
    relation (monolithic encoding) or the disjunctive partition
    (``partitioned``), the initial-state set, the reachable set with its
    BFS frontiers, and a proposition map — everything
    :class:`repro.mc.symbolic.SymbolicModelChecker` needs.
    """

    def __init__(
        self,
        model: StateModel,
        encoding: str = "auto",
        reorder_threshold: int | None = REORDER_NODE_THRESHOLD,
        written: frozenset[tuple[str, str, str]] | None = None,
        kernel: str | BddKernel = "auto",
    ) -> None:
        # A materialized model works too (its states list is simply
        # ignored); the point is that a skeleton suffices.
        #
        # ``written`` overrides the app-written value set that exempts
        # events from the fire-on-change rule.  The default derives it
        # from the rules (multi-app cascade semantics, Sec. 4.4); the
        # single-app symbolic path passes ``frozenset()`` to match the
        # explicit single-app expansion, which never self-stimulates.
        # ``kernel`` names a BDD implementation from the pluggable-kernel
        # registry (``auto`` resolves to the fast array-backed one), or is
        # a pre-built manager instance injected by the caller.  Everything
        # below programs against the :class:`~repro.mc.kernel.BddKernel`
        # protocol only.
        self.model = model
        self.bdd: BddKernel = make_kernel(kernel)
        self.kernel = getattr(self.bdd, "KERNEL_NAME", type(self.bdd).__name__)

        from repro.model.union import union_written_values

        self._written = (
            union_written_values(model.rule_origins) if written is None else written
        )
        descriptors = enumerate_fragments(model)
        self.fragments: dict[int, Fragment] = {f.fid: f for f, _s in descriptors}
        self.requested_encoding = encoding
        self.encoding = resolve_encoding(encoding, len(self.fragments))

        # ---- variable allocation: the fragment block on top, then the
        # attribute blocks, x/y interleaved inside every block.  Top
        # placement matters: reachable sets and frontiers are unions of
        # per-fragment-labelled slices, and with the label on top such a
        # union is a prefix tree over the fragment id whose size is the
        # *sum* of the per-fragment slices.  With the label at the bottom
        # it is the attributes -> fragment-set map, which explodes
        # combinatorially on wide unions (measured: a 14-app frontier
        # grows 128k nodes bottom-labelled vs ~2k top-labelled).
        nfrag = len(self.fragments)
        self._frag_bits = max(1, nfrag.bit_length())
        self._frag_x: list[str] = []
        self._frag_y: list[str] = []
        for bit in range(self._frag_bits):
            self.bdd.add_var(f"fb{bit}x")
            self.bdd.add_var(f"fb{bit}y")
            self._frag_x.append(f"fb{bit}x")
            self._frag_y.append(f"fb{bit}y")
        self._block_bits: list[int] = [
            max(1, (len(attr.domain) - 1).bit_length()) for attr in model.attributes
        ]
        self._xbits: list[list[str]] = []
        self._ybits: list[list[str]] = []
        for index, bits in enumerate(self._block_bits):
            xs, ys = [], []
            for bit in range(bits):
                xs.append(f"a{index}b{bit}x")
                ys.append(f"a{index}b{bit}y")
                self.bdd.add_var(xs[-1])
                self.bdd.add_var(ys[-1])
            self._xbits.append(xs)
            self._ybits.append(ys)
        self.xvars = [v for xs in self._xbits for v in xs] + self._frag_x
        self.yvars = [v for ys in self._ybits for v in ys] + self._frag_y
        self._x_to_y = dict(zip(self.xvars, self.yvars))
        self._y_to_x = dict(zip(self.yvars, self.xvars))

        # ---- dynamic reordering: sift (x, y) pairs as indivisible groups
        # whenever the node table outgrows the threshold.  Armed only while
        # this constructor runs: every live id below is protected as it is
        # stored, which is exactly the window where the GC root set is
        # fully enumerable.
        if reorder_threshold is not None:
            self.bdd.set_auto_reorder(self.reorder_groups(), reorder_threshold)

        # ---- state-space pieces.
        protect = self.bdd.protect
        self.valid = protect(
            self.bdd.conj(
                [self._block_valid(index) for index in range(len(model.attributes))]
            )
        )
        self.initial = protect(self.bdd.and_(self.valid, self._frag_cube(0)))
        self.partitions: list[_Partition] | None
        #: States without an enabled fragment (self-loop targets); kept in
        #: partitioned mode where the totalising loops are implicit.
        self._dead: int | None
        if self.encoding == "partitioned":
            self.relation = None
            self.partitions = self._build_partitions(descriptors)
        else:
            self.relation = protect(self._build_relation(descriptors))
            self.partitions = None
            self._dead = None
        self.reachable, self.frontiers = self._compute_reachable()
        protect(self.reachable)
        # Last safe point: everything live is protected, so give the
        # manager one more reorder opportunity before the CTL phase runs
        # on a frozen order (the checker cannot enumerate its transient
        # fixpoint roots, so reordering is disarmed beyond this line).
        self.bdd.maybe_reorder()
        self.bdd.disable_auto_reorder()
        self.prop_map = self._build_prop_map()
        for prop in self.prop_map.values():
            protect(prop)

    def reorder_groups(self) -> list[list[str]]:
        """The sifting groups: every interleaved (x, y) variable pair.

        Moving pairs as blocks is what preserves the encoder's pairing
        invariant — after any reorder, each current-state bit is still
        immediately followed by its next-state twin.
        """
        groups = [
            [xname, yname]
            for xs, ys in zip(self._xbits, self._ybits)
            for xname, yname in zip(xs, ys)
        ]
        groups.extend(
            [xname, yname] for xname, yname in zip(self._frag_x, self._frag_y)
        )
        return groups

    # ------------------------------------------------------------------
    # Encoding primitives
    # ------------------------------------------------------------------
    def _code_cube(self, names: list[str], code: int) -> int:
        terms = []
        for bit, name in enumerate(names):
            terms.append(
                self.bdd.var(name) if (code >> bit) & 1 else self.bdd.nvar(name)
            )
        return self.bdd.conj(terms)

    def value_cube(self, index: int, label: str, prime: bool = False) -> int:
        """BDD for "attribute ``index`` holds ``label``" (x or y bits)."""
        code = self.model.attributes[index].domain.index(label)
        names = self._ybits[index] if prime else self._xbits[index]
        return self._code_cube(names, code)

    def _frag_cube(self, fid: int, prime: bool = False) -> int:
        names = self._frag_y if prime else self._frag_x
        return self._code_cube(names, fid)

    def _block_valid(self, index: int) -> int:
        domain = self.model.attributes[index].domain
        size = max(1, len(domain))
        if size == 1 << self._block_bits[index]:
            return self.bdd.TRUE
        return self.bdd.disj(
            [self._code_cube(self._xbits[index], code) for code in range(size)]
        )

    def _block_identity(self, index: int) -> int:
        terms = []
        for xname, yname in zip(self._xbits[index], self._ybits[index]):
            terms.append(self.bdd.iff(self.bdd.var(xname), self.bdd.var(yname)))
        return self.bdd.conj(terms)

    def _identity_all(self) -> int:
        terms = [
            self._block_identity(index) for index in range(len(self.model.attributes))
        ]
        for xname, yname in zip(self._frag_x, self._frag_y):
            terms.append(self.bdd.iff(self.bdd.var(xname), self.bdd.var(yname)))
        return self.bdd.conj(terms)

    # ------------------------------------------------------------------
    # Relation
    # ------------------------------------------------------------------
    def _fire_conjuncts(self, fragment: Fragment, summary) -> list[int] | None:
        """The x-side firing conjuncts of one fragment, or None when it
        can never fire: the shared :func:`fire_requirements` semantics
        rendered as BDDs (the monolithic relation conjoins the list, the
        partition keeps it for the early-quantification schedule)."""
        bdd = self.bdd
        requirements = fire_requirements(self.model, self._written, fragment, summary)
        if requirements is None:
            return None
        conjuncts: list[int] = []
        for requirement in requirements:
            if requirement[0] == "change":
                _, index, label = requirement
                conjuncts.append(bdd.not_(self.value_cube(index, label)))
            else:
                _, refs, combos = requirement
                conjuncts.append(
                    bdd.disj(
                        [
                            bdd.conj(
                                [
                                    self.value_cube(index, value)
                                    for index, value in zip(refs, combo)
                                ]
                            )
                            for combo in combos
                        ]
                    )
                )
        return conjuncts

    def _build_relation(self, descriptors) -> int:
        bdd = self.bdd
        terms = []
        for fragment, summary in descriptors:
            conjuncts = self._fire_conjuncts(fragment, summary)
            if conjuncts is None:
                continue
            term = bdd.conj(conjuncts)
            if term == bdd.FALSE:
                continue  # contradictory guard atoms: never fires
            written = dict(fragment.writes)
            for attr_index in range(len(self.model.attributes)):
                if attr_index in written:
                    term = bdd.and_(
                        term, self.value_cube(attr_index, written[attr_index], prime=True)
                    )
                else:
                    term = bdd.and_(term, self._block_identity(attr_index))
            term = bdd.and_(term, self._frag_cube(fragment.fid, prime=True))
            terms.append(bdd.protect(term))
            bdd.maybe_reorder()
        relation = bdd.disj(terms)
        for term in terms:
            bdd.unprotect(term)
        # Totalise: deadlocked states self-loop, keeping their incoming
        # label — CTL semantics require a total relation.
        has_successor = bdd.exists(self.yvars, relation)
        dead = bdd.and_(self.valid, bdd.not_(has_successor))
        if dead != bdd.FALSE:
            relation = bdd.or_(relation, bdd.and_(dead, self._identity_all()))
        return relation

    # ------------------------------------------------------------------
    # The disjunctive partition (no frames, no monolithic relation)
    # ------------------------------------------------------------------
    def _build_partitions(self, descriptors) -> list[_Partition]:
        bdd = self.bdd
        partitions: list[_Partition] = []
        fire_terms: list[int] = []
        for fragment, summary in descriptors:
            conjuncts = self._fire_conjuncts(fragment, summary)
            if conjuncts is None:
                continue
            fire_all = bdd.conj(conjuncts)
            if fire_all == bdd.FALSE:
                continue  # contradictory guard atoms: the fragment never fires
            written = dict(fragment.writes)
            write_terms = [
                self.value_cube(attr_index, value)
                for attr_index, value in sorted(written.items())
            ]
            write_terms.append(self._frag_cube(fragment.fid))
            write_x = bdd.conj(write_terms)
            quant_x = tuple(
                name
                for attr_index in sorted(written)
                for name in self._xbits[attr_index]
            ) + tuple(self._frag_x)
            for piece in conjuncts:
                bdd.protect(piece)
            bdd.protect(fire_all)
            bdd.protect(write_x)
            partitions.append(
                _Partition(
                    fragment=fragment,
                    fire=tuple(conjuncts),
                    fire_all=fire_all,
                    write_x=write_x,
                    quant_x=quant_x,
                )
            )
            fire_terms.append(fire_all)
            bdd.maybe_reorder()
        # Deadlocked states self-loop (identity frame, incoming label
        # kept): with the frame implicit, the loop is just "stay put".
        enabled = bdd.disj(fire_terms)
        self._dead = bdd.protect(bdd.and_(self.valid, bdd.not_(enabled)))
        return partitions

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def post(self, states: int) -> int:
        """Symbolic image: successors of ``states`` under the relation.

        Partitioned: fragment by fragment — quantify the written blocks
        out of ``states & fire`` on the early schedule (untouched blocks
        stay in place, the frame is implicit), stamp the written values,
        and disjoin; deadlocked states contribute themselves.  Monolithic:
        one fused relational product.  Both encodings return the same set.
        """
        if self.partitions is not None:
            bdd = self.bdd
            terms = []
            for part in self.partitions:
                image = bdd.and_exists_list(
                    list(part.quant_x), [states, *part.fire]
                )
                if image == bdd.FALSE:
                    continue
                terms.append(bdd.and_(part.write_x, image))
            terms.append(bdd.and_(states, self._dead))
            return bdd.disj(terms)
        primed = self.bdd.and_exists(self.xvars, self.relation, states)
        return self.bdd.rename(primed, self._y_to_x)

    def pre(self, states: int) -> int:
        """Symbolic preimage of ``states`` under the relation.

        Partitioned: for each fragment, cofactor ``states`` on the written
        values and the fragment id (quantifying those blocks out), then
        conjoin the firing condition; deadlocked states in ``states`` are
        their own predecessors.
        """
        if self.partitions is not None:
            bdd = self.bdd
            terms = []
            for part in self.partitions:
                hit = bdd.and_exists_list(
                    list(part.quant_x), [states, part.write_x]
                )
                if hit == bdd.FALSE:
                    continue
                terms.append(bdd.and_(part.fire_all, hit))
            terms.append(bdd.and_(states, self._dead))
            return bdd.disj(terms)
        primed = self.bdd.rename(states, self._x_to_y)
        return self.bdd.and_exists(self.yvars, self.relation, primed)

    def _compute_reachable(self) -> tuple[int, list[int]]:
        """Least fixpoint of ``post`` from the initial states.

        Returns (reachable set, BFS frontiers): ``frontiers[i]`` holds the
        states first reached in exactly ``i`` steps — the onion rings that
        counterexample extraction walks backwards for shortest paths.
        Between iterations the manager may sift (node-count trigger); the
        frontiers are protected as they are found, so a mid-fixpoint
        reorder never invalidates what witness decoding walks later.
        """
        frontier = self.initial
        reached = self.initial
        frontiers = [self.bdd.protect(frontier)]
        while True:
            step = self.post(frontier)
            frontier = self.bdd.and_(step, self.bdd.not_(reached))
            if frontier == self.bdd.FALSE:
                return reached, frontiers
            frontiers.append(self.bdd.protect(frontier))
            reached = self.bdd.or_(reached, frontier)
            self.bdd.maybe_reorder(extra_roots=(reached,))

    # ------------------------------------------------------------------
    # Propositions and decoding
    # ------------------------------------------------------------------
    def _build_prop_map(self) -> dict[str, int]:
        prop_map: dict[str, int] = {}
        for index, attr in enumerate(self.model.attributes):
            for value in attr.domain:
                prop_map[attr_prop(attr.device, attr.attribute, value)] = (
                    self.value_cube(index, value)
                )
        by_prop: dict[str, list[int]] = {}
        for fragment in self.fragments.values():
            for prop in fragment.props:
                by_prop.setdefault(prop, []).append(fragment.fid)
        for prop, fids in by_prop.items():
            cube = self.bdd.disj([self._frag_cube(fid) for fid in fids])
            existing = prop_map.get(prop)
            prop_map[prop] = (
                cube if existing is None else self.bdd.or_(existing, cube)
            )
        return prop_map

    def prop(self, name: str) -> int:
        """The BDD of one atomic proposition (FALSE when unknown)."""
        return self.prop_map.get(name, self.bdd.FALSE)

    # ------------------------------------------------------------------
    def state_cube(self, assignment: dict[str, bool]) -> int:
        """The x-cube pinning every current-state variable of a (possibly
        partial) satisfying assignment; unmentioned variables read False,
        matching :meth:`BDD.any_sat`'s completion convention."""
        terms = []
        for name in self.xvars:
            terms.append(
                self.bdd.var(name) if assignment.get(name, False) else self.bdd.nvar(name)
            )
        return self.bdd.conj(terms)

    def decode(self, assignment: dict[str, bool]) -> tuple[KripkeState, frozenset[str]]:
        """Turn a satisfying assignment over x-vars into the explicit
        Kripke node it denotes, plus that node's label set."""
        values = []
        for index, attr in enumerate(self.model.attributes):
            code = 0
            for bit, name in enumerate(self._xbits[index]):
                if assignment.get(name, False):
                    code |= 1 << bit
            domain = attr.domain or ("?",)
            values.append(domain[min(code, len(domain) - 1)])
        fid = 0
        for bit, name in enumerate(self._frag_x):
            if assignment.get(name, False):
                fid |= 1 << bit
        fragment = self.fragments.get(fid)
        incoming = fragment.props if fragment is not None else ()
        labels = {
            attr_prop(attr.device, attr.attribute, value)
            for attr, value in zip(self.model.attributes, values)
        } | set(incoming)
        return KripkeState(state=tuple(values), incoming=incoming), frozenset(labels)

    def state_count(self) -> int:
        """Number of reachable symbolic states (for reports/benchmarks).

        ``count_sat`` counts over every registered variable; the reachable
        set mentions only current-state variables, so each real state is
        counted once per next-state assignment — divide those back out.
        """
        return self.bdd.count_sat(self.reachable) >> len(self.yvars)


def encode_union(
    models: list[StateModel],
    shared_devices: dict[tuple[str, str], str] | None = None,
    encoding: str = "auto",
    kernel: str | BddKernel = "auto",
) -> SymbolicUnionModel:
    """Compile app state models into one symbolic union model.

    The convenience entry point: builds the non-materializing union
    skeleton (shared attribute variables for shared device handles) and
    encodes it.  ``shared_devices`` has :func:`build_union_model`'s
    meaning; ``encoding`` picks the relation representation (``auto``,
    ``monolithic``, or ``partitioned`` — see the module docstring);
    ``kernel`` picks the BDD kernel (``auto``, ``reference``, ``fast``).
    """
    from repro.model.union import build_union_skeleton

    return SymbolicUnionModel(
        build_union_skeleton(models, shared_devices=shared_devices),
        encoding=encoding,
        kernel=kernel,
    )
