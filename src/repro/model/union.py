"""Algorithm 2: the union of apps' state models (Soteria Sec. 4.4).

Apps installed together interact through shared devices and shared abstract
events (location mode).  The union model G' has states that are the
Cartesian product over the *deduplicated* attribute set (attributes of
devices appearing in multiple apps are merged), and every app's transitions
are lifted into G': a transition v -l-> u of app i becomes v' -l-> u' for
every union state v' containing v and the corresponding u' (the edge is
labelled with i).

Device identity: two apps reference the same physical device when their
permission *handles* match (the reproduction's stand-in for "the user
authorized the same devices at install time"); an explicit
``shared_devices`` mapping can override this.
"""

from __future__ import annotations

import itertools

from repro.model.extractor import StateExplosionError, expand_rules_into
from repro.model.statemodel import StateAttribute, StateModel
from repro.platform.capabilities import CapabilityDatabase, default_database


def build_union_model(
    models: list[StateModel],
    db: CapabilityDatabase | None = None,
    max_states: int = 250_000,
    shared_devices: dict[tuple[str, str], str] | None = None,
) -> StateModel:
    """Union the state models of apps running in concert (Algorithm 2).

    ``shared_devices`` optionally maps (app-name, handle) -> global device
    id; unmapped handles keep their own name (so equal handles are shared).

    This is the *explicit* path: the union's states are materialized as the
    Cartesian product over the deduplicated attribute set and every app's
    rules are expanded into concrete transitions.  For unions too large to
    enumerate, :func:`build_union_skeleton` builds the same model without
    states/transitions so :mod:`repro.model.encoder` can compile the rules
    directly to BDDs.
    """
    db = db or default_database()

    total = estimate_union_states(models, shared_devices)
    if total > max_states:
        raise StateExplosionError(
            f"union of {[m.name for m in models]}: {total} states exceed budget"
        )

    union = build_union_skeleton(models, db=db, shared_devices=shared_devices)
    union.states = (
        [
            tuple(combo)
            for combo in itertools.product(*(a.domain for a in union.attributes))
        ]
        if union.attributes
        else [()]
    )

    # ------------------------------------------------------------------
    # Lines 2-12: lift every app's transitions into G', labelled with the
    # originating app.  Expansion re-applies each app's symbolic rules in
    # the union space, which yields exactly "add e' = v' -l-> u' for every
    # v' containing v" (the rule fires from every union state whose
    # projection matches, and updates only that app's attributes).
    # ------------------------------------------------------------------
    written = union_written_values(union.rule_origins)
    per_app: dict[str, dict] = {}
    for app, summary in union.rule_origins:
        per_app.setdefault(app, {}).setdefault(summary.entry, []).append(summary)
    for app, renamed in per_app.items():
        expand_rules_into(union, renamed, app, db, app_written=written)
    return union


def build_union_skeleton(
    models: list[StateModel],
    db: CapabilityDatabase | None = None,
    shared_devices: dict[tuple[str, str], str] | None = None,
) -> StateModel:
    """Algorithm 2 without the Cartesian product: the union model's
    attributes, merged numeric domains, and renamed rules — but no
    materialized states or transitions.

    The skeleton carries everything the property catalog and the general
    checks need (``attributes``, ``numeric_domains``, ``rules``,
    ``rule_origins``), and is the input of
    :func:`repro.model.encoder.encode_union`, which compiles the rules
    straight to BDDs over shared attribute variables.  Its ``states`` list
    is intentionally empty: callers wanting the explicit product use
    :func:`build_union_model`.
    """
    db = db or default_database()
    mapping = shared_devices or {}

    def global_id(app: str, handle: str) -> str:
        return mapping.get((app, handle), handle)

    union_attrs, union_domains = _union_attributes(models, shared_devices)
    raw = 1
    for model in models:
        raw *= max(1, model.raw_state_count)

    union = StateModel(
        name="+".join(model.name for model in models),
        attributes=union_attrs,
        states=[],
        numeric_domains={k: v for k, v in union_domains.items()},  # type: ignore[misc]
        raw_state_count=raw,
        apps=[model.apps[0] if model.apps else model.name for model in models],
    )

    for model in models:
        app = model.apps[0] if model.apps else model.name
        renamed = _rename_rules(model, app, global_id)
        for entry, summaries in renamed.items():
            union.rules.setdefault(entry, []).extend(summaries)
            for summary in summaries:
                union.rule_origins.append((app, summary))
    return union


def union_written_values(
    rule_origins: list[tuple[str, object]],
) -> frozenset[tuple[str, str, str]]:
    """(device, attribute, value) triples some app actively writes.

    Events for app-written values re-stimulate subscribers in co-installed
    apps (handler cascades, Sec. 4.4), so both the explicit expansion and
    the symbolic encoder exempt them from the fire-on-change-only rule.
    """
    written: set[tuple[str, str, str]] = set()
    for _app, summary in rule_origins:
        for action in summary.actions:
            if action.attribute is not None and isinstance(action.value, str):
                written.add((action.device, action.attribute, action.value))
    return frozenset(written)


def _union_attributes(
    models: list[StateModel],
    shared_devices: dict[tuple[str, str], str] | None = None,
) -> tuple[list[StateAttribute], dict[tuple[str, str], object]]:
    """Line 1 of Algorithm 2: the deduplicated attribute set of the union
    ("the Cartesian product should remove attributes of duplicate
    devices"), plus the merged numeric domains keyed on global device ids.
    """
    mapping = shared_devices or {}

    def global_id(app: str, handle: str) -> str:
        return mapping.get((app, handle), handle)

    union_attrs: list[StateAttribute] = []
    union_domains: dict[tuple[str, str], object] = {}
    index_of: dict[tuple[str, str], int] = {}
    for model in models:
        app = model.apps[0] if model.apps else model.name
        for attr in model.attributes:
            gid = global_id(app, attr.device)
            key = (gid, attr.attribute)
            if key in index_of:
                existing = union_attrs[index_of[key]]
                merged_domain = _merge_domains(existing.domain, attr.domain)
                union_attrs[index_of[key]] = StateAttribute(
                    device=gid,
                    attribute=attr.attribute,
                    domain=merged_domain,
                    is_numeric=existing.is_numeric or attr.is_numeric,
                )
                numeric = model.numeric_domains.get((attr.device, attr.attribute))
                if numeric is not None:
                    # Keep the second app's abstract regions too: without
                    # them, its labels in the merged symbolic domain are
                    # undecidable in the union (guards degrade to Unknown,
                    # numeric writes stop landing).
                    present = union_domains.get(key)
                    union_domains[key] = (
                        numeric
                        if present is None
                        else _merge_numeric_domains(gid, present, numeric)
                    )
                continue
            index_of[key] = len(union_attrs)
            union_attrs.append(
                StateAttribute(
                    device=gid,
                    attribute=attr.attribute,
                    domain=attr.domain,
                    is_numeric=attr.is_numeric,
                )
            )
            numeric = model.numeric_domains.get((attr.device, attr.attribute))
            if numeric is not None:
                union_domains[key] = numeric
    return union_attrs, union_domains


def estimate_union_states(
    models: list[StateModel],
    shared_devices: dict[tuple[str, str], str] | None = None,
) -> int:
    """State count of :func:`build_union_model`'s result, without building
    it — the deduplicated-attribute domain product.

    The single estimator behind every union budget decision: the sweep
    engine's per-group budget check, :func:`build_union_model`'s explosion
    guard, and the ``auto`` backend selector all call this, so "too big for
    explicit checking" means the same thing everywhere.
    """
    union_attrs, _domains = _union_attributes(models, shared_devices)
    total = 1
    for attr in union_attrs:
        total *= max(1, len(attr.domain))
    return total


#: Backwards-compatible alias of :func:`estimate_union_states`.
union_state_count = estimate_union_states


def _merge_domains(first: tuple[str, ...], second: tuple[str, ...]) -> tuple[str, ...]:
    merged = list(first)
    for value in second:
        if value not in merged:
            merged.append(value)
    return tuple(merged)


def _merge_numeric_domains(gid, first, second):
    """Union two apps' abstract domains for one shared numeric attribute.

    Regions merge by label (first writer wins on a label clash — labels
    encode the region, so equal labels describe equal regions);
    ``raw_size`` keeps the larger pre-abstraction count, mirroring how the
    symbolic domain keeps every label.
    """
    from repro.analysis.abstraction import AbstractDomain

    regions = list(first.regions)
    labels = {region.label for region in regions}
    for region in second.regions:
        if region.label not in labels:
            labels.add(region.label)
            regions.append(region)
    return AbstractDomain(
        device=gid,
        attribute=first.attribute,
        regions=tuple(regions),
        raw_size=max(first.raw_size, second.raw_size),
    )


def _rename_rules(model: StateModel, app: str, global_id):
    """Rewrite device handles in a model's rules to global device ids."""
    from dataclasses import replace

    from repro.analysis.symexec import Action, PathSummary
    from repro.analysis.values import DeviceRead
    from repro.analysis.predicates import Atom
    from repro.ir.ir import EntryPoint
    from repro.platform.events import Event

    def fix_value(value):
        if isinstance(value, DeviceRead):
            return DeviceRead(global_id(app, value.device), value.attribute)
        return value

    def fix_atom(atom: Atom) -> Atom:
        return Atom(lhs=fix_value(atom.lhs), op=atom.op, rhs=fix_value(atom.rhs))

    def fix_action(action: Action) -> Action:
        return replace(
            action,
            device=global_id(app, action.device),
            value=fix_value(action.value)
            if not isinstance(action.value, str)
            else action.value,
        )

    def fix_event(event: Event) -> Event:
        if event.device in ("location", "app", "timer"):
            return event
        return Event(
            event.kind, global_id(app, event.device), event.attribute, event.value
        )

    renamed: dict[EntryPoint, list[PathSummary]] = {}
    for entry, summaries in model.rules.items():
        new_entry = EntryPoint(event=fix_event(entry.event), handler=entry.handler)
        bucket = renamed.setdefault(new_entry, [])
        for summary in summaries:
            bucket.append(
                PathSummary(
                    entry=new_entry,
                    condition=tuple(fix_atom(a) for a in summary.condition),
                    actions=tuple(fix_action(a) for a in summary.actions),
                    state_writes=summary.state_writes,
                    sends=summary.sends,
                    uses_reflection=summary.uses_reflection,
                )
            )
    return renamed
