"""State model -> Kripke structure (Soteria Sec. 5).

*"We translate the state model of an IoT app into a Kripke structure — an
equivalent temporal structure of a state model."*

Kripke states are pairs (model state, incoming-transition info), so atomic
propositions can speak about

* attribute values      — ``attr:device.attribute=value``
* the triggering event  — ``ev:<event label>`` (e.g. ``ev:smoke.detected``)
* handler actions       — ``act:device.attribute=value`` (what the incoming
  transition actively wrote; lets properties distinguish "the app drove the
  system into this state" from "the environment happened to be there")
* commands              — ``cmd:device.command`` (effect-free actions such
  as ``take``)
* app attribution       — ``app:<name>`` (for multi-app diagnosis)

The transition relation is made total by adding self-loops to deadlocked
states (CTL semantics require totality).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.symexec import Action
from repro.analysis.values import SymValue
from repro.model.statemodel import State, StateModel, Transition


@dataclass(frozen=True)
class KripkeState:
    """A Kripke node: model state + how we got here (None = initial)."""

    state: State
    incoming: tuple[str, ...]  # extra props from the incoming transition

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"K({self.state}, {sorted(self.incoming)})"


@dataclass
class KripkeStructure:
    """Explicit Kripke structure: S, S0, R, and labelling L."""

    states: list[KripkeState] = field(default_factory=list)
    initial: list[KripkeState] = field(default_factory=list)
    succ: dict[KripkeState, list[KripkeState]] = field(default_factory=dict)
    labels: dict[KripkeState, frozenset[str]] = field(default_factory=dict)
    #: Transition objects keyed by (src, dst) for counterexample rendering.
    witness: dict[tuple[KripkeState, KripkeState], Transition] = field(
        default_factory=dict
    )

    def atoms(self) -> set[str]:
        found: set[str] = set()
        for props in self.labels.values():
            found |= props
        return found

    def predecessors(self) -> dict[KripkeState, list[KripkeState]]:
        pred: dict[KripkeState, list[KripkeState]] = {s: [] for s in self.states}
        for src, dsts in self.succ.items():
            for dst in dsts:
                pred[dst].append(src)
        return pred

    def size(self) -> tuple[int, int]:
        edges = sum(len(d) for d in self.succ.values())
        return len(self.states), edges


def attr_prop(device: str, attribute: str, value: str) -> str:
    return f"attr:{device}.{attribute}={value}"


def event_prop(label: str) -> str:
    return f"ev:{label}"


def action_prop(action: Action) -> str | None:
    if action.attribute is None:
        return f"cmd:{action.device}.{action.command}"
    value = action.value
    if isinstance(value, SymValue):
        value = value.key()
    return f"act:{action.device}.{action.attribute}={value}"


def transition_props(transition: Transition) -> tuple[str, ...]:
    """Atomic propositions contributed by an incoming transition.

    Shared vocabulary of the explicit Kripke construction below and the
    symbolic encoder (:mod:`repro.model.encoder`): both label target states
    with the triggering event, the handler's actions and their value
    sources, app attribution, and notification/reflection markers.
    """
    props = [
        event_prop(transition.event.label()),
        f"evkind:{transition.event.kind.value}",
    ]
    for action in transition.actions:
        prop = action_prop(action)
        if prop is not None:
            props.append(prop)
        if action.attribute is not None:
            value = action.value
            source = "developer"
            if isinstance(value, SymValue):
                from repro.analysis.values import source_label

                label = source_label(value)
                source = {
                    "user-defined": "user",
                    "device-state": "device",
                    "state-variable": "state",
                }.get(label, "developer" if label == "developer-defined" else "unknown")
            props.append(
                f"actsrc:{action.device}.{action.attribute}={source}"
            )
    if transition.sends:
        props.append("sent-notification")
    if transition.app:
        props.append(f"app:{transition.app}")
    if transition.via_reflection:
        props.append("via-reflection")
    for atom in transition.condition:
        for source in atom.sources():
            props.append(f"src:{source}")
    return tuple(sorted(set(props)))


def build_kripke(model: StateModel) -> KripkeStructure:
    """Build the Kripke structure of a state model."""
    kripke = KripkeStructure()

    def base_labels(state: State) -> set[str]:
        props: set[str] = set()
        for attr, value in zip(model.attributes, state):
            props.add(attr_prop(attr.device, attr.attribute, value))
        return props

    # Initial nodes: every model state with no incoming info.
    node_index: dict[KripkeState, None] = {}

    def add_node(node: KripkeState) -> KripkeState:
        if node not in node_index:
            node_index[node] = None
            kripke.states.append(node)
            kripke.succ[node] = []
            kripke.labels[node] = frozenset(base_labels(node.state) | set(node.incoming))
        return node

    for state in model.states:
        node = add_node(KripkeState(state=state, incoming=()))
        kripke.initial.append(node)

    by_source: dict[State, list[Transition]] = {}
    for transition in model.transitions:
        by_source.setdefault(transition.source, []).append(transition)

    # Expand reachable event-labelled nodes.
    worklist = list(kripke.initial)
    visited: set[KripkeState] = set()
    while worklist:
        node = worklist.pop()
        if node in visited:
            continue
        visited.add(node)
        for transition in by_source.get(node.state, []):
            dst = KripkeState(
                state=transition.target, incoming=transition_props(transition)
            )
            existed = dst in node_index
            dst = add_node(dst)
            if dst not in kripke.succ[node]:
                kripke.succ[node].append(dst)
                kripke.witness[(node, dst)] = transition
            if not existed:
                worklist.append(dst)

    # Totalise: deadlocked nodes self-loop.
    for node in kripke.states:
        if not kripke.succ[node]:
            kripke.succ[node].append(node)
    return kripke
