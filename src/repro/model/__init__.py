"""State models (Soteria Sec. 4.2): (Q, Sigma, delta) per app or environment.

States are tuples of device-attribute values (numeric attributes appear as
abstract regions); transitions are labelled with the triggering event and
any residual predicate the checker could not decide statically.
"""

from repro.model.statemodel import State, StateAttribute, StateModel, Transition
from repro.model.extractor import ModelExtractor, extract_model
from repro.model.union import (
    build_union_model,
    build_union_skeleton,
    estimate_union_states,
    union_state_count,
)
from repro.model.kripke import KripkeStructure, build_kripke
from repro.model.encoder import SymbolicUnionModel, encode_union

__all__ = [
    "State",
    "StateAttribute",
    "StateModel",
    "Transition",
    "ModelExtractor",
    "extract_model",
    "build_union_model",
    "build_union_skeleton",
    "estimate_union_states",
    "union_state_count",
    "build_kripke",
    "KripkeStructure",
    "SymbolicUnionModel",
    "encode_union",
]
