"""State-model extraction: IR + analyses -> (Q, Sigma, delta) (Sec. 4.2).

The extractor

1. runs the symbolic executor to obtain per-entry-point transition rules,
2. determines the *referenced* device attributes (subscribed, read, or
   written) that form the state-space dimensions,
3. builds abstract domains for numeric attributes (property abstraction,
   Sec. 4.2.1) from written constants, comparison cut points, and
   user-input thresholds,
4. expands each rule over the state space: the triggering event moves the
   event attribute to its new value, guard atoms are decided against the
   source/target state, handler actions update the target state, and any
   undecidable atoms remain on the transition as residual predicate labels
   (Sec. 4.2.2 "labeling transitions with predicates").
"""

from __future__ import annotations

import itertools

from repro.analysis.abstraction import (
    AbstractDomain,
    AbstractRegion,
    build_numeric_domain,
    collect_read_cutpoints,
)
from repro.analysis.predicates import Atom, SWAPPED
from repro.analysis.symexec import Action, PathSummary, SymbolicExecutor
from repro.analysis.values import (
    Const,
    DeviceRead,
    EventValue,
    SymValue,
    Unknown,
    UserInput,
)
from repro.ir.ir import AppIR, EntryPoint
from repro.model.statemodel import State, StateAttribute, StateModel, Transition
from repro.platform.capabilities import AttributeKind, CapabilityDatabase, default_database
from repro.platform.events import Event, EventKind

#: Default location modes; app-specific mode names are added on top.
_DEFAULT_MODES = ("home", "away", "night")


class StateExplosionError(Exception):
    """Raised when the (abstracted) state space exceeds the budget."""


class ModelExtractor:
    """Extracts the state model of a single app."""

    def __init__(
        self,
        ir: AppIR,
        db: CapabilityDatabase | None = None,
        max_states: int = 250_000,
        abstract_numeric: bool = True,
        executor: SymbolicExecutor | None = None,
    ) -> None:
        self.ir = ir
        self.db = db or default_database()
        self.max_states = max_states
        self.abstract_numeric = abstract_numeric
        self.executor = executor or SymbolicExecutor(ir, self.db)

    # ==================================================================
    def extract(self, materialize: bool = True) -> StateModel:
        """Extract the app's state model.

        ``materialize=False`` skips state enumeration and rule expansion
        (the two budget-bound steps), returning a skeleton carrying only
        the attributes, domains, and symbolic rules — enough for the
        symbolic (BDD) checker to verify apps whose domain product blows
        the explicit budget without ever enumerating a state.
        """
        rules = self.executor.run_all()
        attributes, domains = self._state_attributes(rules)
        raw = 1
        for attr in attributes:
            raw *= self._raw_size(attr)
        states = self._enumerate_states(attributes) if materialize else []
        model = StateModel(
            name=self.ir.app.name,
            attributes=attributes,
            states=states,
            rules=rules,
            numeric_domains=domains,
            raw_state_count=raw,
            apps=[self.ir.app.name],
        )
        if materialize:
            expand_rules_into(model, rules, self.ir.app.name, self.db)
        return model

    # ==================================================================
    # Attribute discovery and domains
    # ==================================================================
    def _state_attributes(
        self, rules: dict[EntryPoint, list[PathSummary]]
    ) -> tuple[list[StateAttribute], dict[tuple[str, str], AbstractDomain]]:
        referenced: list[tuple[str, str]] = []

        def note(device: str, attribute: str) -> None:
            key = (device, attribute)
            if key not in referenced:
                referenced.append(key)

        for sub in self.ir.subscriptions:
            event = sub.event
            if event.kind is EventKind.DEVICE and event.device != "location":
                note(event.device, event.attribute)
            elif event.kind is EventKind.MODE:
                note("location", "mode")
        all_summaries = [s for group in rules.values() for s in group]
        for summary in all_summaries:
            for action in summary.actions:
                if action.attribute is not None:
                    note(action.device, action.attribute)
            for atom in summary.condition:
                for value in (atom.lhs, atom.rhs):
                    if isinstance(value, DeviceRead):
                        note(value.device, value.attribute)

        attributes: list[StateAttribute] = []
        domains: dict[tuple[str, str], AbstractDomain] = {}
        for device, attr_name in referenced:
            if device == "location" and attr_name == "mode":
                domain = self._mode_domain(all_summaries)
                attributes.append(
                    StateAttribute(device="location", attribute="mode", domain=domain)
                )
                continue
            spec = self._attribute_spec(device, attr_name)
            if spec is None:
                continue
            if spec.kind is AttributeKind.ENUM:
                attributes.append(
                    StateAttribute(
                        device=device, attribute=attr_name, domain=tuple(spec.values)
                    )
                )
            elif spec.kind is AttributeKind.NUMERIC:
                domain_obj = self._numeric_domain(device, spec, rules)
                domains[(device, attr_name)] = domain_obj
                attributes.append(
                    StateAttribute(
                        device=device,
                        attribute=attr_name,
                        domain=tuple(domain_obj.labels()),
                        is_numeric=True,
                    )
                )
            # STRING attributes (image blobs...) carry no state.
        return attributes, domains

    def _attribute_spec(self, device: str, attr_name: str):
        perm = self.ir.device(device)
        if perm is not None:
            spec = self.db.attribute(perm.capability, attr_name)
            if spec is not None:
                return spec
        return self.db.attribute_anywhere(attr_name)

    def _mode_domain(self, summaries: list[PathSummary]) -> tuple[str, ...]:
        modes: list[str] = list(_DEFAULT_MODES)

        def add(name: object) -> None:
            if isinstance(name, str) and name and name not in modes:
                modes.append(name)

        for sub in self.ir.subscriptions:
            if sub.event.kind is EventKind.MODE:
                add(sub.event.value)
        for summary in summaries:
            for action in summary.actions:
                if action.device == "location" and action.attribute == "mode":
                    add(action.value)
            for atom in summary.condition:
                values = [atom.lhs, atom.rhs]
                involves_mode = any(
                    isinstance(v, DeviceRead)
                    and v.device == "location"
                    and v.attribute == "mode"
                    for v in values
                ) or (
                    summary.entry.event.kind is EventKind.MODE
                    and any(isinstance(v, EventValue) for v in values)
                )
                if involves_mode:
                    for value in values:
                        if isinstance(value, Const):
                            add(value.value)
        return tuple(modes)

    def _numeric_domain(
        self,
        device: str,
        spec,
        rules: dict[EntryPoint, list[PathSummary]],
    ) -> AbstractDomain:
        written_constants: set[float] = set()
        written_users: set[str] = set()
        atoms: list[Atom] = []
        for entry, summaries in rules.items():
            for summary in summaries:
                for action in summary.actions:
                    if action.device == device and action.attribute == spec.name:
                        value = action.value
                        if isinstance(value, Const) and isinstance(
                            value.value, (int, float)
                        ):
                            written_constants.add(float(value.value))
                        elif isinstance(value, UserInput):
                            written_users.add(value.handle)
                for atom in summary.condition:
                    atoms.append(self._resolve_event_atom(atom, entry, device, spec))
        # Atoms dropped by ESP path merging still partition the domain
        # (Sec. 4.2.1: cut points come from the *code's* comparisons).
        for entry, atom in self.executor.observed_atoms:
            atoms.append(self._resolve_event_atom(atom, entry, device, spec))
        read_constants, user_handles = collect_read_cutpoints(
            atoms, device, spec.name
        )
        if not self.abstract_numeric:
            # No reduction: every concrete value is a point region (bounded
            # by the attribute's documented range).  Used by the ablation
            # bench and the Fig. 11 "before" series.
            regions = tuple(
                AbstractRegion(label=f"{spec.name}={v}", kind="point", point=float(v))
                for v in range(spec.low, spec.high + 1)
            )
            return AbstractDomain(device, spec.name, regions, spec.domain_size())
        return build_numeric_domain(
            device,
            spec,
            written_constants,
            read_constants,
            user_handles,
            written_users,
        )

    def _resolve_event_atom(
        self, atom: Atom, entry: EntryPoint, device: str, spec
    ) -> Atom:
        """Map ``evt.value`` atoms to the subscribed attribute so numeric
        event comparisons contribute interval cut points."""
        event = entry.event
        if event.kind is not EventKind.DEVICE or event.device != device:
            return atom
        if event.attribute != spec.name:
            return atom
        lhs = DeviceRead(device, spec.name) if isinstance(atom.lhs, EventValue) else atom.lhs
        rhs = DeviceRead(device, spec.name) if isinstance(atom.rhs, EventValue) else atom.rhs
        return Atom(lhs=lhs, op=atom.op, rhs=rhs)

    # ==================================================================
    def _raw_size(self, attr: StateAttribute) -> int:
        perm = self.ir.device(attr.device)
        if perm is not None:
            spec = self.db.attribute(perm.capability, attr.attribute)
            if spec is not None:
                return spec.domain_size()
        if attr.device == "location":
            return len(attr.domain)
        spec = self.db.attribute_anywhere(attr.attribute)
        if spec is not None:
            return spec.domain_size()
        return len(attr.domain)

    def _enumerate_states(self, attributes: list[StateAttribute]) -> list[State]:
        total = 1
        for attr in attributes:
            total *= max(1, len(attr.domain))
        if total > self.max_states:
            raise StateExplosionError(
                f"{self.ir.app.name}: {total} states exceed budget {self.max_states}"
            )
        if not attributes:
            return [()]
        return [tuple(combo) for combo in itertools.product(*(a.domain for a in attributes))]


# ======================================================================
# Rule expansion (shared with the union builder)
# ======================================================================
def expand_rules_into(
    model: StateModel,
    rules: dict[EntryPoint, list[PathSummary]],
    app_name: str,
    db: CapabilityDatabase,
    app_written: frozenset[tuple[str, str, str]] = frozenset(),
) -> None:
    """Expand symbolic transition rules into concrete transitions of
    ``model``.  Used both for single-app models and for Algorithm 2's union
    model (where ``model`` carries the union attribute set).

    ``app_written`` lists (device, attribute, value) triples some app in the
    environment actively writes.  Device events normally fire only on
    attribute *changes*; but when an app writes a value, the platform raises
    the corresponding event and co-installed subscribers run — so for
    app-written values the rule also fires from states already holding the
    value.  This is what makes the paper's multi-app chains observable
    (Sec. 4.4: switch-on -> home-mode -> door-locked).
    """
    transitions: list[Transition] = []
    seen: set[tuple] = set()
    for entry, summaries in rules.items():
        for summary in summaries:
            for transition in _expand_summary(
                model, entry, summary, app_name, db, app_written
            ):
                key = (
                    transition.source,
                    transition.target,
                    transition.event,
                    transition.condition,
                    transition.app,
                )
                if key not in seen:
                    seen.add(key)
                    transitions.append(transition)
    model.transitions.extend(transitions)


def _expand_summary(
    model: StateModel,
    entry: EntryPoint,
    summary: PathSummary,
    app_name: str,
    db: CapabilityDatabase,
    app_written: frozenset[tuple[str, str, str]] = frozenset(),
) -> list[Transition]:
    event = entry.event
    moved = _moved_attribute(model, event)
    results: list[Transition] = []

    if moved is None:
        candidates: list[tuple[int | None, str | None]] = [(None, None)]
    else:
        index, attr = moved
        if event.value is not None:
            candidates = [(index, event.value)]
        else:
            candidates = [(index, value) for value in attr.domain]

    for state in model.states:
        for index, new_value in candidates:
            if index is not None and new_value is not None:
                attr = model.attributes[index]
                if not attr.is_numeric and state[index] == new_value:
                    # Device events fire on attribute *changes* — except
                    # that app-written values re-stimulate co-installed
                    # subscribers (multi-app cascades, Sec. 4.4).
                    if (attr.device, attr.attribute, new_value) not in app_written:
                        continue
            concrete_event = (
                Event(event.kind, event.device, event.attribute, new_value)
                if index is not None
                else event
            )
            decision = _decide_condition(
                model, summary.condition, state, index, new_value, event, db
            )
            if decision is None:
                continue
            residual = decision
            target, applied = _apply_actions(
                model, state, index, new_value, summary.actions, residual
            )
            if target is None:
                continue
            target_state, extra_residual = target, applied
            if index is None and target_state == state and not summary.actions:
                continue  # no-op timer path
            results.append(
                Transition(
                    source=state,
                    target=target_state,
                    event=concrete_event,
                    condition=tuple(residual) + tuple(extra_residual),
                    actions=summary.actions,
                    app=app_name,
                    via_reflection=summary.uses_reflection,
                    sends=summary.sends,
                )
            )
    return results


def _moved_attribute(
    model: StateModel, event: Event
) -> tuple[int, StateAttribute] | None:
    if event.kind is EventKind.DEVICE:
        index = model.attribute_index(event.device, event.attribute)
    elif event.kind is EventKind.MODE:
        index = model.attribute_index("location", "mode")
    else:
        return None
    if index is None:
        return None
    return index, model.attributes[index]


def _decide_condition(
    model: StateModel,
    condition: tuple[Atom, ...],
    state: State,
    moved_index: int | None,
    new_value: str | None,
    event: Event,
    db: CapabilityDatabase,
) -> list[Atom] | None:
    """Decide guard atoms against the (source, event) pair.

    Returns the residual (undecidable) atoms, or None when some atom is
    definitely false (the rule does not apply here).
    """
    residual: list[Atom] = []
    for atom in condition:
        lhs = _resolve_operand(model, atom.lhs, state, moved_index, new_value, event)
        rhs = _resolve_operand(model, atom.rhs, state, moved_index, new_value, event)
        verdict = _decide_atom(lhs, atom.op, rhs)
        if verdict is False:
            return None
        if verdict is None:
            residual.append(atom)
    return residual


def _resolve_operand(
    model: StateModel,
    value: SymValue,
    state: State,
    moved_index: int | None,
    new_value: str | None,
    event: Event,
) -> object:
    """Resolve a symbolic operand to a Const, an AbstractRegion, or itself."""
    if isinstance(value, EventValue):
        if moved_index is not None and new_value is not None:
            return _state_value(model, moved_index, new_value)
        return value
    if isinstance(value, DeviceRead):
        index = model.attribute_index(value.device, value.attribute)
        if index is None:
            return value
        if index == moved_index and new_value is not None:
            # Reads of the event device see the *new* value (the handler
            # runs after the attribute changed).
            return _state_value(model, index, new_value)
        return _state_value(model, index, state[index])
    return value


def _state_value(model: StateModel, index: int, label: str) -> object:
    attr = model.attributes[index]
    if attr.is_numeric:
        domain = model.numeric_domains.get((attr.device, attr.attribute))
        if domain is not None:
            try:
                return domain.region(label)
            except KeyError:
                return Unknown(label)
    return Const(label)


def _decide_atom(lhs: object, op: str, rhs: object) -> bool | None:
    if isinstance(lhs, AbstractRegion) and isinstance(rhs, SymValue):
        return lhs.decide(op, rhs)
    if isinstance(rhs, AbstractRegion) and isinstance(lhs, SymValue):
        swapped = SWAPPED.get(op)
        if swapped is None:
            return None
        return rhs.decide(swapped, lhs)
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        from repro.analysis.symexec import _compare_consts

        return _compare_consts(lhs.value, op, rhs.value)
    return None


def _apply_actions(
    model: StateModel,
    state: State,
    moved_index: int | None,
    new_value: str | None,
    actions: tuple[Action, ...],
    residual: list[Atom],
) -> tuple[State | None, list[Atom]]:
    """Apply event movement + handler actions, producing the target state."""
    values = list(state)
    if moved_index is not None and new_value is not None:
        values[moved_index] = new_value
    extra: list[Atom] = []
    for action in actions:
        if action.attribute is None:
            continue
        index = model.attribute_index(action.device, action.attribute)
        if index is None:
            continue
        attr = model.attributes[index]
        if attr.is_numeric:
            label = _numeric_write_label(model, attr, action.value)
            if label is not None:
                values[index] = label
        else:
            if isinstance(action.value, str):
                if action.value in attr.domain:
                    values[index] = action.value
            # Unknown enum writes (mode from a variable): leave the
            # attribute untouched; the action label still records it.
    return tuple(values), extra


def _numeric_write_label(
    model: StateModel, attr: StateAttribute, value: object
) -> str | None:
    domain = model.numeric_domains.get((attr.device, attr.attribute))
    if domain is None:
        return None
    if isinstance(value, Const) and isinstance(value.value, (int, float)):
        target = float(value.value)
        for region in domain.regions:
            if region.kind == "point" and region.point == target:
                return region.label
        for region in domain.regions:
            if region.kind == "interval":
                above = target > region.lo or (
                    target == region.lo and not region.lo_open
                )
                below = target < region.hi or (
                    target == region.hi and not region.hi_open
                )
                if above and below:
                    return region.label
        for region in domain.regions:
            if region.kind == "any":
                return region.label
    if isinstance(value, UserInput):
        for region in domain.regions:
            if (
                region.kind == "symbolic"
                and region.user_handle == value.handle
                and region.user_side in ("equal", "at-or-above")
            ):
                return region.label
    # Untrackable numeric write: stay (sound for our property set — the
    # residual action label still shows the write happened).
    return None


def extract_model(
    ir: AppIR,
    db: CapabilityDatabase | None = None,
    abstract_numeric: bool = True,
    max_states: int = 250_000,
    materialize: bool = True,
) -> StateModel:
    """Extract the state model of one app (``materialize=False`` returns
    the budget-free skeleton for symbolic checking)."""
    extractor = ModelExtractor(
        ir, db=db, abstract_numeric=abstract_numeric, max_states=max_states
    )
    return extractor.extract(materialize=materialize)
