"""Soteria: automated IoT safety and security analysis — full reproduction.

Reproduction of Celik, McDaniel, Tan, *"Soteria: Automated IoT Safety and
Security Analysis"* (USENIX ATC 2018).  The pipeline (paper Fig. 3):

1. **IR extraction** — parse SmartThings Groovy, recover permissions,
   events/actions, and per-entry-point call graphs (:mod:`repro.lang`,
   :mod:`repro.ir`);
2. **State-model extraction** — property abstraction + path-sensitive
   symbolic execution produce a (Q, Sigma, delta) model
   (:mod:`repro.analysis`, :mod:`repro.model`);
3. **Property identification** — general properties S.1-S.5 and
   app-specific P.1-P.30 (:mod:`repro.properties`);
4. **Model checking** — explicit, BDD-symbolic, and SAT-bounded engines
   over the Kripke structure (:mod:`repro.mc`); multi-app unions check
   through a backend of choice (``explicit`` | ``symbolic`` | ``auto``),
   where the symbolic backend compiles app rules straight to BDDs over
   shared attribute variables and never enumerates the product
   (:mod:`repro.model.encoder`).

Quickstart::

    from repro import analyze_app
    analysis = analyze_app(open("app.groovy").read())
    for violation in analysis.violations:
        print(violation.short())
"""

from repro.soteria import (
    AppAnalysis,
    EnvironmentAnalysis,
    analyze_app,
    analyze_environment,
)
from repro.platform.smartapp import SmartApp
from repro.properties.catalog import Violation

__version__ = "1.0.0"

__all__ = [
    "AppAnalysis",
    "EnvironmentAnalysis",
    "analyze_app",
    "analyze_environment",
    "SmartApp",
    "Violation",
    "__version__",
]
