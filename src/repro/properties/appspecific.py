"""App-specific properties P.1-P.30 (Soteria Appendix B, Table 2).

Each property is a :class:`PropertySpec`: device requirements (capability
slots, optionally role-constrained) plus a CTL-formula builder instantiated
per device binding.  Following the paper, a property is checked against an
app (or environment) only when *all* of the devices it mentions are present.

The formulas speak the proposition vocabulary of
:mod:`repro.model.kripke`:

* ``attr:<dev>.<attribute>=<value>``  — state labels,
* ``ev:<event label>`` / ``evkind:<kind>`` — the incoming event,
* ``act:<dev>.<attribute>=<value>``   — what the incoming handler wrote,
* ``cmd:<dev>.<command>``             — effect-free commands (take(), beep()),
* ``sent-notification``               — the handler notified the user.

Most P properties are *misuse* constraints: "the app must never actively
drive device X into value v while the environment is in condition c" —
expressed as ``AG !(condition & act)``.  A few are response properties
using AF/EF (P.26, P.29).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.mc import ctl
from repro.model.statemodel import StateModel


# ----------------------------------------------------------------------
# Formula helpers
# ----------------------------------------------------------------------
def attr(handle: str, attribute: str, value: str) -> ctl.Formula:
    return ctl.Prop(f"attr:{handle}.{attribute}={value}")


def act(handle: str, attribute: str, value: str) -> ctl.Formula:
    return ctl.Prop(f"act:{handle}.{attribute}={value}")


def cmd(handle: str, command: str) -> ctl.Formula:
    return ctl.Prop(f"cmd:{handle}.{command}")


def ev(label: str) -> ctl.Formula:
    return ctl.Prop(f"ev:{label}")


def evkind(kind: str) -> ctl.Formula:
    return ctl.Prop(f"evkind:{kind}")


NOTIFIED = ctl.Prop("sent-notification")


def away(binding: dict[str, str]) -> ctl.Formula:
    """'User not at home': presence if bound, else location mode = away."""
    if "presence" in binding:
        return attr(binding["presence"], "presence", "not present")
    return attr("location", "mode", "away")


def disjunction(parts: list[ctl.Formula]) -> ctl.Formula:
    result = parts[0]
    for part in parts[1:]:
        result = ctl.Or(result, part)
    return result


def conjunction(parts: list[ctl.Formula]) -> ctl.Formula:
    result = parts[0]
    for part in parts[1:]:
        result = ctl.And(result, part)
    return result


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Slot:
    """One device requirement of a property variant."""

    name: str
    capabilities: tuple[str, ...]   # ("switch",); ("@mode",) = location mode
    roles: tuple[str, ...] = ()     # any-of role filter; empty = any device
    #: Permit binding a granted device even when the model tracks none of
    #: its attributes — needed for "the app never touches this device"
    #: liveness violations (MalIoT App8's unsubscribed lock handler).
    allow_unmodeled: bool = False

    def candidates(
        self,
        device_map: dict[str, str],
        roles: dict[str, set[str]],
        has_mode: bool,
    ) -> list[str]:
        if self.capabilities == ("@mode",):
            return ["location"] if has_mode else []
        found = []
        for handle, capability in device_map.items():
            if capability not in self.capabilities:
                continue
            if self.roles and not (roles.get(handle, set()) & set(self.roles)):
                continue
            found.append(handle)
        return found


@dataclass(frozen=True)
class Variant:
    slots: tuple[Slot, ...]
    build: Callable[[StateModel, dict[str, str]], ctl.Formula | None]


@dataclass(frozen=True)
class PropertySpec:
    id: str
    description: str
    variants: tuple[Variant, ...]

    def applicable(
        self, capabilities: set[str], roles: dict[str, set[str]]
    ) -> bool:
        for variant in self.variants:
            ok = True
            for slot in variant.slots:
                if slot.capabilities == ("@mode",):
                    if "location-mode" not in capabilities:
                        ok = False
                        break
                    continue
                if not any(c in capabilities for c in slot.capabilities):
                    ok = False
                    break
                if slot.roles:
                    if not any(
                        roles.get(h, set()) & set(slot.roles) for h in roles
                    ):
                        ok = False
                        break
            if ok:
                return True
        return False

    def formulas(
        self,
        model: StateModel,
        device_map: dict[str, str],
        roles: dict[str, set[str]],
        max_bindings: int = 24,
    ) -> list[tuple[ctl.Formula, dict[str, str]]]:
        """All (formula, binding) instantiations over the model's devices."""
        has_mode = model.attribute_index("location", "mode") is not None
        results: list[tuple[ctl.Formula, dict[str, str]]] = []
        for variant in self.variants:
            bindings = [{}]
            for slot in variant.slots:
                candidates = slot.candidates(device_map, roles, has_mode)
                bindings = [
                    {**binding, slot.name: handle}
                    for binding in bindings
                    for handle in candidates
                    if handle not in binding.values() or handle == "location"
                ]
                if not bindings:
                    break
            for binding in bindings[:max_bindings]:
                # Only bind devices the model actually tracks.
                if not _binding_in_model(model, binding, variant.slots):
                    continue
                formula = variant.build(model, binding)
                if formula is not None:
                    results.append((formula, binding))
        return results


def _binding_in_model(
    model: StateModel, binding: dict[str, str], slots: tuple[Slot, ...]
) -> bool:
    relaxed = {slot.name for slot in slots if slot.allow_unmodeled}
    for slot_name, handle in binding.items():
        if handle == "location":
            if model.attribute_index("location", "mode") is None:
                return False
            continue
        if slot_name in relaxed:
            continue
        if not any(a.device == handle for a in model.attributes):
            return False
    return True


def _spec(
    pid: str, description: str, *variants: Variant
) -> PropertySpec:
    return PropertySpec(id=pid, description=description, variants=tuple(variants))


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def mode_set_by_app(model: StateModel) -> ctl.Formula | None:
    """'Some app just set the location mode' — disjunction over the mode
    domain of ``act:location.mode=<v>`` props.  None when no mode tracked.

    Multi-app misuse cases (G.3, App16+17) are *chains*: one app's action
    changes the mode, which triggers another app's handler.  Gating the
    mode-variant formulas on an app-caused mode change keeps the individual
    apps clean (environmental mode changes are the user's intent) while
    catching the chain in the union model — matching the paper's finding
    that these violations appear only in multi-app environments.
    """
    index = model.attribute_index("location", "mode")
    if index is None:
        return None
    values = model.attributes[index].domain
    if not values:
        return None
    return disjunction([act("location", "mode", v) for v in values])


def _p1(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # Never unlock the door while the user is away / asleep.
    return ctl.AG(ctl.Not(ctl.And(away(b), act(b["lock"], "lock", "unlocked"))))


def _p1_liveness(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    # When an app switches the home to away mode, the door must (be able
    # to) end up locked.  Catches apps that hold a lock permission but never
    # lock (MalIoT App8: the locking handler is never subscribed).
    trigger = act("location", "mode", "away")
    locked = attr(b["lock"], "lock", "locked")
    return ctl.AG(ctl.Implies(trigger, ctl.EF(locked)))


def _p2(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # Motion-active must not be answered by switching lights off.
    return ctl.AG(
        ctl.Implies(ev(f'{b["motion"]}.motion.active'),
                    ctl.Not(act(b["switch"], "switch", "off")))
    )


def _p3(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # When there is smoke the door must not be (driven) locked.
    return ctl.AG(
        ctl.Not(
            ctl.And(
                attr(b["smoke"], "smoke", "detected"),
                act(b["lock"], "lock", "locked"),
            )
        )
    )


def _p4(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Implies(
            ev(f'{b["presence"]}.presence.present'),
            ctl.Not(act(b["switch"], "switch", "off")),
        )
    )


def _p5(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # Camera-controlled door must not close and open on the same event.
    return ctl.AG(
        ctl.Not(
            ctl.And(act(b["door"], "door", "closed"), act(b["door"], "door", "open"))
        )
    )


def _p6(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    arrive = ctl.Implies(
        ev(f'{b["presence"]}.presence.present'),
        ctl.Not(act(b["door"], "door", "closed")),
    )
    leave = ctl.Implies(
        ev(f'{b["presence"]}.presence.not present'),
        ctl.Not(act(b["door"], "door", "open")),
    )
    return ctl.AG(ctl.And(arrive, leave))


def _p7(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Not(
            ctl.And(
                attr(b["beacon"], "presence", "not present"),
                act(b["switch"], "switch", "on"),
            )
        )
    )


def _p8(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Not(
            ctl.And(
                attr(b["sleep"], "sleeping", "sleeping"),
                act(b["switch"], "switch", "on"),
            )
        )
    )


def _p9(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Not(
            ctl.And(
                away(b),
                act(b["security"], "securitySystemStatus", "disarmed"),
            )
        )
    )


def _p9_mode(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    gate = mode_set_by_app(model)
    if gate is None:
        return None
    return ctl.AG(
        ctl.Not(
            ctl.And(
                gate,
                ctl.EX(act(b["security"], "securitySystemStatus", "disarmed")),
            )
        )
    )


def _p10(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # The alarm must not be silenced while smoke/CO is present.
    return ctl.AG(
        ctl.Not(
            ctl.And(
                attr(b["smoke"], "smoke", "detected"),
                act(b["alarm"], "alarm", "off"),
            )
        )
    )


def _p11(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Not(
            ctl.And(attr(b["water"], "water", "wet"), act(b["valve"], "valve", "open"))
        )
    )


def _p12(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(ctl.Not(ctl.And(away(b), act(b["switch"], "switch", "on"))))


def _p12_mode(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    gate = mode_set_by_app(model)
    if gate is None:
        return None
    return ctl.AG(
        ctl.Not(ctl.And(gate, ctl.EX(act(b["switch"], "switch", "on"))))
    )


def _p13_music(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Not(ctl.And(away(b), act(b["player"], "status", "playing")))
    )


def _p13_appliance(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # "Used" while away: the handler operates the appliance (on and off on
    # the same path — the TP6 simulated-occupancy pattern).
    on = act(b["switch"], "switch", "on")
    off = act(b["switch"], "switch", "off")
    return ctl.AG(ctl.Not(ctl.And(away(b), ctl.And(on, off))))


def _p13_appliance_mode(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    gate = mode_set_by_app(model)
    if gate is None:
        return None
    return ctl.AG(
        ctl.Not(ctl.And(gate, ctl.EX(act(b["switch"], "switch", "on"))))
    )


def _p13_level(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # Dimmer level driven to a developer-hardcoded value while away
    # (MalIoT App6: the light level change advertises an empty house).
    dev_write = ctl.Prop(f'actsrc:{b["dimmer"]}.level=developer')
    return ctl.AG(ctl.Not(ctl.And(away(b), dev_write)))


def _p14(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    gate = mode_set_by_app(model)
    if gate is None:
        return None
    return ctl.AG(
        ctl.Not(ctl.And(gate, ctl.EX(act(b["critical"], "switch", "off"))))
    )


def _p14_security(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    gate = mode_set_by_app(model)
    if gate is None:
        return None
    return ctl.AG(
        ctl.Not(
            ctl.And(
                gate,
                ctl.EX(act(b["security"], "securitySystemStatus", "disarmed")),
            )
        )
    )


def _p15(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Implies(
            ev(f'{b["motion"]}.motion.active'),
            ctl.Not(act(b["thermostat"], "thermostatMode", "off")),
        )
    )


def _p16(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # Setpoint changes on mode events must come from user settings, not
    # hard-coded developer constants.
    dev_write = ctl.Prop(
        f'actsrc:{b["thermostat"]}.heatingSetpoint=developer'
    )
    return ctl.AG(ctl.Not(ctl.And(evkind("mode"), dev_write)))


def _p17(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # Both on, with the incoming handler having driven them there.  When the
    # app reacts to location-mode events, mode changes are the user's intent
    # and only app-caused mode changes (multi-app chains) count.
    both_on = ctl.And(
        attr(b["ac"], "switch", "on"), attr(b["heater"], "switch", "on")
    )
    drove = ctl.And(
        act(b["ac"], "switch", "on"), act(b["heater"], "switch", "on")
    )
    bad = ctl.And(both_on, drove)
    gate = mode_set_by_app(model)
    if gate is not None:
        return ctl.AG(ctl.Not(ctl.And(gate, ctl.EX(bad))))
    return ctl.AG(ctl.Not(bad))


def _p18(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    domain = model.numeric_domains.get((b["humidity"], "humidity"))
    if domain is None:
        return None
    low = [r.label for r in domain.regions if "<" in r.label]
    if not low:
        return None
    low_state = disjunction([attr(b["humidity"], "humidity", l) for l in low])
    return ctl.AG(
        ctl.Not(ctl.And(low_state, act(b["switch"], "switch", "on")))
    )


def _p19(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Implies(
            ev(f'{b["presence"]}.presence.present'),
            ctl.Not(act(b["ac"], "switch", "off")),
        )
    )


def _p20(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Implies(
            ctl.And(
                ev(f'{b["motion"]}.motion.active'),
                attr(b["contact"], "contact", "open"),
            ),
            cmd(b["camera"], "take"),
        )
    )


def _p21(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Implies(
            ev(f'{b["contact"]}.contact.open'),
            ctl.Not(act(b["alarm"], "alarm", "off")),
        )
    )


def _p22(model: StateModel, b: dict[str, str]) -> ctl.Formula | None:
    domain = model.numeric_domains.get((b["battery"], "battery"))
    if domain is None:
        return None
    low = [r.label for r in domain.regions if "<" in r.label]
    if not low:
        return None
    # Numeric event labels carry the abstract region the report landed in:
    # ``bat.battery.battery<thrshld``.
    low_events = disjunction(
        [ev(f'{b["battery"]}.battery.{label}') for label in low]
    )
    # The app must *respond* to a low-battery report (notify or actuate).
    responded: ctl.Formula = NOTIFIED
    for attr_obj in model.attributes:
        if attr_obj.device != b["battery"]:
            for value in attr_obj.domain:
                responded = ctl.Or(
                    responded, act(attr_obj.device, attr_obj.attribute, value)
                )
    return ctl.AG(ctl.Implies(low_events, responded))


def _p23(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Implies(act(b["lock"], "lock", "unlocked"), cmd(b["camera"], "take"))
    )


def _p24(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    shade_open = attr(b["shade"], "windowShade", "open")
    heater_on = attr(b["heater"], "switch", "on")
    return ctl.AG(
        ctl.Not(
            ctl.Or(
                ctl.And(shade_open, act(b["heater"], "switch", "on")),
                ctl.And(heater_on, act(b["shade"], "windowShade", "open")),
            )
        )
    )


def _p25(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    return ctl.AG(
        ctl.Not(
            ctl.And(attr(b["contact"], "contact", "closed"), cmd(b["bell"], "beep"))
        )
    )


def _p26(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # Door left open must eventually trigger the alarm.
    open_door = attr(b["contact"], "contact", "open")
    siren = ctl.Or(
        attr(b["alarm"], "alarm", "siren"), attr(b["alarm"], "alarm", "both")
    )
    return ctl.AG(ctl.Implies(open_door, ctl.EF(siren)))


def _p27(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # The mode must track presence: an app reacting to a presence event must
    # not set the opposite mode.  (Event-triggered, so unrelated mode
    # automations sharing the home do not trip it.)
    wrong_home = ctl.And(
        ev(f'{b["presence"]}.presence.not present'),
        act("location", "mode", "home"),
    )
    wrong_away = ctl.And(
        ev(f'{b["presence"]}.presence.present'),
        act("location", "mode", "away"),
    )
    return ctl.AG(ctl.Not(ctl.Or(wrong_home, wrong_away)))


def _p28(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    if "sleep" in b:
        asleep = attr(b["sleep"], "sleeping", "sleeping")
    else:
        asleep = attr("location", "mode", "night")
    return ctl.AG(
        ctl.Not(ctl.And(asleep, act(b["player"], "status", "playing")))
    )


def _p29(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    # The flood sensor must alert on water — and not alarm without water.
    false_alarm = ctl.And(
        attr(b["water"], "water", "dry"), act(b["alarm"], "alarm", "siren")
    )
    must_alert = ctl.Implies(
        ev(f'{b["water"]}.water.wet'),
        ctl.Or(
            ctl.Or(
                attr(b["alarm"], "alarm", "siren"),
                attr(b["alarm"], "alarm", "both"),
            ),
            NOTIFIED,
        ),
    )
    return ctl.AG(ctl.And(ctl.Not(false_alarm), must_alert))


def _p30(model: StateModel, b: dict[str, str]) -> ctl.Formula:
    closed_after_leak = ctl.Implies(
        ev(f'{b["water"]}.water.wet'), attr(b["valve"], "valve", "closed")
    )
    no_open_while_wet = ctl.Not(
        ctl.And(attr(b["water"], "water", "wet"), act(b["valve"], "valve", "open"))
    )
    return ctl.AG(ctl.And(closed_after_leak, no_open_while_wet))


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
def _presence_or_mode(*slots: Slot, build) -> tuple[Variant, Variant]:
    with_presence = Variant(
        slots=slots + (Slot("presence", ("presenceSensor",)),), build=build
    )
    with_mode = Variant(slots=slots + (Slot("mode", ("@mode",)),), build=build)
    return with_presence, with_mode


APP_SPECIFIC_PROPERTIES: tuple[PropertySpec, ...] = (
    _spec(
        "P.1",
        "The door must be locked when a user is not present at home or sleeping.",
        *_presence_or_mode(Slot("lock", ("lock",)), build=_p1),
        Variant(
            (Slot("lock", ("lock",), allow_unmodeled=True),
             Slot("mode", ("@mode",))),
            _p1_liveness,
        ),
    ),
    _spec(
        "P.2",
        "The lights must be turned on if the motion sensor is active.",
        Variant(
            (Slot("switch", ("switch",), ("light", "generic")),
             Slot("motion", ("motionSensor",))),
            _p2,
        ),
    ),
    _spec(
        "P.3",
        "When there is smoke, the door must be unlocked (never locked).",
        Variant((Slot("smoke", ("smokeDetector",)), Slot("lock", ("lock",))), _p3),
    ),
    _spec(
        "P.4",
        "The light must be on when the user arrives home.",
        Variant(
            (Slot("switch", ("switch",), ("light", "generic")),
             Slot("presence", ("presenceSensor",))),
            _p4,
        ),
    ),
    _spec(
        "P.5",
        "Camera-controlled doors must be closed only when clear of objects.",
        Variant(
            (Slot("door", ("doorControl", "garageDoorControl")),
             Slot("camera", ("imageCapture",))),
            _p5,
        ),
    ),
    _spec(
        "P.6",
        "The garage door must open on arrival and close on departure.",
        Variant(
            (Slot("door", ("garageDoorControl", "doorControl")),
             Slot("presence", ("presenceSensor",))),
            _p6,
        ),
    ),
    _spec(
        "P.7",
        "Lights/garage react only when the beacon is inside the geofence.",
        Variant(
            (Slot("beacon", ("beacon",)), Slot("switch", ("switch",))), _p7
        ),
    ),
    _spec(
        "P.8",
        "The lights must be turned off when the user is sleeping.",
        Variant(
            (Slot("sleep", ("sleepSensor",)),
             Slot("switch", ("switch",), ("light", "generic"))),
            _p8,
        ),
    ),
    _spec(
        "P.9",
        "The security system must not be disarmed when the user is away.",
        Variant(
            (Slot("security", ("securitySystem",)),
             Slot("presence", ("presenceSensor",))),
            _p9,
        ),
        Variant(
            (Slot("security", ("securitySystem",)), Slot("mode", ("@mode",))),
            _p9_mode,
        ),
    ),
    _spec(
        "P.10",
        "The alarm must sound (and stay on) when there is smoke or CO.",
        Variant(
            (Slot("smoke", ("smokeDetector", "carbonMonoxideDetector")),
             Slot("alarm", ("alarm",))),
            _p10,
        ),
    ),
    _spec(
        "P.11",
        "The valve must be closed when the water sensor is wet.",
        Variant((Slot("water", ("waterSensor",)), Slot("valve", ("valve",))), _p11),
    ),
    _spec(
        "P.12",
        "Lights/secured containers must not turn on when the user is away.",
        Variant(
            (Slot("switch", ("switch",), ("light", "secured-container")),
             Slot("presence", ("presenceSensor",))),
            _p12,
        ),
        Variant(
            (Slot("switch", ("switch",), ("light", "secured-container")),
             Slot("mode", ("@mode",))),
            _p12_mode,
        ),
    ),
    _spec(
        "P.13",
        "Appliance functionality must not be used when the user is away.",
        *_presence_or_mode(Slot("player", ("musicPlayer",)), build=_p13_music),
        Variant(
            (Slot("switch", ("switch",), ("light", "appliance", "generic")),
             Slot("presence", ("presenceSensor",))),
            _p13_appliance,
        ),
        Variant(
            (Slot("switch", ("switch",), ("appliance",)),
             Slot("mode", ("@mode",))),
            _p13_appliance_mode,
        ),
        Variant(
            (Slot("dimmer", ("switchLevel",)),
             Slot("presence", ("presenceSensor",))),
            _p13_level,
        ),
    ),
    _spec(
        "P.14",
        "Refrigerator, alarm, and security system must not be disabled.",
        Variant(
            (Slot("critical", ("switch",), ("critical",)),
             Slot("mode", ("@mode",))),
            _p14,
        ),
        Variant(
            (Slot("security", ("securitySystem",)), Slot("mode", ("@mode",))),
            _p14_security,
        ),
    ),
    _spec(
        "P.15",
        "Operating temperature applies on motion; idle temperature otherwise.",
        Variant(
            (Slot("thermostat", ("thermostat",)), Slot("motion", ("motionSensor",))),
            _p15,
        ),
    ),
    _spec(
        "P.16",
        "Mode-change thermostat setpoints must be user-entered values.",
        Variant(
            (Slot("thermostat", ("thermostat",)), Slot("mode", ("@mode",))), _p16
        ),
    ),
    _spec(
        "P.17",
        "The AC and heater must not be on at the same time.",
        Variant(
            (Slot("ac", ("switch",), ("ac",)), Slot("heater", ("switch",), ("heater",))),
            _p17,
        ),
    ),
    _spec(
        "P.18",
        "Humidity-controlled devices stay off outside the configured zone.",
        Variant(
            (Slot("humidity", ("relativeHumidityMeasurement",)),
             Slot("switch", ("switch",))),
            _p18,
        ),
    ),
    _spec(
        "P.19",
        "The AC must be on when the user approaches (never switched off).",
        Variant(
            (Slot("ac", ("switch",), ("ac",)), Slot("presence", ("presenceSensor",))),
            _p19,
        ),
    ),
    _spec(
        "P.20",
        "The camera must take pictures on motion while doors are open.",
        Variant(
            (Slot("camera", ("imageCapture",), allow_unmodeled=True),
             Slot("motion", ("motionSensor",)),
             Slot("contact", ("contactSensor",))),
            _p20,
        ),
    ),
    _spec(
        "P.21",
        "Opening doors during protected times must not silence the alarm.",
        Variant(
            (Slot("camera", ("imageCapture",), allow_unmodeled=True),
             Slot("alarm", ("alarm",)),
             Slot("contact", ("contactSensor",))),
            _p21,
        ),
    ),
    _spec(
        "P.22",
        "Low device battery must be reported to the user.",
        Variant((Slot("battery", ("battery",)),), _p22),
    ),
    _spec(
        "P.23",
        "The door must unlock only after camera face recognition.",
        Variant(
            (Slot("lock", ("lock",)),
             Slot("camera", ("imageCapture",), allow_unmodeled=True)),
            _p23,
        ),
    ),
    _spec(
        "P.24",
        "The windows must not be open when the heater is on.",
        Variant(
            (Slot("shade", ("windowShade",)),
             Slot("heater", ("switch",), ("heater",))),
            _p24,
        ),
    ),
    _spec(
        "P.25",
        "The bell must not chime when the door is closed.",
        Variant(
            (Slot("bell", ("tone",), allow_unmodeled=True),
             Slot("contact", ("contactSensor",))),
            _p25,
        ),
    ),
    _spec(
        "P.26",
        "The alarm must go off when the main door is left open too long.",
        Variant(
            (Slot("alarm", ("alarm",)), Slot("contact", ("contactSensor",))), _p26
        ),
    ),
    _spec(
        "P.27",
        "The mode must track user presence (home when home, away when away).",
        Variant(
            (Slot("presence", ("presenceSensor",)), Slot("mode", ("@mode",))), _p27
        ),
    ),
    _spec(
        "P.28",
        "The sound system must not play during sleeping hours.",
        Variant(
            (Slot("player", ("musicPlayer",)), Slot("sleep", ("sleepSensor",))),
            _p28,
        ),
        Variant(
            (Slot("player", ("musicPlayer",)), Slot("mode", ("@mode",))), _p28
        ),
    ),
    _spec(
        "P.29",
        "The flood sensor must alert on water — and only on water.",
        Variant(
            (Slot("water", ("waterSensor",)), Slot("alarm", ("alarm",))), _p29
        ),
    ),
    _spec(
        "P.30",
        "The water valve must shut off when a leak is detected.",
        Variant(
            (Slot("water", ("waterSensor",)), Slot("valve", ("valve",))), _p30
        ),
    ),
)
