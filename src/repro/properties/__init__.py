"""Property identification and checking (Soteria Sec. 4.3, Appendix B).

* :mod:`.general` — S.1-S.5: app-agnostic constraints on states and
  transitions, checked structurally at state-model construction,
* :mod:`.appspecific` — P.1-P.30: device-centric use/misuse-case
  requirements, expressed as CTL templates instantiated per device binding,
* :mod:`.roles` — device-role inference from permission handles/titles
  (distinguishing a "light" switch from a "coffee machine" switch, which
  several P properties depend on),
* :mod:`.catalog` — applicability matching ("we check the app against a
  property if all of the devices in the property are included in the app")
  and the violation record type.
"""

from repro.properties.catalog import (
    PropertyCatalog,
    Violation,
    default_catalog,
)
from repro.properties.general import check_general_properties
from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES, PropertySpec
from repro.properties.roles import device_roles

__all__ = [
    "PropertyCatalog",
    "Violation",
    "default_catalog",
    "check_general_properties",
    "APP_SPECIFIC_PROPERTIES",
    "PropertySpec",
    "device_roles",
]
