"""General properties S.1-S.5 (Soteria Fig. 8, Appendix B Table 1).

These are app-agnostic constraints checked *at state-model construction*
(Fig. 9: "General properties failed at state-model construction"), i.e. on
the symbolic transition rules rather than via CTL:

* **S.1** — an event handler must not change an attribute to conflicting
  values on some control-flow path.
* **S.2** — an event handler must not change an attribute to the *same*
  value multiple times on some path.
* **S.3** — handlers of complementary events must not change an attribute
  to the same value.
* **S.4** — two or more non-complementary event handlers must not change an
  attribute to conflicting values (a race: the events may co-occur).
* **S.5** — a handler whose code dispatches on event values must actually be
  subscribed to the events it handles.

In multi-app environments the same checks run over the combined rule set;
"handler" then means "any handler triggered by the event, in any app"
(this is how groups G.1-G.3 in Table 4 are found).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.feasibility import is_feasible
from repro.analysis.symexec import Action, PathSummary
from repro.analysis.values import Const, EventValue, SymValue
from repro.ir.ir import AppIR
from repro.lang import ast
from repro.platform.capabilities import CapabilityDatabase, default_database
from repro.platform.events import Event, EventKind, are_complementary
from repro.properties.catalog import Violation

#: Rules tagged with their owning app: (app name, rule).
OriginRules = list[tuple[str, PathSummary]]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _value_key(action: Action) -> str:
    if isinstance(action.value, SymValue):
        return action.value.key()
    return str(action.value)


def _writes(summary: PathSummary) -> list[tuple[str, str, str, Action]]:
    """(device, attribute, value-key, action) for every attribute write.

    Actions reachable only through over-approximated reflective calls are
    excluded: the S checks run at model construction and reflection-induced
    conflicts would be pure noise (the CTL properties still see reflective
    transitions, which is where the paper's App5 false positive comes from).
    """
    return [
        (a.device, a.attribute or "", _value_key(a), a)
        for a in summary.actions
        if a.attribute is not None and not a.via_reflection
    ]


def effective_event(summary: PathSummary) -> Event:
    """The rule's event, refined with any ``evt.value == c`` constraint.

    An app subscribing to all ``contact`` events whose handler guards a
    branch with ``evt.value == "open"`` effectively reacts to
    ``contact.open``; S.3/S.4 need that refinement.
    """
    event = summary.entry.event
    if event.value is not None:
        return event
    for atom in summary.condition:
        if atom.op != "==":
            continue
        lhs, rhs = atom.lhs, atom.rhs
        if isinstance(rhs, EventValue):
            lhs, rhs = rhs, lhs
        if isinstance(lhs, EventValue) and isinstance(rhs, Const):
            if isinstance(rhs.value, str):
                return Event(event.kind, event.device, event.attribute, rhs.value)
    return event


def _events_can_co_occur(first: Event, second: Event) -> bool:
    """Can the two (refined) events happen at the same instant?

    Same-attribute device events cannot (one attribute changes to one
    value); complementary events cannot; everything else may race.
    """
    if first.kind is EventKind.DEVICE and second.kind is EventKind.DEVICE:
        if (first.device, first.attribute) == (second.device, second.attribute):
            return False
    if first.kind is EventKind.MODE and second.kind is EventKind.MODE:
        return False
    if are_complementary(first, second):
        return False
    return True


def _same_event(first: Event, second: Event) -> bool:
    return first.matches(second) or second.matches(first)


def _jointly_feasible(first: PathSummary, second: PathSummary) -> bool:
    return is_feasible(tuple(first.condition) + tuple(second.condition))


def _reflective(*summaries: PathSummary) -> bool:
    return any(s.uses_reflection for s in summaries)


# ----------------------------------------------------------------------
# S.1 — conflicting values on one "path"
# ----------------------------------------------------------------------
def check_s1(rules: OriginRules) -> list[Violation]:
    violations: list[Violation] = []
    # Intra-handler: one path writes an attribute to two different values.
    for app, summary in rules:
        per_attr: dict[tuple[str, str], list[str]] = {}
        for device, attribute, value, _action in _writes(summary):
            per_attr.setdefault((device, attribute), []).append(value)
        for (device, attribute), values in per_attr.items():
            if len(set(values)) > 1:
                violations.append(
                    Violation(
                        property_id="S.1",
                        apps=(app,),
                        description=(
                            f"handler {summary.entry.handler}() sets "
                            f"{device}.{attribute} to conflicting values "
                            f"{sorted(set(values))} on one path "
                            f"(event {summary.entry.event.label()})"
                        ),
                        via_reflection=_reflective(summary),
                    )
                )
    # Cross-handler, same event (multi-app G.1 semantics).
    for i, (app_a, first) in enumerate(rules):
        for app_b, second in rules[i + 1 :]:
            if (app_a, first.entry.handler) == (app_b, second.entry.handler):
                continue
            ev_a, ev_b = effective_event(first), effective_event(second)
            if not _same_event(ev_a, ev_b):
                continue
            if not _jointly_feasible(first, second):
                continue
            for dev_a, attr_a, val_a, _ in _writes(first):
                for dev_b, attr_b, val_b, _ in _writes(second):
                    if (dev_a, attr_a) == (dev_b, attr_b) and val_a != val_b:
                        violations.append(
                            Violation(
                                property_id="S.1",
                                apps=tuple(sorted({app_a, app_b})),
                                description=(
                                    f"event {ev_a.label()} drives "
                                    f"{dev_a}.{attr_a} to both {val_a!r} "
                                    f"({app_a}) and {val_b!r} ({app_b})"
                                ),
                                via_reflection=_reflective(first, second),
                            )
                        )
    return _dedupe(violations)


# ----------------------------------------------------------------------
# S.2 — same value written repeatedly
# ----------------------------------------------------------------------
def check_s2(rules: OriginRules) -> list[Violation]:
    violations: list[Violation] = []
    for app, summary in rules:
        counts: dict[tuple[str, str, str], int] = {}
        for device, attribute, value, _action in _writes(summary):
            counts[(device, attribute, value)] = (
                counts.get((device, attribute, value), 0) + 1
            )
        for (device, attribute, value), count in counts.items():
            if count > 1:
                violations.append(
                    Violation(
                        property_id="S.2",
                        apps=(app,),
                        description=(
                            f"handler {summary.entry.handler}() sets "
                            f"{device}.{attribute}={value} {count} times on "
                            f"one path (event {summary.entry.event.label()})"
                        ),
                        via_reflection=_reflective(summary),
                    )
                )
    # Cross-handler: two different handlers on the same event write the
    # same value (the O8 + TP12 pattern).
    for i, (app_a, first) in enumerate(rules):
        for app_b, second in rules[i + 1 :]:
            if (app_a, first.entry.handler) == (app_b, second.entry.handler):
                continue
            if app_a == app_b:
                continue  # within one app this is commonplace fan-out
            ev_a, ev_b = effective_event(first), effective_event(second)
            if not _same_event(ev_a, ev_b):
                continue
            if not _jointly_feasible(first, second):
                continue
            writes_a = {(d, a, v) for d, a, v, _ in _writes(first)}
            writes_b = {(d, a, v) for d, a, v, _ in _writes(second)}
            for device, attribute, value in writes_a & writes_b:
                violations.append(
                    Violation(
                        property_id="S.2",
                        apps=tuple(sorted({app_a, app_b})),
                        description=(
                            f"event {ev_a.label()} makes both {app_a} and "
                            f"{app_b} set {device}.{attribute}={value} "
                            f"(repeated command)"
                        ),
                        via_reflection=_reflective(first, second),
                    )
                )
    return _dedupe(violations)


# ----------------------------------------------------------------------
# S.3 — complementary events, same value
# ----------------------------------------------------------------------
def check_s3(rules: OriginRules) -> list[Violation]:
    violations: list[Violation] = []
    for i, (app_a, first) in enumerate(rules):
        for app_b, second in rules[i + 1 :]:
            ev_a, ev_b = effective_event(first), effective_event(second)
            if not are_complementary(ev_a, ev_b):
                continue
            writes_a = {(d, a, v) for d, a, v, _ in _writes(first)}
            writes_b = {(d, a, v) for d, a, v, _ in _writes(second)}
            for device, attribute, value in writes_a & writes_b:
                violations.append(
                    Violation(
                        property_id="S.3",
                        apps=tuple(sorted({app_a, app_b})),
                        description=(
                            f"complementary events {ev_a.label()} and "
                            f"{ev_b.label()} both set "
                            f"{device}.{attribute}={value}"
                        ),
                        via_reflection=_reflective(first, second),
                    )
                )
    return _dedupe(violations)


# ----------------------------------------------------------------------
# S.4 — race: non-complementary events, conflicting values
# ----------------------------------------------------------------------
def check_s4(rules: OriginRules) -> list[Violation]:
    violations: list[Violation] = []
    for i, (app_a, first) in enumerate(rules):
        for app_b, second in rules[i + 1 :]:
            ev_a, ev_b = effective_event(first), effective_event(second)
            if _same_event(ev_a, ev_b):
                continue  # S.1's concern
            if not _events_can_co_occur(ev_a, ev_b):
                continue
            if not _jointly_feasible(first, second):
                continue
            for dev_a, attr_a, val_a, _ in _writes(first):
                for dev_b, attr_b, val_b, _ in _writes(second):
                    if (dev_a, attr_a) == (dev_b, attr_b) and val_a != val_b:
                        violations.append(
                            Violation(
                                property_id="S.4",
                                apps=tuple(sorted({app_a, app_b})),
                                description=(
                                    f"race: events {ev_a.label()} and "
                                    f"{ev_b.label()} may co-occur and drive "
                                    f"{dev_a}.{attr_a} to {val_a!r} vs {val_b!r}"
                                ),
                                via_reflection=_reflective(first, second),
                            )
                        )
    return _dedupe(violations)


# ----------------------------------------------------------------------
# S.5 — handler logic without a matching subscription
# ----------------------------------------------------------------------
def check_s5(
    ir: AppIR, db: CapabilityDatabase | None = None
) -> list[Violation]:
    """Scan every method for event-value dispatch without a subscription."""
    db = db or default_database()
    violations: list[Violation] = []
    subscribed_by_handler: dict[str, list[Event]] = {}
    for sub in ir.subscriptions:
        subscribed_by_handler.setdefault(sub.handler, []).append(sub.event)

    mode_names = {"home", "away", "night", "sleeping"}

    for name, decl in ir.methods().items():
        if decl.body is None or not decl.params:
            continue
        param = decl.params[0].name
        checked_values = _event_value_cases(decl.body, param)
        if not checked_values:
            continue
        events = subscribed_by_handler.get(name, [])
        uncovered: list[str] = []
        for value in checked_values:
            attrs = db.attributes_for_value(value)
            covered = False
            for event in events:
                if event.kind is EventKind.MODE and (
                    value in mode_names or not attrs
                ):
                    covered = True
                elif event.kind is EventKind.DEVICE and event.attribute in attrs:
                    covered = True
                elif event.kind is EventKind.DEVICE and not attrs:
                    covered = True  # unknown value string: be conservative
            if not covered:
                uncovered.append(value)
        if uncovered:
            violations.append(
                Violation(
                    property_id="S.5",
                    apps=(ir.app.name,),
                    description=(
                        f"method {name}() handles event value(s) "
                        f"{sorted(uncovered)} but the app does not subscribe "
                        f"it to a matching event"
                    ),
                )
            )
    return violations


def _event_value_cases(body: ast.Block, param: str) -> set[str]:
    """String constants compared against ``<param>.value`` in a method."""
    values: set[str] = set()
    for node in ast.walk(body):
        if not isinstance(node, ast.BinaryOp) or node.op not in ("==", "!="):
            continue
        sides = [node.left, node.right]
        has_evt_value = any(
            isinstance(s, ast.PropertyAccess)
            and s.name == "value"
            and isinstance(s.obj, ast.Name)
            and s.obj.id in (param, "evt")
            for s in sides
        )
        if not has_evt_value:
            continue
        for side in sides:
            if isinstance(side, ast.Literal) and isinstance(side.value, str):
                values.add(side.value)
    return values


# ----------------------------------------------------------------------
def _dedupe(violations: list[Violation]) -> list[Violation]:
    seen: set[tuple[str, tuple[str, ...], str]] = set()
    unique: list[Violation] = []
    for violation in violations:
        key = (violation.property_id, violation.apps, violation.description)
        if key not in seen:
            seen.add(key)
            unique.append(violation)
    return unique


def check_general_properties(
    rules: OriginRules,
    ir: AppIR | None = None,
    db: CapabilityDatabase | None = None,
) -> list[Violation]:
    """All S checks over a rule set (``ir`` enables S.5)."""
    violations: list[Violation] = []
    violations.extend(check_s1(rules))
    violations.extend(check_s2(rules))
    violations.extend(check_s3(rules))
    violations.extend(check_s4(rules))
    if ir is not None:
        violations.extend(check_s5(ir, db))
    return violations
