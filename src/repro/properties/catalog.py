"""Violation records and the property catalog / applicability matcher."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mc.ctl import Formula
    from repro.model.kripke import KripkeState


@dataclass(frozen=True)
class Violation:
    """One property violation found by Soteria."""

    property_id: str                      # "S.1" ... "P.30"
    apps: tuple[str, ...] = ()
    description: str = ""
    formula: str = ""                     # CTL text for P properties
    devices: tuple[str, ...] = ()
    #: Marked when every path to the violation goes through an
    #: over-approximated reflective call — candidate false positive
    #: (MalIoT App5).
    via_reflection: bool = False
    counterexample: tuple[str, ...] = ()

    def short(self) -> str:
        apps = ", ".join(self.apps)
        return f"[{self.property_id}] {apps}: {self.description}"


@dataclass
class PropertyCatalog:
    """All S and P properties, with device-based applicability matching."""

    specs: list = field(default_factory=list)

    def applicable(self, capabilities: set[str], roles: dict[str, set[str]]):
        """Property specs whose device requirements the app satisfies."""
        return [
            spec for spec in self.specs if spec.applicable(capabilities, roles)
        ]

    def by_id(self, property_id: str):
        for spec in self.specs:
            if spec.id == property_id:
                return spec
        raise KeyError(property_id)

    def ids(self) -> list[str]:
        return [spec.id for spec in self.specs]


def default_catalog() -> PropertyCatalog:
    """The P.1-P.30 catalog (constructed lazily to avoid import cycles)."""
    from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES

    return PropertyCatalog(specs=list(APP_SPECIFIC_PROPERTIES))
