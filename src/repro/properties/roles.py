"""Device-role inference from permission metadata.

Several app-specific properties are phrased over *kinds* of devices that
share a SmartThings capability: P.12 talks about light switches and gun
cases, P.13 about coffee machines and crock-pots, P.17 about AC and heater
outlets — all ``capability.switch`` devices.  The paper's device-centric
property derivation implicitly relies on knowing what a device *is*; the
reproduction recovers that from the permission handle and title text, the
only semantic signal available statically.
"""

from __future__ import annotations

import re

from repro.ir.ir import AppIR, PermissionKind

#: keyword -> role.  First match wins; handles and titles are both scanned.
_ROLE_KEYWORDS: list[tuple[str, str]] = [
    ("light", "light"),
    ("lamp", "light"),
    ("bulb", "light"),
    ("coffee", "appliance"),
    ("crock", "appliance"),
    ("cooker", "appliance"),
    ("oven", "appliance"),
    ("tv", "appliance"),
    ("television", "appliance"),
    ("fan", "fan"),
    ("heater", "heater"),
    ("heat", "heater"),
    ("ac", "ac"),
    ("air_conditioner", "ac"),
    ("aircon", "ac"),
    ("cooling", "ac"),
    ("fridge", "critical"),
    ("refrigerator", "critical"),
    ("freezer", "critical"),
    ("security", "critical"),
    ("camera", "critical"),
    ("smoke", "critical"),
    ("alarm", "critical"),
    ("sprinkler", "sprinkler"),
    ("pump", "sprinkler"),
    ("dehumidifier", "humidity-control"),
    ("humidifier", "humidity-control"),
    ("cabinet", "secured-container"),
    ("drawer", "secured-container"),
    ("gun", "secured-container"),
    ("case", "secured-container"),
    ("vent", "vent"),
    ("window", "vent"),
]


def _tokens(text: str) -> list[str]:
    return [t for t in re.split(r"[^a-z0-9]+", text.lower()) if t]


def device_roles(ir: AppIR) -> dict[str, set[str]]:
    """Role labels per device handle, derived from handle + title text."""
    roles: dict[str, set[str]] = {}
    for perm in ir.permissions:
        if perm.kind is not PermissionKind.DEVICE:
            continue
        words = set(_tokens(perm.handle)) | set(_tokens(perm.title))
        found: set[str] = set()
        for keyword, role in _ROLE_KEYWORDS:
            if keyword in words:
                found.add(role)
        if not found:
            found.add("generic")
        roles[perm.handle] = found
    return roles


def merge_roles(
    per_app: list[dict[str, set[str]]]
) -> dict[str, set[str]]:
    """Union role maps across apps (handles are global device ids here)."""
    merged: dict[str, set[str]] = {}
    for roles in per_app:
        for handle, found in roles.items():
            merged.setdefault(handle, set()).update(found)
    return merged
