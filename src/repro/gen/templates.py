"""Scenario fragments: benign reaction patterns and violation templates.

A :class:`Fragment` is one self-contained app behaviour: the devices it
needs, the subscriptions it installs, and the handler methods it emits
(built as AST nodes, see :mod:`repro.gen.astutil`).  The generator
composes a scenario app from several fragments over fresh device handles.

Two catalogs:

* :data:`BENIGN_PATTERNS` — reaction shapes mined from the corpus
  (motion-follows lights, numeric-guarded fans, timer auto-off,
  presence-driven mode sync, notifications).  They are curated to keep
  the matching misuse properties satisfied, so generated apps are not
  violation soup — though cross-fragment products may still stumble into
  real violations, which is exactly the scenario coverage we want.
* :data:`VIOLATION_TEMPLATES` — violating-by-construction shapes keyed to
  the property catalog (:mod:`repro.properties`): each injects a handler
  that must trip its ``property_id``.  The fuzz driver's metamorphic
  oracle asserts the matching property is flagged.

Handle-name pools are role-aware (:mod:`repro.properties.roles`): a
template that needs a *light*-roled switch draws from light names, benign
switches draw from neutral names so role-gated properties (P.12, P.14)
don't fire by accident of naming.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.gen import astutil as A
from repro.lang import ast

#: Neutral switch handles: no role keyword (see ``_ROLE_KEYWORDS``), so the
#: device gets the ``generic`` role only.
NEUTRAL_SWITCHES = ("wall_switch", "relay_switch", "den_outlet", "closet_switch")


@dataclass(frozen=True)
class SlotSpec:
    """One device requirement of a fragment."""

    stem: str
    capability: str
    names: tuple[str, ...]
    #: Approximate abstract-domain size the device adds to the state
    #: product (enum length, or the typical post-abstraction region count
    #: for numeric attributes) — the generator's state-budget currency.
    weight: int = 2


@dataclass(frozen=True)
class FragmentParts:
    """What one fragment contributes to the app body."""

    subscriptions: tuple[ast.Stmt, ...]
    methods: tuple[ast.MethodDecl, ...]


@dataclass(frozen=True)
class Fragment:
    """One composable app behaviour."""

    key: str
    slots: tuple[SlotSpec, ...]
    build: Callable[[dict[str, str], str, random.Random], FragmentParts]
    #: Property id this fragment violates by construction (None = benign).
    property_id: str | None = None
    #: Subscribes to location-mode events.  The generator admits at most
    #: one mode reader per app: two handlers on the same event would make
    #: the extracted model nondeterministic (a DET violation by
    #: construction, not by scenario).
    reads_mode: bool = False
    #: Writes the location mode (``setLocationMode``) — mode writers put
    #: the app on the broadcast interaction channel.
    writes_mode: bool = False
    #: Violation templates whose property gates on app-caused mode changes
    #: (``mode_set_by_app``) go vacuous when the app merely *tracks* the
    #: mode without writing it; such templates exclude mode fragments.
    avoid_mode: bool = False

    @property
    def weight(self) -> int:
        total = 1
        for slot in self.slots:
            total *= slot.weight
        if self.reads_mode or self.writes_mode:
            total *= 4  # the tracked location.mode attribute
        return total


def _fragment(
    key: str,
    slots: list[SlotSpec],
    build: Callable[[dict[str, str], str, random.Random], FragmentParts],
    property_id: str | None = None,
    reads_mode: bool = False,
    writes_mode: bool = False,
    avoid_mode: bool = False,
) -> Fragment:
    return Fragment(
        key=key,
        slots=tuple(slots),
        build=build,
        property_id=property_id,
        reads_mode=reads_mode,
        writes_mode=writes_mode,
        avoid_mode=avoid_mode,
    )


def _parts(
    subscriptions: list[ast.Stmt], methods: list[ast.MethodDecl]
) -> FragmentParts:
    return FragmentParts(
        subscriptions=tuple(subscriptions), methods=tuple(methods)
    )


# ======================================================================
# Benign reaction patterns
# ======================================================================
def _motion_lights(h, sfx, rng):
    on, off = f"motionOn{sfx}", f"motionOff{sfx}"
    return _parts(
        [
            A.subscribe(h["motion"], "motion.active", on),
            A.subscribe(h["motion"], "motion.inactive", off),
        ],
        [
            A.method_decl(on, [A.log_debug("motion, on"),
                               A.command(h["switch"], "on")]),
            A.method_decl(off, [A.log_debug("quiet, off"),
                                A.command(h["switch"], "off")]),
        ],
    )


def _contact_chime(h, sfx, rng):
    handler = f"doorOpened{sfx}"
    return _parts(
        [A.subscribe(h["contact"], "contact.open", handler)],
        [A.method_decl(handler, [A.command(h["chime"], "beep")])],
    )


def _temp_fan(h, sfx, rng):
    handler = f"tempChanged{sfx}"
    high = rng.choice((72, 75, 78, 80))
    body = [
        A.if_stmt(
            A.binop(A.evt_value(), ">", A.lit(high)),
            [A.command(h["fan"], "on")],
        ),
        A.if_stmt(
            A.binop(A.evt_value(), "<", A.lit(high - 8)),
            [A.command(h["fan"], "off")],
        ),
    ]
    return _parts(
        [A.subscribe(h["temp"], "temperature", handler)],
        [A.method_decl(handler, body)],
    )


def _humidity_vent(h, sfx, rng):
    handler = f"humidityChanged{sfx}"
    body = [
        A.if_stmt(
            A.binop(A.evt_value(), ">", A.lit(60)),
            [A.command(h["vent"], "on")],
        ),
        A.if_stmt(
            A.binop(A.evt_value(), "<", A.lit(45)),
            [A.command(h["vent"], "off")],
        ),
    ]
    return _parts(
        [A.subscribe(h["humidity"], "humidity", handler)],
        [A.method_decl(handler, body)],
    )


def _power_notify(h, sfx, rng):
    handler = f"powerDropped{sfx}"
    floor = rng.choice((3, 5, 8))
    body = [
        A.if_stmt(
            A.binop(A.evt_value(), "<", A.lit(floor)),
            [A.stmt(A.call("sendPush", A.lit("the cycle finished")))],
        )
    ]
    return _parts(
        [A.subscribe(h["meter"], "power", handler)],
        [A.method_decl(handler, body)],
    )


def _presence_mode(h, sfx, rng):
    arrive, leave = f"familyArrived{sfx}", f"familyLeft{sfx}"
    return _parts(
        [
            A.subscribe(h["presence"], "presence.present", arrive),
            A.subscribe(h["presence"], "presence.not present", leave),
        ],
        [
            A.method_decl(
                arrive, [A.stmt(A.call("setLocationMode", A.lit("home")))]
            ),
            A.method_decl(
                leave, [A.stmt(A.call("setLocationMode", A.lit("away")))]
            ),
        ],
    )


def _mode_scene(h, sfx, rng):
    handler = f"modeChanged{sfx}"
    body = [
        A.if_stmt(
            A.binop(A.evt_value(), "==", A.lit("away")),
            [A.command(h["switch"], "off")],
        )
    ]
    return _parts(
        [A.subscribe("location", "mode", handler)],
        [A.method_decl(handler, body)],
    )


def _door_timer(h, sfx, rng):
    opened, tick = f"doorOpen{sfx}", f"autoOff{sfx}"
    delay = rng.choice((60, 120, 300))
    return _parts(
        [A.subscribe(h["contact"], "contact.open", opened)],
        [
            A.method_decl(
                opened, [A.stmt(A.call("runIn", A.lit(delay), A.name(tick)))]
            ),
            A.method_decl(tick, [A.command(h["switch"], "off")], params=()),
        ],
    )


def _smoke_notify(h, sfx, rng):
    handler = f"smokeSeen{sfx}"
    return _parts(
        [A.subscribe(h["smoke"], "smoke.detected", handler)],
        [
            A.method_decl(
                handler, [A.stmt(A.call("sendPush", A.lit("smoke detected")))]
            )
        ],
    )


def _lock_arrival(h, sfx, rng):
    arrive, leave = f"ownerBack{sfx}", f"ownerGone{sfx}"
    return _parts(
        [
            A.subscribe(h["presence"], "presence.present", arrive),
            A.subscribe(h["presence"], "presence.not present", leave),
        ],
        [
            A.method_decl(arrive, [A.command(h["lock"], "unlock")]),
            A.method_decl(leave, [A.command(h["lock"], "lock")]),
        ],
    )


BENIGN_PATTERNS: tuple[Fragment, ...] = (
    _fragment(
        "motion_lights",
        [
            SlotSpec("motion", "motionSensor", ("hall_motion", "den_motion")),
            SlotSpec("switch", "switch", NEUTRAL_SWITCHES),
        ],
        _motion_lights,
    ),
    _fragment(
        "contact_chime",
        [
            SlotSpec("contact", "contactSensor", ("front_contact", "back_contact")),
            SlotSpec("chime", "tone", ("door_chime",), weight=1),
        ],
        _contact_chime,
    ),
    _fragment(
        "temp_fan",
        [
            SlotSpec("temp", "temperatureMeasurement",
                     ("room_temp", "attic_temp"), weight=4),
            SlotSpec("fan", "switch", ("ceiling_fan", "attic_fan")),
        ],
        _temp_fan,
    ),
    _fragment(
        "humidity_vent",
        [
            SlotSpec("humidity", "relativeHumidityMeasurement",
                     ("bath_humidity",), weight=4),
            SlotSpec("vent", "switch", ("vent_fan", "exhaust_fan")),
        ],
        _humidity_vent,
    ),
    _fragment(
        "power_notify",
        [SlotSpec("meter", "powerMeter", ("washer_meter", "dryer_meter"),
                  weight=4)],
        _power_notify,
    ),
    _fragment(
        "presence_mode",
        [SlotSpec("presence", "presenceSensor", ("family_presence",))],
        _presence_mode,
        writes_mode=True,
    ),
    _fragment(
        "mode_scene",
        [SlotSpec("switch", "switch", NEUTRAL_SWITCHES)],
        _mode_scene,
        reads_mode=True,
    ),
    _fragment(
        "door_timer",
        [
            SlotSpec("contact", "contactSensor", ("shed_contact", "gate_contact")),
            SlotSpec("switch", "switch", NEUTRAL_SWITCHES),
        ],
        _door_timer,
    ),
    _fragment(
        "smoke_notify",
        [SlotSpec("smoke", "smokeDetector", ("kitchen_smoke",), weight=3)],
        _smoke_notify,
    ),
    _fragment(
        "lock_arrival",
        [
            SlotSpec("presence", "presenceSensor", ("owner_presence",)),
            SlotSpec("lock", "lock", ("front_door_lock", "side_door_lock")),
        ],
        _lock_arrival,
    ),
)


# ======================================================================
# Violation templates (the metamorphic oracle)
# ======================================================================
def _s1_conflict(h, sfx, rng):
    handler = f"flickOnOff{sfx}"
    return _parts(
        [A.subscribe(h["contact"], "contact.open", handler)],
        [
            A.method_decl(
                handler,
                [A.command(h["switch"], "on"), A.command(h["switch"], "off")],
            )
        ],
    )


def _s2_double(h, sfx, rng):
    handler = f"doubleOff{sfx}"
    return _parts(
        [A.subscribe(h["contact"], "contact.closed", handler)],
        [
            A.method_decl(
                handler,
                [A.command(h["switch"], "off"), A.command(h["switch"], "off")],
            )
        ],
    )


def _s3_complement(h, sfx, rng):
    opened, closed = f"cameOpen{sfx}", f"cameClosed{sfx}"
    return _parts(
        [
            A.subscribe(h["contact"], "contact.open", opened),
            A.subscribe(h["contact"], "contact.closed", closed),
        ],
        [
            A.method_decl(opened, [A.command(h["switch"], "on")]),
            A.method_decl(closed, [A.command(h["switch"], "on")]),
        ],
    )


def _p2_dark_motion(h, sfx, rng):
    handler = f"saveDark{sfx}"
    return _parts(
        [A.subscribe(h["motion"], "motion.active", handler)],
        [A.method_decl(handler, [A.command(h["switch"], "off")])],
    )


def _p3_smoke_lock(h, sfx, rng):
    handler = f"smokeLockdown{sfx}"
    return _parts(
        [A.subscribe(h["smoke"], "smoke.detected", handler)],
        [A.method_decl(handler, [A.command(h["lock"], "lock")])],
    )


def _p9_away_disarm(h, sfx, rng):
    handler = f"cleanerMode{sfx}"
    return _parts(
        [A.subscribe(h["presence"], "presence.not present", handler)],
        [A.method_decl(handler, [A.command(h["security"], "disarm")])],
    )


def _p10_silence_alarm(h, sfx, rng):
    handler = f"quietPlease{sfx}"
    return _parts(
        [A.subscribe(h["smoke"], "smoke.detected", handler)],
        [A.method_decl(handler, [A.command(h["alarm"], "off")])],
    )


def _p11_wet_open(h, sfx, rng):
    handler = f"flushLine{sfx}"
    return _parts(
        [A.subscribe(h["water"], "water.wet", handler)],
        [A.method_decl(handler, [A.command(h["valve"], "open")])],
    )


def _p11_timer_open(h, sfx, rng):
    handler, tick = f"leakSeen{sfx}", f"reopenLine{sfx}"
    return _parts(
        [A.subscribe(h["water"], "water.wet", handler)],
        [
            A.method_decl(
                handler, [A.stmt(A.call("runIn", A.lit(60), A.name(tick)))]
            ),
            A.method_decl(tick, [A.command(h["valve"], "open")], params=()),
        ],
    )


def _p17_both_on(h, sfx, rng):
    handler = f"comfortBlast{sfx}"
    return _parts(
        [A.subscribe(h["contact"], "contact.open", handler)],
        [
            A.method_decl(
                handler,
                [A.command(h["ac"], "on"), A.command(h["heater"], "on")],
            )
        ],
    )


def _p24_shade_heater(h, sfx, rng):
    handler = f"warmUp{sfx}"
    return _parts(
        [A.subscribe(h["shade"], "windowShade.open", handler)],
        [A.method_decl(handler, [A.command(h["heater"], "on")])],
    )


def _p28_sleep_music(h, sfx, rng):
    handler = f"lullaby{sfx}"
    return _parts(
        [A.subscribe(h["sleep"], "sleeping.sleeping", handler)],
        [A.method_decl(handler, [A.command(h["player"], "play")])],
    )


def _p12_mode_chain(h, sfx, rng):
    leave, mode = f"headOut{sfx}", f"awayScene{sfx}"
    return _parts(
        [
            A.subscribe(h["presence"], "presence.not present", leave),
            A.subscribe("location", "mode", mode),
        ],
        [
            A.method_decl(
                leave, [A.stmt(A.call("setLocationMode", A.lit("away")))]
            ),
            A.method_decl(
                mode,
                [
                    A.if_stmt(
                        A.binop(A.evt_value(), "==", A.lit("away")),
                        [A.command(h["lamp"], "on")],
                    )
                ],
            ),
        ],
    )


VIOLATION_TEMPLATES: tuple[Fragment, ...] = (
    _fragment(
        "s1_conflict",
        [
            SlotSpec("contact", "contactSensor", ("pantry_contact",)),
            SlotSpec("switch", "switch", NEUTRAL_SWITCHES),
        ],
        _s1_conflict,
        property_id="S.1",
    ),
    _fragment(
        "s2_double",
        [
            SlotSpec("contact", "contactSensor", ("cellar_contact",)),
            SlotSpec("switch", "switch", NEUTRAL_SWITCHES),
        ],
        _s2_double,
        property_id="S.2",
    ),
    _fragment(
        "s3_complement",
        [
            SlotSpec("contact", "contactSensor", ("porch_contact",)),
            SlotSpec("switch", "switch", NEUTRAL_SWITCHES),
        ],
        _s3_complement,
        property_id="S.3",
    ),
    _fragment(
        "p2_dark_motion",
        [
            SlotSpec("motion", "motionSensor", ("stair_motion",)),
            SlotSpec("switch", "switch", ("hall_light", "stair_light")),
        ],
        _p2_dark_motion,
        property_id="P.2",
    ),
    _fragment(
        "p3_smoke_lock",
        [
            SlotSpec("smoke", "smokeDetector", ("hallway_smoke",), weight=3),
            SlotSpec("lock", "lock", ("entry_lock",)),
        ],
        _p3_smoke_lock,
        property_id="P.3",
    ),
    _fragment(
        "p9_away_disarm",
        [
            SlotSpec("presence", "presenceSensor", ("keyfob_presence",)),
            SlotSpec("security", "securitySystem", ("home_security",), weight=3),
        ],
        _p9_away_disarm,
        property_id="P.9",
    ),
    _fragment(
        "p10_silence_alarm",
        [
            SlotSpec("smoke", "smokeDetector", ("bedroom_smoke",), weight=3),
            SlotSpec("alarm", "alarm", ("siren_alarm",), weight=4),
        ],
        _p10_silence_alarm,
        property_id="P.10",
    ),
    _fragment(
        "p11_wet_open",
        [
            SlotSpec("water", "waterSensor", ("sump_water",)),
            SlotSpec("valve", "valve", ("main_valve",)),
        ],
        _p11_wet_open,
        property_id="P.11",
    ),
    _fragment(
        "p11_timer_open",
        [
            SlotSpec("water", "waterSensor", ("laundry_water",)),
            SlotSpec("valve", "valve", ("supply_valve",)),
        ],
        _p11_timer_open,
        property_id="P.11",
    ),
    _fragment(
        "p17_both_on",
        [
            SlotSpec("contact", "contactSensor", ("window_contact",)),
            SlotSpec("ac", "switch", ("window_ac",)),
            SlotSpec("heater", "switch", ("space_heater",)),
        ],
        _p17_both_on,
        property_id="P.17",
        avoid_mode=True,
    ),
    _fragment(
        "p24_shade_heater",
        [
            SlotSpec("shade", "windowShade", ("bay_shade",), weight=5),
            SlotSpec("heater", "switch", ("portable_heater",)),
        ],
        _p24_shade_heater,
        property_id="P.24",
    ),
    _fragment(
        "p28_sleep_music",
        [
            SlotSpec("sleep", "sleepSensor", ("bed_sleep",)),
            SlotSpec("player", "musicPlayer", ("bedroom_speaker",), weight=6),
        ],
        _p28_sleep_music,
        property_id="P.28",
    ),
    _fragment(
        "p12_mode_chain",
        [
            SlotSpec("presence", "presenceSensor", ("tenant_presence",)),
            SlotSpec("lamp", "switch", ("desk_lamp", "reading_light")),
        ],
        _p12_mode_chain,
        property_id="P.12",
        reads_mode=True,
        writes_mode=True,
    ),
)
