"""AST construction helpers for the scenario generator.

The generator builds :mod:`repro.lang.ast` nodes and renders them with
:func:`repro.lang.pretty.to_source` instead of pasting source strings, so
every synthesized app is inside the parser's accepted grammar by
construction (the pretty/parse round-trip suite keeps that guarantee
honest).  These helpers keep the fragment definitions readable.
"""

from __future__ import annotations

from repro.lang import ast


def lit(value: object) -> ast.Literal:
    """A literal node: strings, numbers, booleans, None."""
    return ast.Literal(value=value)


def name(identifier: str) -> ast.Name:
    return ast.Name(id=identifier)


def call(
    method: str,
    *args: ast.Expr,
    receiver: ast.Expr | None = None,
    named: dict[str, ast.Expr] | None = None,
    closure: ast.ClosureExpr | None = None,
) -> ast.MethodCall:
    return ast.MethodCall(
        receiver=receiver,
        name=method,
        args=list(args),
        named_args=dict(named or {}),
        closure=closure,
    )


def stmt(expr: ast.Expr) -> ast.ExprStmt:
    return ast.ExprStmt(expr=expr)


def command(handle: str, method: str, *args: ast.Expr) -> ast.ExprStmt:
    """``handle.method(args)`` — a device command statement."""
    return stmt(call(method, *args, receiver=name(handle)))


def subscribe(target: str, event: str, handler: str) -> ast.ExprStmt:
    """``subscribe(target, "event", handler)``."""
    return stmt(call("subscribe", name(target), lit(event), name(handler)))


def log_debug(text: str) -> ast.ExprStmt:
    """``log.debug "text"`` — rendered as ``log.debug("text")``."""
    return stmt(call("debug", lit(text), receiver=name("log")))


def if_stmt(
    cond: ast.Expr,
    then: list[ast.Stmt],
    otherwise: list[ast.Stmt] | None = None,
) -> ast.IfStmt:
    return ast.IfStmt(
        cond=cond,
        then=ast.Block(statements=list(then)),
        otherwise=None if otherwise is None else ast.Block(statements=list(otherwise)),
    )


def binop(left: ast.Expr, op: str, right: ast.Expr) -> ast.BinaryOp:
    return ast.BinaryOp(op=op, left=left, right=right)


def evt_value() -> ast.PropertyAccess:
    """``evt.value`` — the event payload read handlers dispatch on."""
    return ast.PropertyAccess(obj=name("evt"), name="value")


def location_mode() -> ast.PropertyAccess:
    """``location.mode`` — the broadcast mode read."""
    return ast.PropertyAccess(obj=name("location"), name="mode")


def method_decl(
    method: str, body: list[ast.Stmt], params: tuple[str, ...] = ("evt",)
) -> ast.MethodDecl:
    return ast.MethodDecl(
        name=method,
        params=[ast.Param(name=p) for p in params],
        body=ast.Block(statements=list(body)),
    )


def device_input(handle: str, capability: str, title: str) -> ast.ExprStmt:
    """One ``input`` declaration of the preferences block."""
    return stmt(
        call(
            "input",
            lit(handle),
            lit(f"capability.{capability}"),
            named={"title": lit(title), "required": lit(True)},
        )
    )


def definition_stmt(app_name: str, description: str) -> ast.ExprStmt:
    return stmt(
        call(
            "definition",
            named={
                "name": lit(app_name),
                "namespace": lit("soteria.repro"),
                "author": lit("Soteria Scenario Generator"),
                "description": lit(description),
                "category": lit("My Apps"),
            },
        )
    )


def preferences_stmt(inputs: list[ast.ExprStmt]) -> ast.ExprStmt:
    section = stmt(
        call(
            "section",
            lit("Devices"),
            closure=ast.ClosureExpr(body=ast.Block(statements=list(inputs))),
        )
    )
    return stmt(
        call(
            "preferences",
            closure=ast.ClosureExpr(body=ast.Block(statements=[section])),
        )
    )


def lifecycle_methods(subscriptions: list[ast.Stmt]) -> list[ast.MethodDecl]:
    """The standard installed/updated/initialize triple."""
    return [
        method_decl("installed", [stmt(call("initialize"))], params=()),
        method_decl(
            "updated",
            [stmt(call("unsubscribe")), stmt(call("initialize"))],
            params=(),
        ),
        method_decl("initialize", subscriptions, params=()),
    ]
