"""Scenario-app generation: synthesize SmartApps beyond the 82-app corpus.

The paper's evaluation stops at the hand-collected corpus; this package
turns the capability reference (:mod:`repro.platform.capabilities`) into an
*unbounded* scenario source.  :func:`generate_app` deterministically
synthesizes a valid SmartApp from a seed — random subscriptions, guarded
handlers over numeric and enum attributes, timers, and location-mode
traffic — by building :mod:`repro.lang.ast` nodes and rendering them with
the pretty-printer, so every generated source is inside the parser's
accepted grammar by construction.

Some generated apps are *violating by construction*: a violation template
(:data:`repro.gen.templates.VIOLATION_TEMPLATES`, keyed to the property
catalog in :mod:`repro.properties`) is injected and recorded, giving the
fuzz driver a metamorphic oracle — the matching property must be flagged.
:func:`generate_cluster` builds groups of apps sharing device handles, the
sweep engine's interaction convention, so synthetic apps form multi-app
environments (and can join corpus clusters through
:func:`repro.corpus.loader.register_app`).

:mod:`repro.gen.shrink` reduces failing inputs (backend disagreement,
missed injections) to minimal reproducers.
"""

from repro.gen.generator import (
    GeneratedApp,
    GenConfig,
    generate_app,
    generate_cluster,
)
from repro.gen.shrink import shrink_cluster, shrink_app
from repro.gen.templates import BENIGN_PATTERNS, VIOLATION_TEMPLATES, Fragment

__all__ = [
    "BENIGN_PATTERNS",
    "Fragment",
    "GenConfig",
    "GeneratedApp",
    "VIOLATION_TEMPLATES",
    "generate_app",
    "generate_cluster",
    "shrink_app",
    "shrink_cluster",
]
