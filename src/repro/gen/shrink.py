"""Greedy delta-debugging over generated SmartApps.

When the fuzz driver finds a disagreeing input (the two checker backends
differ, an injected violation goes undetected, or the pipeline errors),
the raw case is noise: several fragments, most of them irrelevant.  The
shrinker reduces it to a minimal reproducer:

* :func:`shrink_cluster` first drops whole member apps while the failure
  predicate keeps holding;
* :func:`shrink_app` then minimizes each survivor structurally — removing
  handler methods (with their subscriptions), statements inside handler
  bodies, and finally unused device inputs — re-rendering through the
  pretty-printer after every candidate edit, so the reproducer is always
  a valid, parseable app.

The predicate receives candidate sources and returns True while the
failure still reproduces; it must swallow its own exceptions (an edit
that breaks the pipeline in a *different* way is simply rejected).
``protected`` method names are never removed — a missed-injection
reproducer must keep the injected template intact, otherwise the minimal
"reproducer" would be an empty app that trivially misses the violation.
"""

from __future__ import annotations

import copy
import dataclasses
from collections.abc import Callable, Iterable

from repro.lang import ast, parse
from repro.lang.pretty import to_source

#: Methods the generator always emits; removing them changes what the
#: IR builder treats as lifecycle roots, so they are kept.
_LIFECYCLE = frozenset({"installed", "updated", "initialize"})

Predicate = Callable[[str], bool]


def _nodes(node: object) -> Iterable[ast.Node]:
    """Every AST node reachable from ``node`` (dataclass-field walk)."""
    if isinstance(node, ast.Node):
        yield node
        for field in dataclasses.fields(node):
            yield from _nodes(getattr(node, field.name))
    elif isinstance(node, (list, tuple)):
        for item in node:
            yield from _nodes(item)
    elif isinstance(node, dict):
        for item in node.values():
            yield from _nodes(item)


def _referenced_names(module: ast.Module) -> set[str]:
    """Identifiers mentioned anywhere in method bodies."""
    found: set[str] = set()
    for method in module.methods.values():
        for node in _nodes(method):
            if isinstance(node, ast.Name):
                found.add(node.id)
            elif isinstance(node, ast.Literal) and isinstance(node.value, str):
                found.add(node.value)
    return found


def _handler_of(stmt: ast.Stmt) -> str | None:
    """The handler name of a ``subscribe(...)`` statement, if it is one."""
    if not isinstance(stmt, ast.ExprStmt):
        return None
    expr = stmt.expr
    if (
        isinstance(expr, ast.MethodCall)
        and expr.receiver is None
        and expr.name == "subscribe"
        and len(expr.args) >= 3
        and isinstance(expr.args[2], ast.Name)
    ):
        return expr.args[2].id
    return None


def _drop_method(module: ast.Module, name: str) -> None:
    """Remove one method and every subscription pointing at it."""
    module.methods.pop(name, None)
    initialize = module.methods.get("initialize")
    if initialize is not None and initialize.body is not None:
        initialize.body.statements = [
            stmt
            for stmt in initialize.body.statements
            if _handler_of(stmt) != name
        ]


def _removal_candidates(
    module: ast.Module, protected: frozenset[str]
) -> list[tuple[str, object]]:
    """Every structural removal to try, shallowest (biggest) first."""
    candidates: list[tuple[str, object]] = []
    for name in module.methods:
        if name not in _LIFECYCLE and name not in protected:
            candidates.append(("method", name))
    initialize = module.methods.get("initialize")
    if initialize is not None and initialize.body is not None:
        for position, stmt in enumerate(initialize.body.statements):
            if _handler_of(stmt) not in protected:
                candidates.append(("subscription", position))
    for name, method in module.methods.items():
        if name in _LIFECYCLE or name in protected or method.body is None:
            continue
        for position in range(len(method.body.statements)):
            candidates.append(("statement", (name, position)))
    return candidates


def _apply(module: ast.Module, kind: str, target: object) -> bool:
    if kind == "method":
        _drop_method(module, target)
        return True
    if kind == "subscription":
        statements = module.methods["initialize"].body.statements
        if target < len(statements):
            del statements[target]
            return True
        return False
    name, position = target
    method = module.methods.get(name)
    if method is None or method.body is None:
        return False
    if position < len(method.body.statements):
        del method.body.statements[position]
        return True
    return False


def _prune_inputs(module: ast.Module) -> None:
    """Drop ``input`` declarations whose handle no method mentions."""
    mentioned = _referenced_names(module)
    for node in _nodes(module.statements):
        if not isinstance(node, ast.ClosureExpr) or node.body is None:
            continue
        kept = []
        for stmt in node.body.statements:
            expr = stmt.expr if isinstance(stmt, ast.ExprStmt) else None
            if (
                isinstance(expr, ast.MethodCall)
                and expr.name == "input"
                and expr.args
                and isinstance(expr.args[0], ast.Literal)
                and expr.args[0].value not in mentioned
            ):
                continue
            kept.append(stmt)
        node.body.statements = kept


def shrink_app(
    source: str,
    predicate: Predicate,
    protected: Iterable[str] = (),
    max_attempts: int = 400,
) -> str:
    """Minimize one app while ``predicate(source)`` keeps returning True."""
    protected_set = frozenset(protected)
    try:
        module = parse(source)
    except Exception:
        return source
    best = to_source(module)
    if not predicate(best):
        # The canonical rendering must itself reproduce; if not, keep the
        # original bytes untouched.
        return source

    attempts = 0
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for kind, target in _removal_candidates(module, protected_set):
            if attempts >= max_attempts:
                break
            trial = copy.deepcopy(module)
            if not _apply(trial, kind, target):
                continue
            attempts += 1
            candidate = to_source(trial)
            if predicate(candidate):
                module, best, changed = trial, candidate, True
                break  # candidate indices shifted — re-enumerate

    trial = copy.deepcopy(module)
    _prune_inputs(trial)
    candidate = to_source(trial)
    if candidate != best and predicate(candidate):
        best = candidate
    return best


def shrink_cluster(
    sources: list[str],
    predicate: Callable[[list[str]], bool],
    protected: list[Iterable[str]] | None = None,
    max_attempts: int = 400,
) -> list[str]:
    """Minimize a group: drop whole apps first, then shrink survivors."""
    current = list(sources)
    guards = [frozenset(p) for p in (protected or [()] * len(current))]
    if not predicate(current):
        return current

    dropped = True
    while dropped and len(current) > 1:
        dropped = False
        for position in range(len(current)):
            trial = current[:position] + current[position + 1 :]
            if predicate(trial):
                del current[position]
                del guards[position]
                dropped = True
                break

    for position in range(len(current)):
        def app_predicate(candidate: str, position: int = position) -> bool:
            trial = list(current)
            trial[position] = candidate
            return predicate(trial)

        current[position] = shrink_app(
            current[position],
            app_predicate,
            protected=guards[position],
            max_attempts=max_attempts,
        )
    return current
