"""Seeded, deterministic scenario-app synthesis.

:func:`generate_app` composes a valid SmartApp from fragments
(:mod:`repro.gen.templates`): the app is assembled as an AST and rendered
through :func:`repro.lang.pretty.to_source`, so the output is inside the
parser's grammar by construction and byte-identical for a given
``(seed, index)`` — the fuzz driver's reproducibility contract.

All randomness flows through one ``random.Random`` seeded with a string
key (CPython hashes string seeds with SHA-512, independent of
``PYTHONHASHSEED``), so the same seed generates the same corpus on every
platform and process.

:func:`generate_cluster` generates app *groups* wired to interact: the
members share device handles (the sweep engine's device-identity
convention, :func:`repro.corpus.sweep.groups_sharing_devices`), so the
group forms one candidate co-installation for union-model checking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.gen import astutil as A
from repro.gen.templates import (
    BENIGN_PATTERNS,
    VIOLATION_TEMPLATES,
    Fragment,
)
from repro.lang import ast
from repro.lang.pretty import to_source

#: Handle suffixes used to disambiguate name-pool collisions without
#: destroying the role keywords carried by the base name ("hall_light_b"
#: still tokenizes to a *light*; "hall_light2" would not).
_DEDUP_SUFFIXES = ("b", "c", "d", "e", "f", "g")


@dataclass(frozen=True)
class GenConfig:
    """Generation knobs; the defaults match the CI fuzz budget."""

    #: Fragments composed per app (the injected template rides on top).
    max_fragments: int = 3
    #: Probability that an app gets one violation template injected.
    inject_rate: float = 0.5
    #: Abstract-domain product budget per generated app: fragments are
    #: added only while the estimated product stays under it, keeping the
    #: explicit backend comfortable on every generated environment.
    state_budget: int = 512
    #: Product budget for a whole generated cluster (all members).  Kept
    #: well under the explicit/symbolic auto threshold: the fuzz driver
    #: runs *both* backends on every cluster, so the explicit product must
    #: stay cheap to materialize.
    cluster_budget: int = 2_000

    def key(self) -> tuple:
        return (
            self.max_fragments,
            self.inject_rate,
            self.state_budget,
            self.cluster_budget,
        )


@dataclass(frozen=True)
class GeneratedApp:
    """One synthesized scenario app."""

    app_id: str
    name: str
    source: str
    #: Property ids this app violates by construction (injected templates).
    injected: tuple[str, ...]
    #: Fragment keys composed into the app, in emission order.
    fragments: tuple[str, ...]
    #: handle -> capability for every device input.
    devices: dict[str, str] = field(default_factory=dict)
    #: Handler methods belonging to injected templates — the shrinker must
    #: not remove these while minimizing a missed-injection reproducer.
    protected_methods: tuple[str, ...] = ()
    #: Handles shared with cluster siblings (empty for solo apps).
    shared_handles: tuple[str, ...] = ()


def _pick_handles(
    fragment: Fragment,
    rng: random.Random,
    used: dict[str, str],
    forced: dict[str, str],
) -> dict[str, str]:
    """Resolve the fragment's slots to fresh (or forced) device handles.

    ``used`` maps taken handles to capabilities; collisions get a role-
    preserving suffix.  ``forced`` pins specific slots (cluster sharing).
    """
    handles: dict[str, str] = {}
    for slot in fragment.slots:
        if slot.stem in forced:
            handle = forced[slot.stem]
        else:
            handle = rng.choice(slot.names)
            if handle in used:
                for suffix in _DEDUP_SUFFIXES:
                    candidate = f"{handle}_{suffix}"
                    if candidate not in used:
                        handle = candidate
                        break
        used[handle] = slot.capability
        handles[slot.stem] = handle
    return handles


def _compose(
    rng: random.Random,
    config: GenConfig,
    budget: int,
    forced_share: tuple[str, str, str] | None,
    inject: Fragment | None,
) -> tuple[list[Fragment], Fragment | None]:
    """Pick the fragment line-up for one app under the state budget.

    ``forced_share`` is ``(capability, handle, kind)`` for cluster members
    — the app must end up holding that device.  ``inject`` pins a
    violation template (None = benign-only, rng decides nothing).
    """
    chosen: list[Fragment] = []
    weight = inject.weight if inject is not None else 1
    mode_read_taken = inject.reads_mode if inject is not None else False
    no_mode = inject.avoid_mode if inject is not None else False
    pool = list(BENIGN_PATTERNS)

    def admissible(candidate: Fragment) -> bool:
        if candidate.reads_mode and mode_read_taken:
            return False
        if no_mode and (candidate.reads_mode or candidate.writes_mode):
            return False
        return True

    if forced_share is not None:
        # The shared device must land in this app: pick a carrier fragment
        # first so it participates in the budget like everything else.
        # Always a BENIGN carrier, even when the injected template holds
        # a slot of the shared capability: violation templates rely on
        # role-loaded handle names (portable_heater, desk_lamp) that the
        # matching property reads, so re-binding one of *their* slots to
        # the neutral shared handle would silently erase the injected
        # violation (the missed-injection shape a 100-case fuzz campaign
        # reproduces at indices 26 and 45).
        capability = forced_share[0]
        carriers = [
            fragment
            for fragment in pool
            if any(s.capability == capability for s in fragment.slots)
            and admissible(fragment)
        ]
        if carriers:
            fitting = [c for c in carriers if weight * c.weight <= budget]
            if fitting:
                carrier = rng.choice(fitting)
            else:
                # Sharing is mandatory: take the lightest carrier even
                # when the injected template already fills the budget.
                carrier = min(carriers, key=lambda c: c.weight)
            pool.remove(carrier)
            chosen.append(carrier)
            weight *= carrier.weight
            mode_read_taken = mode_read_taken or carrier.reads_mode

    count = rng.randint(1, config.max_fragments)
    while pool and len(chosen) < count:
        candidate = rng.choice(pool)
        pool.remove(candidate)
        if not admissible(candidate):
            continue
        if weight * candidate.weight > budget:
            continue
        chosen.append(candidate)
        weight *= candidate.weight
        mode_read_taken = mode_read_taken or candidate.reads_mode
    return chosen, inject


def _assemble(
    app_name: str,
    description: str,
    fragments: list[Fragment],
    inject: Fragment | None,
    rng: random.Random,
    forced_share: tuple[str, str, str] | None,
) -> tuple[ast.Module, dict[str, str], tuple[str, ...], tuple[str, ...]]:
    """Build the app module from the fragment line-up."""
    used: dict[str, str] = {}
    inputs: list[ast.ExprStmt] = []
    subscriptions: list[ast.Stmt] = []
    methods: list[ast.MethodDecl] = []
    protected: list[str] = []
    shared: list[str] = []

    lineup: list[tuple[Fragment, bool]] = [(f, False) for f in fragments]
    if inject is not None:
        # Deterministic but not always last: position the injected
        # template inside the line-up so its handlers don't telegraph
        # their origin by placement.
        lineup.insert(rng.randrange(len(lineup) + 1), (inject, True))

    # Prefer a benign fragment as the shared-handle carrier: only when
    # NO benign fragment holds the capability may the injected template
    # carry it (its slot names are role-loaded, see _compose).
    benign_can_carry = forced_share is not None and any(
        slot.capability == forced_share[0]
        for fragment, is_injected in lineup
        if not is_injected
        for slot in fragment.slots
    )
    for index, (fragment, is_injected) in enumerate(lineup):
        forced: dict[str, str] = {}
        if forced_share is not None and not (is_injected and benign_can_carry):
            capability, handle, _kind = forced_share
            if handle not in used:
                for slot in fragment.slots:
                    if slot.capability == capability:
                        forced[slot.stem] = handle
                        shared.append(handle)
                        break
        handles = _pick_handles(fragment, rng, used, forced)
        for slot in fragment.slots:
            inputs.append(
                A.device_input(
                    handles[slot.stem],
                    slot.capability,
                    handles[slot.stem].replace("_", " "),
                )
            )
        parts = fragment.build(handles, str(index), rng)
        subscriptions.extend(parts.subscriptions)
        methods.extend(parts.methods)
        if is_injected:
            protected.extend(method.name for method in parts.methods)

    module = ast.Module(
        statements=[
            A.definition_stmt(app_name, description),
            A.preferences_stmt(inputs),
        ],
        methods={},
    )
    for method in A.lifecycle_methods(subscriptions) + methods:
        module.methods[method.name] = method
    return module, used, tuple(protected), tuple(shared)


def generate_app(
    seed: int | str,
    index: int | str,
    config: GenConfig | None = None,
    app_id: str | None = None,
    forced_share: tuple[str, str, str] | None = None,
    inject: bool | None = None,
    budget: int | None = None,
) -> GeneratedApp:
    """Synthesize one scenario app, byte-deterministic in ``(seed, index)``.

    ``inject`` forces (True) or forbids (False) violation injection; the
    default None rolls the configured ``inject_rate``.  ``forced_share``
    — ``(capability, handle, kind)`` — makes the app hold a specific
    device handle (cluster wiring).  ``budget`` overrides the per-app
    state budget (cluster members split the cluster budget).
    """
    config = config or GenConfig()
    rng = random.Random(f"soteria-gen:{seed}:{index}:{config.key()}")
    injected: Fragment | None = None
    roll = rng.random()  # always drawn, so the stream is inject-agnostic
    if inject is None:
        inject = roll < config.inject_rate
    if inject:
        # Only templates that fit the state budget; cluster members
        # (forced_share) leave room for the share-carrier fragment too.
        limit = budget or config.state_budget
        if forced_share is not None:
            limit = max(4, limit // 2)
        eligible = [t for t in VIOLATION_TEMPLATES if t.weight <= limit]
        if eligible:
            injected = rng.choice(eligible)

    fragments, injected = _compose(
        rng, config, budget or config.state_budget, forced_share, injected
    )
    app_name = f"Fuzz Scenario {seed}-{index}"
    description = "Synthesized by the Soteria scenario generator."
    module, devices, protected, shared = _assemble(
        app_name, description, fragments, injected, rng, forced_share
    )
    return GeneratedApp(
        app_id=app_id or f"Gen{index}",
        name=app_name,
        source=to_source(module),
        injected=(injected.property_id,) if injected else (),
        fragments=tuple(f.key for f in fragments)
        + ((injected.key,) if injected else ()),
        devices=devices,
        protected_methods=protected,
        shared_handles=shared,
    )


#: Device channels a generated cluster can share: (capability, handle).
#: Actuator channels make cross-app misuse chains possible; sensor
#: channels make two apps react to the same physical event.
SHARED_CHANNELS: tuple[tuple[str, str, str], ...] = (
    ("switch", "shared_relay", "actuator"),
    ("switch", "shared_fan", "actuator"),
    ("contactSensor", "shared_contact", "sensor"),
    ("motionSensor", "shared_motion", "sensor"),
    ("presenceSensor", "shared_presence", "sensor"),
)


def generate_cluster(
    seed: int | str,
    index: int,
    size: int | None = None,
    config: GenConfig | None = None,
    id_prefix: str | None = None,
) -> list[GeneratedApp]:
    """Synthesize a group of apps sharing at least one device handle.

    Every member holds the cluster's shared device (equal permission
    handles — the sweep engine's interaction convention), so
    ``groups_sharing_devices`` over the member ids recovers the cluster
    as a single candidate co-installation.
    """
    config = config or GenConfig()
    rng = random.Random(f"soteria-gen-cluster:{seed}:{index}:{config.key()}")
    members = size if size is not None else rng.randint(2, 3)
    share = rng.choice(SHARED_CHANNELS)
    per_member = max(16, int(config.cluster_budget ** (1.0 / members)))
    prefix = id_prefix or f"Gen{index}"
    apps = []
    for member in range(members):
        # Compound index: each member draws from its own deterministic
        # stream while staying reproducible from (seed, index).
        apps.append(
            generate_app(
                seed,
                f"{index}.{member}",
                config=config,
                app_id=f"{prefix}m{member}",
                forced_share=share,
                budget=per_member,
            )
        )
    return apps
