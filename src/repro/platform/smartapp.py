"""SmartApp container: a parsed SmartThings app plus metadata accessors."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast, parse


@dataclass
class SmartApp:
    """A SmartThings app: source text, parsed module, and metadata.

    Construction normally goes through :meth:`from_source` (or
    :func:`repro.corpus.loader.load_app` for corpus apps).
    """

    name: str
    source: str
    module: ast.Module
    metadata: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, name: str | None = None) -> "SmartApp":
        """Parse app source and harvest the ``definition(...)`` metadata."""
        module = parse(source)
        metadata = _extract_definition(module)
        app_name = name or str(metadata.get("name", "unnamed-app"))
        return cls(name=app_name, source=source, module=module, metadata=metadata)

    @property
    def category(self) -> str:
        return str(self.metadata.get("category", ""))

    @property
    def description(self) -> str:
        return str(self.metadata.get("description", ""))

    def method(self, name: str) -> ast.MethodDecl | None:
        return self.module.methods.get(name)

    def loc(self) -> int:
        """Non-blank, non-comment source lines (for the Table 2 columns)."""
        count = 0
        in_block_comment = False
        for line in self.source.splitlines():
            stripped = line.strip()
            if in_block_comment:
                if "*/" in stripped:
                    in_block_comment = False
                continue
            if not stripped:
                continue
            if stripped.startswith("//"):
                continue
            if stripped.startswith("/*"):
                if "*/" not in stripped:
                    in_block_comment = True
                continue
            count += 1
        return count


def _extract_definition(module: ast.Module) -> dict[str, object]:
    """Pull the named arguments of the top-level ``definition(...)`` call."""
    for stmt in module.statements:
        if not isinstance(stmt, ast.ExprStmt):
            continue
        expr = stmt.expr
        if (
            isinstance(expr, ast.MethodCall)
            and expr.receiver is None
            and expr.name == "definition"
        ):
            metadata: dict[str, object] = {}
            for key, value in expr.named_args.items():
                if isinstance(value, ast.Literal):
                    metadata[key] = value.value
                elif isinstance(value, ast.GString):
                    text = value.static_text()
                    metadata[key] = text if text is not None else None
            return metadata
    return {}
