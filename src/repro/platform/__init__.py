"""SmartThings platform substrate.

Models the parts of the SmartThings cloud platform that Soteria's analysis
depends on: the device *capability reference* (Sec. 4.2.1 — the paper built
it by crawling official device handlers; here it is hand-authored from the
public capability documentation), device and abstract *events*, and the
parsed SmartApp container.
"""

from repro.platform.capabilities import (
    PARAM,
    Attribute,
    AttributeKind,
    Capability,
    CapabilityDatabase,
    Command,
    default_database,
)
from repro.platform.events import (
    COMPLEMENT_VALUES,
    Event,
    EventKind,
    complement_value,
    are_complementary,
)
from repro.platform.smartapp import SmartApp

__all__ = [
    "PARAM",
    "Attribute",
    "AttributeKind",
    "Capability",
    "CapabilityDatabase",
    "Command",
    "default_database",
    "COMPLEMENT_VALUES",
    "Event",
    "EventKind",
    "complement_value",
    "are_complementary",
    "SmartApp",
]
