"""Events: device events and abstract events (Soteria Sec. 4.1, 4.2.3).

SmartThings apps subscribe to *device events* (attribute changes such as
``"switch.on"`` or all events of an attribute, ``"switch"``) and to
*abstract events*: location mode changes, solar events (sunrise/sunset),
timer schedules, and app-touch.  Soteria models all of them as transition
labels; this module defines the event value objects and the *complement*
relation between event values used by general properties S.3/S.4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(enum.Enum):
    DEVICE = "device"        # a device attribute changed
    MODE = "mode"            # location mode changed (abstract attribute)
    TIMER = "timer"          # runIn / runEvery / schedule fired
    SOLAR = "solar"          # sunrise / sunset
    APP_TOUCH = "app_touch"  # user tapped the app icon
    TIME = "time"            # wall-clock schedule at a user-defined time


#: Complementary enum values: an event carrying one value and an event
#: carrying the other (for the same attribute) cannot co-occur, because a
#: single attribute change produces exactly one of them (paper S.3 vs S.4).
COMPLEMENT_VALUES: dict[str, dict[str, str]] = {
    "switch": {"on": "off", "off": "on"},
    "motion": {"active": "inactive", "inactive": "active"},
    "contact": {"open": "closed", "closed": "open"},
    "presence": {"present": "not present", "not present": "present"},
    "water": {"wet": "dry", "dry": "wet"},
    "smoke": {"detected": "clear", "clear": "detected"},
    "carbonMonoxide": {"detected": "clear", "clear": "detected"},
    "lock": {"locked": "unlocked", "unlocked": "locked"},
    "acceleration": {"active": "inactive", "inactive": "active"},
    "door": {"open": "closed", "closed": "open"},
    "valve": {"open": "closed", "closed": "open"},
    "sleeping": {"sleeping": "not sleeping", "not sleeping": "sleeping"},
    "sound": {"detected": "not detected", "not detected": "detected"},
    "tamper": {"detected": "clear", "clear": "detected"},
}


def complement_value(attribute: str, value: str) -> str | None:
    """The complementary enum value of ``value`` for ``attribute``, if any."""
    return COMPLEMENT_VALUES.get(attribute, {}).get(value)


@dataclass(frozen=True)
class Event:
    """A transition-label event.

    ``device`` is the app-local device handle (or the pseudo-devices
    ``"location"``, ``"app"``, ``"timer"``); ``attribute`` names the changed
    attribute (``"mode"`` for mode events, ``"appTouch"``, ``"timer"``,
    ``"sunrise"``/``"sunset"``); ``value`` restricts to a specific new value
    (None = any change of the attribute).
    """

    kind: EventKind
    device: str
    attribute: str
    value: str | None = None

    def label(self) -> str:
        """Human-readable transition label, e.g. ``smoke.detected``."""
        if self.kind is EventKind.APP_TOUCH:
            return "app-touch"
        if self.kind is EventKind.TIMER:
            return f"timer:{self.attribute}"
        if self.kind is EventKind.SOLAR:
            return self.attribute
        if self.kind is EventKind.TIME:
            return f"time:{self.attribute}"
        if self.kind is EventKind.MODE:
            if self.value:
                return f"mode.{self.value}"
            return "mode"
        if self.value is None:
            return f"{self.device}.{self.attribute}"
        return f"{self.device}.{self.attribute}.{self.value}"

    def matches(self, other: "Event") -> bool:
        """Does a concrete occurrence of ``other`` trigger this subscription?

        A subscription without a value (``"switch"``) matches every value of
        the attribute; with a value (``"switch.on"``) it matches only that
        value.
        """
        if (self.kind, self.device, self.attribute) != (
            other.kind,
            other.device,
            other.attribute,
        ):
            return False
        if self.value is None or other.value is None:
            return True
        return self.value == other.value

    def is_complement_of(self, other: "Event") -> bool:
        """True when the two events are complementary attribute changes."""
        if self.kind is not EventKind.DEVICE or other.kind is not EventKind.DEVICE:
            if self.kind is EventKind.MODE and other.kind is EventKind.MODE:
                return (
                    self.value is not None
                    and other.value is not None
                    and self.value != other.value
                )
            if self.kind is EventKind.SOLAR and other.kind is EventKind.SOLAR:
                return {self.attribute, other.attribute} == {"sunrise", "sunset"}
            return False
        if self.device != other.device or self.attribute != other.attribute:
            return False
        if self.value is None or other.value is None:
            return False
        return complement_value(self.attribute, self.value) == other.value


def are_complementary(first: Event, second: Event) -> bool:
    """Symmetric wrapper around :meth:`Event.is_complement_of`."""
    return first.is_complement_of(second) or second.is_complement_of(first)
