"""Device capability reference (Soteria Sec. 4.2.1).

The paper: *"We developed a crawler script, which visits the status (for
attributes) and reply (for actions) code blocks of SmartThings device
handlers found in its official GitHub repository and determines a complete
set of attributes and actions for devices. We then created our own
platform-specific device capability reference file."*

This module is that reference file for the reproduction: a complete table of
SmartThings capabilities, the attributes each exposes (with their full value
domains), and the commands (actions) each accepts together with the attribute
effects of every command.  Identifying the complete attribute set is what
makes sound state-model extraction possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class _Param:
    """Sentinel: a command writes its *argument* into the attribute."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PARAM"


#: Command effect placeholder — e.g. ``setHeatingSetpoint(t)`` sets
#: ``heatingSetpoint`` to the call argument.
PARAM = _Param()


class AttributeKind(enum.Enum):
    ENUM = "enum"
    NUMERIC = "numeric"
    STRING = "string"


@dataclass(frozen=True)
class Attribute:
    """One device attribute: a named state variable of a device.

    ``values`` is the enumeration domain for ENUM attributes; ``low``/``high``
    bound NUMERIC attributes (used by the property-abstraction stage to
    report pre-reduction state counts, Fig. 11 top).
    """

    name: str
    kind: AttributeKind
    values: tuple[str, ...] = ()
    low: int = 0
    high: int = 100

    def domain_size(self) -> int:
        """Number of raw states this attribute contributes before abstraction."""
        if self.kind is AttributeKind.ENUM:
            return len(self.values)
        if self.kind is AttributeKind.NUMERIC:
            return max(1, self.high - self.low + 1)
        return 1  # STRING attributes are abstracted to a single state


@dataclass(frozen=True)
class Command:
    """A device action and its attribute effects.

    ``sets`` maps attribute name -> value written, where the value is either
    a concrete enum value or :data:`PARAM` (the first call argument).
    Commands with no effects (``refresh()``, ``beep()``) have empty ``sets``.
    """

    name: str
    sets: tuple[tuple[str, object], ...] = ()


@dataclass(frozen=True)
class Capability:
    """A SmartThings capability: a bundle of attributes and commands."""

    name: str
    attributes: dict[str, Attribute] = field(default_factory=dict)
    commands: dict[str, Command] = field(default_factory=dict)

    @property
    def is_actuator(self) -> bool:
        return any(cmd.sets for cmd in self.commands.values())

    @property
    def primary_attribute(self) -> Attribute | None:
        """The attribute sharing the capability's name, if any."""
        if self.name in self.attributes:
            return self.attributes[self.name]
        if len(self.attributes) == 1:
            return next(iter(self.attributes.values()))
        return None


def _enum(name: str, *values: str) -> Attribute:
    return Attribute(name=name, kind=AttributeKind.ENUM, values=values)


def _num(name: str, low: int = 0, high: int = 100) -> Attribute:
    return Attribute(name=name, kind=AttributeKind.NUMERIC, low=low, high=high)


def _cap(name: str, attributes: list[Attribute], commands: list[Command]) -> Capability:
    return Capability(
        name=name,
        attributes={attr.name: attr for attr in attributes},
        commands={cmd.name: cmd for cmd in commands},
    )


def _build_reference() -> dict[str, Capability]:
    caps: list[Capability] = [
        # ------------------------------------------------ actuators
        _cap(
            "switch",
            [_enum("switch", "on", "off")],
            [
                Command("on", (("switch", "on"),)),
                Command("off", (("switch", "off"),)),
            ],
        ),
        _cap(
            "switchLevel",
            [_num("level", 0, 100)],
            [Command("setLevel", (("level", PARAM),))],
        ),
        _cap(
            "outlet",
            [_enum("switch", "on", "off")],
            [
                Command("on", (("switch", "on"),)),
                Command("off", (("switch", "off"),)),
            ],
        ),
        _cap(
            "alarm",
            [_enum("alarm", "off", "siren", "strobe", "both")],
            [
                Command("off", (("alarm", "off"),)),
                Command("siren", (("alarm", "siren"),)),
                Command("strobe", (("alarm", "strobe"),)),
                Command("both", (("alarm", "both"),)),
            ],
        ),
        _cap(
            "valve",
            [_enum("valve", "open", "closed")],
            [
                Command("open", (("valve", "open"),)),
                Command("close", (("valve", "closed"),)),
            ],
        ),
        _cap(
            "lock",
            [_enum("lock", "locked", "unlocked")],
            [
                Command("lock", (("lock", "locked"),)),
                Command("unlock", (("lock", "unlocked"),)),
            ],
        ),
        _cap(
            "doorControl",
            [_enum("door", "open", "closed", "opening", "closing")],
            [
                Command("open", (("door", "open"),)),
                Command("close", (("door", "closed"),)),
            ],
        ),
        _cap(
            "garageDoorControl",
            [_enum("door", "open", "closed", "opening", "closing")],
            [
                Command("open", (("door", "open"),)),
                Command("close", (("door", "closed"),)),
            ],
        ),
        _cap(
            "thermostat",
            [
                _num("temperature", 50, 95),
                _num("heatingSetpoint", 50, 95),
                _num("coolingSetpoint", 50, 95),
                _enum(
                    "thermostatMode", "auto", "cool", "heat", "emergency heat", "off"
                ),
                _enum("thermostatFanMode", "auto", "on", "circulate"),
                _enum(
                    "thermostatOperatingState",
                    "heating",
                    "cooling",
                    "fan only",
                    "idle",
                ),
            ],
            [
                Command("setHeatingSetpoint", (("heatingSetpoint", PARAM),)),
                Command("setCoolingSetpoint", (("coolingSetpoint", PARAM),)),
                Command("setThermostatMode", (("thermostatMode", PARAM),)),
                Command("setThermostatFanMode", (("thermostatFanMode", PARAM),)),
                Command("heat", (("thermostatMode", "heat"),)),
                Command("cool", (("thermostatMode", "cool"),)),
                Command("auto", (("thermostatMode", "auto"),)),
                Command("off", (("thermostatMode", "off"),)),
                Command("fanOn", (("thermostatFanMode", "on"),)),
                Command("fanAuto", (("thermostatFanMode", "auto"),)),
                Command("fanCirculate", (("thermostatFanMode", "circulate"),)),
            ],
        ),
        _cap(
            "thermostatHeatingSetpoint",
            [_num("heatingSetpoint", 50, 95)],
            [Command("setHeatingSetpoint", (("heatingSetpoint", PARAM),))],
        ),
        _cap(
            "thermostatCoolingSetpoint",
            [_num("coolingSetpoint", 50, 95)],
            [Command("setCoolingSetpoint", (("coolingSetpoint", PARAM),))],
        ),
        _cap(
            "musicPlayer",
            [
                _enum("status", "playing", "paused", "stopped"),
                _num("level", 0, 100),
                _enum("mute", "muted", "unmuted"),
            ],
            [
                Command("play", (("status", "playing"),)),
                Command("pause", (("status", "paused"),)),
                Command("stop", (("status", "stopped"),)),
                Command("mute", (("mute", "muted"),)),
                Command("unmute", (("mute", "unmuted"),)),
                Command("setLevel", (("level", PARAM),)),
                Command("playText", (("status", "playing"),)),
                Command("playTrack", (("status", "playing"),)),
            ],
        ),
        _cap(
            "windowShade",
            [
                _enum(
                    "windowShade",
                    "open",
                    "closed",
                    "opening",
                    "closing",
                    "partially open",
                )
            ],
            [
                Command("open", (("windowShade", "open"),)),
                Command("close", (("windowShade", "closed"),)),
                Command("presetPosition", (("windowShade", "partially open"),)),
            ],
        ),
        _cap(
            "colorControl",
            [_num("hue", 0, 100), _num("saturation", 0, 100)],
            [
                Command("setHue", (("hue", PARAM),)),
                Command("setSaturation", (("saturation", PARAM),)),
                Command("setColor", ()),
            ],
        ),
        _cap(
            "securitySystem",
            [
                _enum(
                    "securitySystemStatus", "armedAway", "armedStay", "disarmed"
                )
            ],
            [
                Command("armAway", (("securitySystemStatus", "armedAway"),)),
                Command("armStay", (("securitySystemStatus", "armedStay"),)),
                Command("disarm", (("securitySystemStatus", "disarmed"),)),
            ],
        ),
        _cap(
            "imageCapture",
            [Attribute("image", AttributeKind.STRING)],
            [Command("take", ())],
        ),
        _cap("tone", [], [Command("beep", ())]),
        _cap("refresh", [], [Command("refresh", ())]),
        _cap("polling", [], [Command("poll", ())]),
        _cap(
            "notification",
            [],
            [Command("deviceNotification", ())],
        ),
        _cap("speechSynthesis", [], [Command("speak", ())]),
        # ------------------------------------------------ sensors
        _cap("motionSensor", [_enum("motion", "active", "inactive")], []),
        _cap("contactSensor", [_enum("contact", "open", "closed")], []),
        _cap("presenceSensor", [_enum("presence", "present", "not present")], []),
        _cap("accelerationSensor", [_enum("acceleration", "active", "inactive")], []),
        _cap("waterSensor", [_enum("water", "dry", "wet")], []),
        _cap("smokeDetector", [_enum("smoke", "clear", "detected", "tested")], []),
        _cap(
            "carbonMonoxideDetector",
            [_enum("carbonMonoxide", "clear", "detected", "tested")],
            [],
        ),
        _cap("soundSensor", [_enum("sound", "detected", "not detected")], []),
        _cap("tamperAlert", [_enum("tamper", "clear", "detected")], []),
        _cap("sleepSensor", [_enum("sleeping", "sleeping", "not sleeping")], []),
        _cap("beacon", [_enum("presence", "present", "not present")], []),
        _cap("button", [_enum("button", "pushed", "held")], []),
        _cap("temperatureMeasurement", [_num("temperature", -20, 120)], []),
        _cap("relativeHumidityMeasurement", [_num("humidity", 0, 100)], []),
        _cap("illuminanceMeasurement", [_num("illuminance", 0, 10000)], []),
        _cap("powerMeter", [_num("power", 0, 10000)], []),
        _cap("energyMeter", [_num("energy", 0, 10000)], []),
        _cap("voltageMeasurement", [_num("voltage", 0, 250)], []),
        _cap("battery", [_num("battery", 0, 100)], []),
        _cap("carbonDioxideMeasurement", [_num("carbonDioxide", 0, 5000)], []),
        _cap("soilMoisture", [_num("soilMoisture", 0, 100)], []),
        _cap("waterLevel", [_num("waterLevel", 0, 100)], []),
        _cap("threeAxis", [Attribute("threeAxis", AttributeKind.STRING)], []),
    ]
    return {cap.name: cap for cap in caps}


class CapabilityDatabase:
    """Lookup service over the capability reference.

    Besides capability lookup, it resolves *commands* and *attribute reads*
    for the analyses: given a method call on a device handle, which attribute
    values change; given an enum value (e.g. ``"active"``), which attributes
    could have produced it (used by the S.5 missing-subscription check).
    """

    def __init__(self, capabilities: dict[str, Capability] | None = None) -> None:
        self.capabilities = capabilities or _build_reference()
        self._attr_index: dict[str, list[tuple[str, Attribute]]] = {}
        self._value_index: dict[str, set[str]] = {}
        for cap in self.capabilities.values():
            for attr in cap.attributes.values():
                self._attr_index.setdefault(attr.name, []).append((cap.name, attr))
                for value in attr.values:
                    self._value_index.setdefault(value, set()).add(attr.name)

    def get(self, name: str) -> Capability | None:
        """Look up by capability name, accepting ``capability.`` prefixes."""
        if name.startswith("capability."):
            name = name[len("capability.") :]
        return self.capabilities.get(name)

    def require(self, name: str) -> Capability:
        cap = self.get(name)
        if cap is None:
            raise KeyError(f"unknown capability: {name!r}")
        return cap

    def command(self, capability: str, command: str) -> Command | None:
        cap = self.get(capability)
        if cap is None:
            return None
        return cap.commands.get(command)

    def attribute(self, capability: str, attribute: str) -> Attribute | None:
        cap = self.get(capability)
        if cap is None:
            return None
        return cap.attributes.get(attribute)

    def attributes_for_value(self, value: str) -> set[str]:
        """Attribute names whose enum domain contains ``value``."""
        return set(self._value_index.get(value, set()))

    def attribute_anywhere(self, attribute: str) -> Attribute | None:
        """First attribute definition with this name, from any capability."""
        entries = self._attr_index.get(attribute)
        if not entries:
            return None
        return entries[0][1]

    def names(self) -> list[str]:
        return sorted(self.capabilities)


_DEFAULT: CapabilityDatabase | None = None


def default_database() -> CapabilityDatabase:
    """The process-wide capability reference (built once, shared)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = CapabilityDatabase()
    return _DEFAULT
