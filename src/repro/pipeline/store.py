"""Content-addressed artifact store for the staged analysis pipeline.

Every stage of the Fig. 3 pipeline (``parse -> ir -> model -> kripke /
encode -> check``) produces one picklable **artifact**, addressed by a
key that digests everything the artifact depends on: the stage name, the
keys of its input artifacts, the stage knobs, and the pipeline version.
Identical inputs always map to the identical key, so

* re-running any entry point over unchanged sources re-uses every stage
  from the store (the warm path never re-parses, re-extracts, or
  re-checks anything);
* changing one knob (a new property catalog, a forced encoding) misses
  only on the stages downstream of the change — e.g. a re-check with a
  different catalog reuses the cached ``model`` artifact and re-runs
  only ``check``;
* a union (environment) check reuses its member apps' ``parse``/``ir``/
  ``model`` artifacts byte for byte.

Two layers share one keyspace:

* an in-process **memory layer** (bounded LRU) holding the live objects —
  repeated analyses in one process share structure without ever
  pickling;
* optionally, a **disk layer** under ``root`` with one file per
  artifact::

      <root>/
        v<PIPELINE_VERSION>/
          parse/<key>.pkl
          ir/<key>.pkl
          model/<key>.pkl
          kripke/<key>.pkl
          union/<key>.pkl
          check/<key>.pkl
          analysis/<app id>-<source sha256>.pkl   (whole-result facade)
          sweep/<key>.pkl                         (whole-result facade)

  The ``analysis``/``sweep`` stages are the PR-2 whole-result caches
  (:class:`repro.corpus.diskcache.DiskCache` /
  :class:`~repro.corpus.diskcache.SweepCache`), now facades over this
  store: a finished :class:`~repro.soteria.AppAnalysis` is just the
  coarsest artifact of the pipeline.

The pipeline version is a directory level: bumping
:data:`PIPELINE_VERSION` orphans every older entry at once (lookups only
ever see the current version directory); :meth:`ArtifactStore.prune`
reclaims the disk lazily.  Disk writes are atomic (temp file +
``os.replace``) so concurrent writers — batch worker processes, service
worker threads, parallel CI shards — never expose a torn pickle, and
corrupt or mistyped entries read as misses and are deleted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from pathlib import Path

#: Version of the analysis pipeline baked into every artifact key and
#: cache path.  Bump this whenever a change anywhere in the pipeline
#: (IR, abstraction, model extraction, property catalog, result
#: dataclasses) can alter an artifact, so stale results are never served
#: across code changes.
PIPELINE_VERSION = "7"   # 7: SAT/BDD portfolio backends — check outcomes
                         # and results carry portfolio engine stats, and
                         # check keys include the BDD knobs for every
                         # non-explicit backend

#: Environment variable consulted when no cache directory is passed
#: explicitly (CLI ``--cache-dir`` and the ``cache_dir=`` parameters win).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Stage names in pipeline order (display order for ``soteria cache``).
#: ``fleet`` is the coarsest tier: one household verdict per canonical
#: household form (:class:`repro.corpus.diskcache.FleetCache`).
STAGE_ORDER = (
    "parse", "ir", "model", "kripke", "union", "check", "analysis", "sweep",
    "fleet",
)

#: Default bound on live objects held by the memory layer.  Analyses of
#: the 82-app corpus fit with room to spare; unbounded growth would leak
#: in long fuzz campaigns that synthesize thousands of one-shot apps.
DEFAULT_MEMORY_ENTRIES = 4096


def resolve_cache_dir(cache_dir: str | os.PathLike | None) -> Path | None:
    """An explicit cache dir, else the ``REPRO_CACHE_DIR`` env, else None."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env is not None and env.strip():
        return Path(env.strip())
    return None


def artifact_key(
    stage: str,
    inputs: Sequence[str],
    knobs: Mapping[str, object] | None = None,
    version: str = PIPELINE_VERSION,
) -> str:
    """The content address of one stage artifact.

    Digests the stage name, the input artifact keys **in order** (order
    is meaning-bearing: union members are positional), the knob mapping
    (order-insensitive), and the pipeline version.  Any difference in any
    component yields a different key, so the store never needs
    invalidation logic — superseded artifacts simply stop being
    referenced.
    """
    parts = [f"stage={stage}", f"version={version}"]
    parts.extend(f"input={value}" for value in inputs)
    for name in sorted(knobs or {}):
        parts.append(f"knob:{name}={(knobs or {})[name]!r}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Two-layer (memory LRU + optional disk) store of stage artifacts.

    ``root=None`` is a memory-only store (the default pipeline's mode —
    process-lifetime reuse without touching the filesystem).  All
    methods are thread-safe: the service's worker pool shares one store.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        version: str = PIPELINE_VERSION,
        max_memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ):
        self.root = Path(root) if root is not None else None
        self.version = version
        self.max_memory_entries = max_memory_entries
        self._memory: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._counters: dict[str, dict[str, int]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def version_dir(self) -> Path | None:
        if self.root is None:
            return None
        return self.root / f"v{self.version}"

    def stage_dir(self, stage: str) -> Path | None:
        if self.version_dir is None:
            return None
        return self.version_dir / stage

    def path_for(self, stage: str, key: str) -> Path | None:
        directory = self.stage_dir(stage)
        if directory is None:
            return None
        return directory / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def _count(self, stage: str, event: str, amount: int = 1) -> None:
        with self._lock:
            counter = self._counters.setdefault(
                stage,
                {"memory_hits": 0, "disk_hits": 0, "misses": 0, "writes": 0},
            )
            counter[event] += amount

    def get(
        self,
        stage: str,
        key: str,
        expected: type = object,
        memory_only: bool = False,
    ) -> object | None:
        """The artifact for (stage, key), or None (counts a hit/miss).

        ``memory_only`` skips the disk layer both ways — used for
        artifacts keyed on process-local objects (a custom capability
        database or property catalog), whose keys are meaningless to
        other processes.  A corrupt or mistyped disk entry is a miss and
        is deleted so the next write replaces it cleanly.
        """
        slot = (stage, key)
        with self._lock:
            if slot in self._memory:
                value = self._memory[slot]
                if isinstance(value, expected):
                    self._memory.move_to_end(slot)
                    self._count(stage, "memory_hits")
                    return value
        if not memory_only:
            path = self.path_for(stage, key)
            if path is not None:
                value = _read_pickle(path, expected)
                if value is not None:
                    self._remember(slot, value)
                    self._count(stage, "disk_hits")
                    return value
        self._count(stage, "misses")
        return None

    def put(
        self,
        stage: str,
        key: str,
        value: object,
        memory_only: bool = False,
        strict: bool = False,
    ) -> None:
        """Insert one artifact (memory always; disk unless ``memory_only``).

        Disk persistence is best-effort by default — an unwritable cache
        volume (read-only CI restore, full disk) must never fail the
        analysis that produced the artifact; it degrades to future
        misses.  ``strict=True`` propagates the write error instead (the
        whole-result facades use it so their callers keep the historical
        contract).
        """
        self._remember((stage, key), value)
        self._count(stage, "writes")
        if memory_only:
            return
        path = self.path_for(stage, key)
        if path is None:
            return
        try:
            _write_pickle(path, value, prefix=stage)
        except Exception:
            if strict:
                raise

    def contains_disk(self, stage: str, key: str) -> bool:
        """Is the artifact persisted on disk?  (No counter effect.)"""
        path = self.path_for(stage, key)
        return path is not None and path.exists()

    def contains(self, stage: str, key: str) -> bool:
        """Is the artifact in either layer?  (No counter effect — used to
        seed caller-supplied inputs without skewing hit rates.)"""
        with self._lock:
            if (stage, key) in self._memory:
                return True
        return self.contains_disk(stage, key)

    def _remember(self, slot: tuple[str, str], value: object) -> None:
        with self._lock:
            self._memory[slot] = value
            self._memory.move_to_end(slot)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries(self, stage: str) -> list[Path]:
        """Disk entries of one stage (current version), sorted by name."""
        directory = self.stage_dir(stage)
        if directory is None or not directory.is_dir():
            return []
        return sorted(p for p in directory.iterdir() if p.suffix == ".pkl")

    def disk_stages(self) -> list[str]:
        """Stages with at least one disk entry, in pipeline order."""
        if self.version_dir is None or not self.version_dir.is_dir():
            return []
        found = sorted(
            child.name for child in self.version_dir.iterdir() if child.is_dir()
        )
        ordered = [stage for stage in STAGE_ORDER if stage in found]
        ordered.extend(stage for stage in found if stage not in STAGE_ORDER)
        return ordered

    def counters(self) -> dict[str, dict[str, int]]:
        """Per-stage lifetime hit/miss/write counters of this process."""
        with self._lock:
            return {stage: dict(counts) for stage, counts in self._counters.items()}

    def cache_info(self) -> dict:
        """Per-stage stats: disk entries + bytes, process hit/miss counters."""
        stages: dict[str, dict[str, int]] = {}
        for stage in self.disk_stages():
            paths = self.entries(stage)
            stages[stage] = {
                "entries": len(paths),
                "bytes": sum(p.stat().st_size for p in paths if p.exists()),
            }
        for stage, counts in self.counters().items():
            stages.setdefault(stage, {"entries": 0, "bytes": 0}).update(counts)
        for stats in stages.values():
            for event in ("memory_hits", "disk_hits", "misses", "writes"):
                stats.setdefault(event, 0)
            stats["hits"] = stats["memory_hits"] + stats["disk_hits"]
        return {
            "root": None if self.root is None else str(self.root),
            "version": self.version,
            "memory_entries": len(self._memory),
            "stages": stages,
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()
            self._counters.clear()

    def clear_disk(self) -> int:
        """Delete every current-version artifact; returns the count."""
        if self.version_dir is None or not self.version_dir.is_dir():
            return 0
        return _clear_tree(self.version_dir)

    def prune(self) -> int:
        """Delete entries of other pipeline versions; returns the count.

        Lazy garbage collection: stale-version directories are
        unreachable by lookups, this just reclaims the disk.
        """
        if self.root is None or not self.root.is_dir():
            return 0
        removed = 0
        for child in self.root.iterdir():
            if not child.is_dir() or child == self.version_dir:
                continue
            removed += _clear_tree(child)
        return removed


# ----------------------------------------------------------------------
def _clear_tree(directory: Path) -> int:
    """Recursively delete a cache subtree; returns files removed."""
    count = 0
    for entry in list(directory.iterdir()):
        if entry.is_dir():
            count += _clear_tree(entry)
        else:
            try:
                entry.unlink()
                count += 1
            except OSError:
                pass
    try:
        directory.rmdir()
    except OSError:
        pass
    return count


def _read_pickle(path: Path, expected: type) -> object | None:
    """Load one entry; corrupt or mistyped files are deleted misses."""
    try:
        with open(path, "rb") as handle:
            value = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:
        value = None
    if value is None or not isinstance(value, expected):
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return value


def _write_pickle(path: Path, value: object, prefix: str) -> None:
    """Write one entry atomically (temp file + ``os.replace``)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{prefix}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
