"""Result dataclasses assembled from pipeline stage artifacts.

These are the public result types of :func:`repro.analyze_app` and
:func:`repro.analyze_environment` (re-exported from
:mod:`repro.soteria` for compatibility).  They live here, below the
runner, because the pipeline both produces them (assembly of stage
artifacts) and consumes them (a precomputed :class:`AppAnalysis` handed
to an environment run seeds the per-app stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import AppIR
from repro.mc.explicit import CheckResult
from repro.model import StateModel
from repro.model.kripke import KripkeStructure
from repro.platform.smartapp import SmartApp
from repro.properties.catalog import Violation


@dataclass
class AppAnalysis:
    """Everything Soteria derives from one app.

    ``kripke`` is None when the app was checked symbolically (a model
    whose domain product exceeds the extractor's explicit budget is never
    materialized — ``backend`` records which checker ran, and
    ``state_estimate`` the domain-product size either way).
    ``skipped_properties`` names checks the chosen backend could not run
    (the symbolic path skips DET, which is defined on materialized
    transitions) — surfaced instead of silently omitted.
    """

    app: SmartApp
    ir: AppIR
    model: StateModel
    kripke: KripkeStructure | None
    violations: list[Violation] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)
    check_results: dict[str, list[CheckResult]] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    backend: str = "explicit"
    state_estimate: int = 0
    #: Property ids the backend skipped (e.g. ``DET`` on the symbolic
    #: path); empty when every applicable check ran.
    skipped_properties: list[str] = field(default_factory=list)
    #: Relation encoding the symbolic backend used; None when explicit.
    encoding: str | None = None
    #: Resolved BDD kernel the symbolic backend used; None when explicit.
    kernel: str | None = None
    #: The kernel's final stats() snapshot; None when explicit.
    kernel_stats: dict | None = None
    #: Engine-usage counters of the SAT/BDD portfolio (``bmc`` and
    #: ``portfolio`` backends only; None elsewhere).
    portfolio: dict | None = None
    #: The numeric-abstraction knob the model stage ran with.
    abstract_numeric: bool = True
    #: Token of the capability database the analysis ran under
    #: (``"default"`` for the shared one, a process-local token
    #: otherwise) — the pipeline keys union artifacts on it so a member
    #: precomputed with a custom database never aliases default-db keys.
    db_token: str = "default"

    def violated_ids(self) -> set[str]:
        return {v.property_id for v in self.violations}

    def has_violations(self) -> bool:
        return bool(self.violations)


@dataclass
class EnvironmentAnalysis:
    """Multi-app analysis over the union state model (Algorithm 2).

    ``kripke`` is populated by the explicit backend only: the symbolic
    backend never materializes the union product, so there is no explicit
    structure to hand out (``backend`` records which one ran, and
    ``state_estimate`` the domain-product size either way).
    """

    analyses: list[AppAnalysis]
    union_model: StateModel
    kripke: KripkeStructure | None
    violations: list[Violation] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    backend: str = "explicit"
    state_estimate: int = 0
    check_results: dict[str, list[CheckResult]] = field(default_factory=dict)
    #: Relation encoding the symbolic backend used (``monolithic`` or
    #: ``partitioned``); None when the explicit backend ran.
    encoding: str | None = None
    #: Resolved BDD kernel the symbolic backend used; None when explicit.
    kernel: str | None = None
    #: The kernel's final stats() snapshot; None when explicit.
    kernel_stats: dict | None = None
    #: Engine-usage counters of the SAT/BDD portfolio (``bmc`` and
    #: ``portfolio`` backends only; None elsewhere).
    portfolio: dict | None = None

    def multi_app_violations(self) -> list[Violation]:
        """Violations involving two or more apps (the Table 4 kind)."""
        return [v for v in self.violations if len(v.apps) > 1]

    def violated_ids(self) -> set[str]:
        return {v.property_id for v in self.violations}
