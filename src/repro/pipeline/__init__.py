"""Staged analysis pipeline with content-addressed artifacts.

The Fig. 3 call chain (``parse -> ir -> model -> kripke/encode ->
check``) decomposed into addressable stages:

* :mod:`repro.pipeline.store` — the two-layer artifact store keyed on
  ``(stage, input digests, knobs, PIPELINE_VERSION)``;
* :mod:`repro.pipeline.stages` — each stage as a pure artifact-producing
  function;
* :mod:`repro.pipeline.runner` — :class:`Pipeline`, the orchestrator
  that chains keys, replays cached artifacts, and assembles the public
  result dataclasses;
* :mod:`repro.pipeline.results` — :class:`AppAnalysis` /
  :class:`EnvironmentAnalysis` (re-exported by :mod:`repro.soteria`).

Everything above — the ``soteria`` CLI, the corpus batch/sweep/fuzz
drivers, and the :mod:`repro.service` HTTP layer — drives analyses
through this package.
"""

from repro.pipeline.results import AppAnalysis, EnvironmentAnalysis
from repro.pipeline.runner import Pipeline, default_pipeline, pipeline_for
from repro.pipeline.stages import (
    AUTO_SYMBOLIC_THRESHOLD,
    BACKENDS,
    CheckOutcome,
    resolve_backend,
    source_digest,
    validate_knobs,
)
from repro.pipeline.store import (
    CACHE_DIR_ENV,
    PIPELINE_VERSION,
    ArtifactStore,
    artifact_key,
    resolve_cache_dir,
)

__all__ = [
    "AUTO_SYMBOLIC_THRESHOLD",
    "BACKENDS",
    "CACHE_DIR_ENV",
    "PIPELINE_VERSION",
    "AppAnalysis",
    "ArtifactStore",
    "CheckOutcome",
    "EnvironmentAnalysis",
    "Pipeline",
    "artifact_key",
    "default_pipeline",
    "pipeline_for",
    "resolve_backend",
    "resolve_cache_dir",
    "source_digest",
    "validate_knobs",
]
