"""The pipeline stages of Fig. 3 as pure artifact-producing functions.

Each ``run_*`` function is one stage: it takes the previous stage's
artifacts plus knobs and returns one picklable artifact —

========  =============================================  ==================
stage     inputs                                         artifact
========  =============================================  ==================
parse     source text                                    :class:`SmartApp`
ir        parse artifact + capability database           :class:`AppIR`
model     ir artifact + abstraction/materialization      :class:`StateModel`
kripke    materialized model artifact                    :class:`KripkeStructure`
union     member model artifacts + sharing map           :class:`StateModel`
check     model/union artifact + catalog + backend       :class:`CheckOutcome`
========  =============================================  ==================

The functions hold **no caching and no timing** — orchestration (which
stage to run, which artifact key addresses it, auto-backend fallback)
lives in :class:`repro.pipeline.runner.Pipeline`.  Keeping the stages
pure is what makes them addressable: the runner, the corpus batch
driver, and the analysis service all execute the same functions through
the same artifact store.

The symbolic checker's BDD encoding is deliberately *inside* the check
stage rather than an artifact of its own: BDD managers are mutable
machine-local state, cheap to rebuild and unsafe to pickle, while the
:class:`CheckOutcome` they produce is plain data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import count as _count

from repro.ir import AppIR, build_ir
from repro.mc.explicit import CheckResult, ExplicitChecker
from repro.mc.kernel import record_kernel_stats, resolve_kernel
from repro.model import (
    StateModel,
    build_kripke,
    build_union_model,
    build_union_skeleton,
    extract_model,
)
from repro.model.encoder import ENCODINGS
from repro.model.kripke import KripkeStructure
from repro.platform.capabilities import CapabilityDatabase, default_database
from repro.platform.smartapp import SmartApp
from repro.properties.appspecific import APP_SPECIFIC_PROPERTIES
from repro.properties.catalog import PropertyCatalog, Violation
from repro.properties.general import check_general_properties
from repro.properties.roles import device_roles, merge_roles

#: Union-state estimate beyond which the ``auto`` backend switches from
#: explicit to symbolic checking when no explicit budget is passed.  This
#: is the sweep engine's historical skip budget: every curated paper group
#: fits under it with room to spare, so ``auto`` keeps those on the (for
#: small models faster) explicit path and reserves BDDs for the clusters
#: the old budget used to reject.
AUTO_SYMBOLIC_THRESHOLD = 10_000

#: Recognized checker backends.  ``bmc`` answers with the SAT engines
#: (bounded refutation, then IC3 proof) before falling back to BDDs;
#: ``portfolio`` races a shallow BMC pass against the BDD checker.
BACKENDS = ("auto", "explicit", "symbolic", "bmc", "portfolio")


def validate_knobs(backend: str, encoding: str, kernel: str = "auto") -> None:
    """Fail fast on a misspelled knob — even when the value would never
    be consulted on this particular input (e.g. a small model resolving
    to the explicit backend must still reject a bogus encoding or an
    unavailable BDD kernel)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if encoding not in ENCODINGS:
        raise ValueError(
            f"unknown encoding {encoding!r}; expected one of {', '.join(ENCODINGS)}"
        )
    resolve_kernel(kernel)


def resolve_backend(
    backend: str, estimate: int, max_union_states: int | None = None
) -> str:
    """Pick the checker backend for a union of ``estimate`` product states.

    ``auto`` goes symbolic once the estimate exceeds the explicit budget
    (``max_union_states`` when given, else :data:`AUTO_SYMBOLIC_THRESHOLD`)
    — the clusters the old sweep skipped are exactly the ones the BDD
    backend exists for.  Explicit and symbolic are honored as-is.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend != "auto":
        return backend
    budget = max_union_states if max_union_states is not None else AUTO_SYMBOLIC_THRESHOLD
    return "symbolic" if estimate > budget else "explicit"


# ======================================================================
# Input digests and knob tokens
# ======================================================================
def source_digest(name: str | None, source: str) -> str:
    """Content address of one submitted source (the parse-stage input)."""
    payload = f"{name or ''}\0{source}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


_token_counter = _count(1)


def _object_token(obj: object, kind: str) -> str:
    """A process-local token for a non-default knob object.

    Stamped onto the instance so repeated calls with the same object map
    to the same artifacts; artifacts keyed on such tokens stay in the
    memory layer (the token means nothing to another process).
    """
    token = getattr(obj, "_artifact_token", None)
    if isinstance(token, str):
        return token
    token = f"{kind}-{next(_token_counter)}"
    try:
        object.__setattr__(obj, "_artifact_token", token)
    except (AttributeError, TypeError):
        token = f"{kind}-id{id(obj)}"
    return token


def db_token(db: CapabilityDatabase) -> str:
    """``"default"`` for the shared capability database, else per-object."""
    if db is default_database():
        return "default"
    return _object_token(db, "db")


def catalog_token(catalog: PropertyCatalog) -> str:
    """``"default"`` for any catalog over the stock property specs.

    :func:`repro.properties.catalog.default_catalog` builds a fresh
    object per call, so identity of the *catalog* cannot define default —
    identity of its spec list can.
    """
    specs = catalog.specs
    if len(specs) == len(APP_SPECIFIC_PROPERTIES) and all(
        a is b for a, b in zip(specs, APP_SPECIFIC_PROPERTIES)
    ):
        return "default"
    return _object_token(catalog, "catalog")


# ======================================================================
# Check-stage artifact
# ======================================================================
@dataclass
class CheckOutcome:
    """Artifact of the check stage: every verdict, none of the machinery.

    Holds the Fig. 9 outputs (violations with decoded witness traces,
    per-property CTL results) plus what was checked and what the chosen
    backend could not check — but no checker, Kripke structure, or BDD
    state, so it pickles small and replays from the store instantly.
    """

    violations: list[Violation] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)
    check_results: dict[str, list[CheckResult]] = field(default_factory=dict)
    #: Property ids this backend skipped (``DET`` on the symbolic path).
    skipped_properties: list[str] = field(default_factory=list)
    #: Resolved symbolic relation encoding; None for the explicit backend.
    encoding: str | None = None
    #: Resolved BDD kernel name; None for the explicit backend.
    kernel: str | None = None
    #: The kernel's final stats() snapshot (observability; None on the
    #: explicit backend).
    kernel_stats: dict | None = None
    #: Engine-usage counters of the SAT/BDD portfolio (``bmc`` and
    #: ``portfolio`` backends only; None elsewhere).
    portfolio: dict | None = None


# ======================================================================
# Stages
# ======================================================================
def run_parse(source: str, name: str | None = None) -> SmartApp:
    """parse: source text -> parsed :class:`SmartApp`."""
    return SmartApp.from_source(source, name)


def run_ir(app: SmartApp, db: CapabilityDatabase) -> AppIR:
    """ir: parsed app -> intermediate representation."""
    return build_ir(app, db)


def run_model(
    ir: AppIR,
    db: CapabilityDatabase,
    abstract_numeric: bool = True,
    materialize: bool = True,
) -> StateModel:
    """model: IR -> state model.

    ``materialize=True`` enumerates states/transitions (raising
    :class:`~repro.model.extractor.StateExplosionError` past the
    extractor budget); ``materialize=False`` produces the skeleton form
    the symbolic backend encodes without enumerating anything.
    """
    return extract_model(
        ir, db=db, abstract_numeric=abstract_numeric, materialize=materialize
    )


def run_kripke(model: StateModel) -> KripkeStructure:
    """kripke: materialized model -> explicit Kripke structure."""
    return build_kripke(model)


def run_union(
    models: list[StateModel],
    db: CapabilityDatabase,
    shared_devices: dict[tuple[str, str], str] | None = None,
    materialize: bool = True,
    max_states: int | None = None,
) -> StateModel:
    """union: member models -> Algorithm-2 union model (or its skeleton)."""
    if not materialize:
        return build_union_skeleton(models, db=db, shared_devices=shared_devices)
    kwargs = {} if max_states is None else {"max_states": max_states}
    return build_union_model(
        models, db=db, shared_devices=shared_devices, **kwargs
    )


def run_app_check(
    app_name: str,
    ir: AppIR,
    model: StateModel,
    kripke: KripkeStructure | None,
    db: CapabilityDatabase,
    catalog: PropertyCatalog,
    backend: str,
    encoding: str = "auto",
    kernel: str = "auto",
) -> CheckOutcome:
    """check (single app): general properties + CTL on one model."""
    outcome = CheckOutcome()
    origins = [(app_name, s) for s in model.all_rules()]
    outcome.violations.extend(check_general_properties(origins, ir=ir, db=db))
    if backend == "explicit":
        outcome.violations.extend(determinism_violations(model))
        checker = ExplicitChecker(kripke)
        labels = kripke.labels
    elif backend in ("bmc", "portfolio"):
        from repro.mc.portfolio import PortfolioChecker

        # Same skeleton/written semantics as the symbolic branch below.
        skeleton = build_union_skeleton([model], db=db)
        checker = PortfolioChecker(
            skeleton,
            mode=backend,
            written=frozenset(),
            encoding=encoding,
            kernel=kernel,
        )
        labels = checker.labels
        outcome.skipped_properties.append("DET")
    else:
        from repro.mc.symbolic import SymbolicModelChecker
        from repro.model.encoder import SymbolicUnionModel

        # The union skeleton of one model is the model itself with
        # rule_origins populated; the empty ``written`` set keeps the
        # single-app fire-on-change semantics (no self-stimulation).
        skeleton = build_union_skeleton([model], db=db)
        symbolic = SymbolicUnionModel(
            skeleton, encoding=encoding, written=frozenset(), kernel=kernel
        )
        checker = SymbolicModelChecker(symbolic)
        labels = checker.labels
        outcome.encoding = symbolic.encoding
        outcome.kernel = symbolic.kernel
        # DET is defined on materialized transitions, which this backend
        # never builds — record the gap instead of silently omitting it.
        outcome.skipped_properties.append("DET")
    check_app_specific(outcome, [ir], model, checker, labels, catalog)
    _finish_check(outcome, checker, backend)
    return outcome


def run_env_check(
    union: StateModel,
    irs: list[AppIR],
    kripke: KripkeStructure | None,
    catalog: PropertyCatalog,
    backend: str,
    encoding: str = "auto",
    kernel: str = "auto",
) -> CheckOutcome:
    """check (environment): general properties + CTL on the union model."""
    outcome = CheckOutcome()
    outcome.violations.extend(check_general_properties(union.rule_origins))
    if backend == "explicit":
        checker = ExplicitChecker(kripke)
        labels = kripke.labels
    elif backend in ("bmc", "portfolio"):
        from repro.mc.portfolio import PortfolioChecker

        checker = PortfolioChecker(
            union, mode=backend, encoding=encoding, kernel=kernel
        )
        labels = checker.labels
    else:
        from repro.mc.symbolic import SymbolicModelChecker
        from repro.model.encoder import SymbolicUnionModel

        symbolic = SymbolicUnionModel(union, encoding=encoding, kernel=kernel)
        checker = SymbolicModelChecker(symbolic)
        labels = checker.labels
        outcome.encoding = symbolic.encoding
        outcome.kernel = symbolic.kernel
    check_app_specific(outcome, irs, union, checker, labels, catalog)
    _finish_check(outcome, checker, backend)
    return outcome


def _finish_check(outcome: CheckOutcome, checker, backend: str) -> None:
    """Harvest backend observability after the property pass.

    The portfolio backends resolve their BDD knobs only if some formula
    actually fell back, so their encoding/kernel fields stay None on an
    all-SAT run — the stats dict records which engines answered.
    """
    if backend in ("bmc", "portfolio"):
        outcome.portfolio = dict(checker.stats)
        model = checker.symbolic_model
        if model is not None:
            outcome.encoding = model.encoding
            outcome.kernel = model.kernel
    if outcome.kernel is not None:
        bdd = getattr(checker, "bdd", None)
        if bdd is None:
            bdd = checker.symbolic_model.bdd
        outcome.kernel_stats = bdd.stats()
        record_kernel_stats(outcome.kernel_stats)


# ======================================================================
# Check internals (shared by both check stages)
# ======================================================================
def determinism_violations(model: StateModel) -> list[Violation]:
    pairs = model.nondeterministic_pairs()
    violations = []
    seen: set[tuple[str, str]] = set()
    for first, second in pairs:
        key = (first.event.label(), f"{first.target}|{second.target}")
        if key in seen:
            continue
        seen.add(key)
        violations.append(
            Violation(
                property_id="DET",
                apps=tuple(sorted({first.app, second.app})),
                description=(
                    f"nondeterministic model: event {first.event.label()} from "
                    f"{model.state_label(first.source)} reaches both "
                    f"{model.state_label(first.target)} and "
                    f"{model.state_label(second.target)}"
                ),
                via_reflection=first.via_reflection or second.via_reflection,
            )
        )
    return violations


def check_app_specific(
    outcome: CheckOutcome,
    irs: list[AppIR],
    model: StateModel,
    checker,
    labels,
    catalog: PropertyCatalog,
) -> None:
    """Check the applicable catalog properties through any CTL backend.

    ``checker`` is anything with an explicit-compatible
    ``check(formula) -> CheckResult`` (the explicit checker or the
    symbolic model checker); ``labels`` maps witness states to their
    atomic propositions for violation diagnosis — the Kripke labelling
    for the explicit backend, the checker's decoded-state labels for the
    symbolic one.
    """
    device_map: dict[str, str] = {}
    for ir in irs:
        for perm in ir.devices():
            device_map.setdefault(perm.handle, perm.capability)
    roles = merge_roles([device_roles(ir) for ir in irs])
    capabilities = set(device_map.values())
    if model.attribute_index("location", "mode") is not None:
        capabilities.add("location-mode")

    app_names = tuple(model.apps)
    for spec in catalog.applicable(capabilities, roles):
        outcome.checked_properties.append(spec.id)
        results: list[CheckResult] = []
        seen_bindings: set[tuple[str, ...]] = set()
        for formula, binding in spec.formulas(model, device_map, roles):
            result = checker.check(formula)
            results.append(result)
            if result.holds:
                continue
            devices = tuple(sorted(binding.values()))
            if devices in seen_bindings:
                continue
            seen_bindings.add(devices)
            reflective = _counterexample_reflective(result, labels)
            trace = tuple(
                model.state_label(state.state) for state in result.counterexample
            )
            culprit_apps = _culprit_apps(result, labels) or app_names
            outcome.violations.append(
                Violation(
                    property_id=spec.id,
                    apps=culprit_apps,
                    description=f"{spec.description} (devices: {', '.join(devices)})",
                    formula=str(formula),
                    devices=devices,
                    via_reflection=reflective,
                    counterexample=trace,
                )
            )
        outcome.check_results[spec.id] = results


def _counterexample_reflective(result: CheckResult, labels) -> bool:
    """Did the violating step come only from reflective call targets?"""
    states = result.counterexample or result.failing_states[:1]
    if not states:
        return False
    final = states[-1]
    return "via-reflection" in labels.get(final, frozenset())


def _culprit_apps(result: CheckResult, labels) -> tuple[str, ...]:
    apps: set[str] = set()
    for state in result.counterexample:
        for prop in labels.get(state, frozenset()):
            if prop.startswith("app:"):
                apps.add(prop[4:])
    return tuple(sorted(apps))
