"""Pipeline runner: stage orchestration over the artifact store.

:class:`Pipeline` is the one component that knows the *shape* of the
Fig. 3 pipeline — which stage feeds which, how each artifact is keyed,
and where the auto backend falls back — while the stages themselves
(:mod:`repro.pipeline.stages`) stay pure functions and the store
(:mod:`repro.pipeline.store`) stays a dumb key-value layer.

Key chains (every key also digests :data:`~repro.pipeline.store.PIPELINE_VERSION`)::

    parse   <- sha256(name, source)
    ir      <- parse key, capability-db token
    model   <- ir key, {abstract_numeric, form: materialized|skeleton}
    kripke  <- model key
    union   <- ordered member model keys, {form, shared-device map}
    check   <- model/union key, {kind, catalog token, backend, encoding, kernel}

Because input keys chain, invalidation is free: editing a source changes
the parse key and therefore every downstream key, while re-checking with
a different catalog changes only the check key — the expensive model
artifacts replay from the store.  Analyses with a *custom* capability
database or property catalog get process-local tokens and stay in the
memory layer: their keys mean nothing to another process, so persisting
them could serve wrong results across runs.
"""

from __future__ import annotations

import threading
import time

from repro.ir import AppIR
from repro.model import StateModel, estimate_union_states
from repro.model.extractor import StateExplosionError
from repro.model.kripke import KripkeStructure
from repro.pipeline import stages
from repro.pipeline.results import AppAnalysis, EnvironmentAnalysis
from repro.pipeline.stages import (
    CheckOutcome,
    catalog_token,
    db_token,
    resolve_backend,
    source_digest,
    validate_knobs,
)
from repro.pipeline.store import ArtifactStore, artifact_key, resolve_cache_dir
from repro.platform.capabilities import CapabilityDatabase, default_database
from repro.platform.smartapp import SmartApp
from repro.properties.catalog import PropertyCatalog, default_catalog


class Pipeline:
    """Runs the staged pipeline, reusing every artifact the store holds.

    One pipeline per store; ``db``/``catalog`` given here are defaults
    for every run (individual calls may override them).
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        db: CapabilityDatabase | None = None,
        catalog: PropertyCatalog | None = None,
    ):
        self.store = store if store is not None else ArtifactStore()
        self._db = db
        self._catalog = catalog

    # ------------------------------------------------------------------
    # Key helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_key(digest: str) -> str:
        return artifact_key("parse", [digest])

    @staticmethod
    def _ir_key(parse_key: str, db_tok: str) -> str:
        return artifact_key("ir", [parse_key], {"db": db_tok})

    @staticmethod
    def _model_key(ir_key: str, abstract_numeric: bool, form: str) -> str:
        return artifact_key(
            "model", [ir_key], {"abstract_numeric": abstract_numeric, "form": form}
        )

    def _model_key_for(self, analysis: AppAnalysis) -> str:
        """The model key a finished analysis corresponds to.

        Recomputed from the analysis' own app/knobs — including the
        capability-db token the analysis actually ran under, so a member
        precomputed with a custom database never aliases the default
        database's keys (and vice versa).
        """
        app = analysis.app
        parse_key = self._parse_key(source_digest(app.name, app.source))
        ir_key = self._ir_key(parse_key, analysis.db_token)
        form = "materialized" if analysis.backend == "explicit" else "skeleton"
        return self._model_key(ir_key, analysis.abstract_numeric, form)

    # ------------------------------------------------------------------
    # Single-app pipeline
    # ------------------------------------------------------------------
    def app_analysis(
        self,
        source: str | SmartApp,
        name: str | None = None,
        db: CapabilityDatabase | None = None,
        catalog: PropertyCatalog | None = None,
        abstract_numeric: bool = True,
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
    ) -> AppAnalysis:
        """parse -> ir -> model -> kripke -> check for one app."""
        validate_knobs(backend, encoding, kernel)
        db = db or self._db or default_database()
        catalog = catalog or self._catalog or default_catalog()
        db_tok = db_token(db)
        cat_tok = catalog_token(catalog)
        volatile_db = db_tok != "default"
        store = self.store
        timings: dict[str, float] = {}

        # parse ---------------------------------------------------------
        start = time.perf_counter()
        if isinstance(source, SmartApp):
            app = source
            parse_key = self._parse_key(source_digest(app.name, app.source))
            if not store.contains("parse", parse_key):
                store.put("parse", parse_key, app)
        else:
            parse_key = self._parse_key(source_digest(name, source))
            app = store.get("parse", parse_key, SmartApp)
            if app is None:
                app = stages.run_parse(source, name)
                store.put("parse", parse_key, app)
        timings["parse"] = time.perf_counter() - start

        # ir ------------------------------------------------------------
        start = time.perf_counter()
        ir_key = self._ir_key(parse_key, db_tok)
        ir = store.get("ir", ir_key, AppIR, memory_only=volatile_db)
        if ir is None:
            ir = stages.run_ir(app, db)
            store.put("ir", ir_key, ir, memory_only=volatile_db)
        timings["ir"] = time.perf_counter() - start

        # model ---------------------------------------------------------
        start = time.perf_counter()
        chosen = "explicit" if backend == "auto" else backend
        model: StateModel | None = None
        if chosen == "explicit":
            model_key = self._model_key(ir_key, abstract_numeric, "materialized")
            model = store.get("model", model_key, StateModel, memory_only=volatile_db)
            if model is None:
                try:
                    model = stages.run_model(
                        ir, db, abstract_numeric=abstract_numeric, materialize=True
                    )
                    store.put("model", model_key, model, memory_only=volatile_db)
                except StateExplosionError:
                    if backend == "explicit":
                        raise
                    chosen = "symbolic"  # auto: too wide to enumerate
        if model is None:
            model_key = self._model_key(ir_key, abstract_numeric, "skeleton")
            model = store.get("model", model_key, StateModel, memory_only=volatile_db)
            if model is None:
                model = stages.run_model(
                    ir, db, abstract_numeric=abstract_numeric, materialize=False
                )
                store.put("model", model_key, model, memory_only=volatile_db)
        timings["model"] = time.perf_counter() - start

        # kripke --------------------------------------------------------
        kripke: KripkeStructure | None = None
        if chosen == "explicit":
            start = time.perf_counter()
            kripke_key = artifact_key("kripke", [model_key])
            kripke = store.get(
                "kripke", kripke_key, KripkeStructure, memory_only=volatile_db
            )
            if kripke is None:
                kripke = stages.run_kripke(model)
                store.put("kripke", kripke_key, kripke, memory_only=volatile_db)
            timings["kripke"] = time.perf_counter() - start

        # check ---------------------------------------------------------
        start = time.perf_counter()
        volatile = volatile_db or cat_tok != "default"
        check_key = artifact_key(
            "check",
            [model_key],
            {
                "kind": "app",
                "catalog": cat_tok,
                "backend": chosen,
                # Every non-explicit backend can consult the BDD knobs
                # (the portfolio backends via their symbolic fallback).
                "encoding": encoding if chosen != "explicit" else "-",
                "kernel": kernel if chosen != "explicit" else "-",
            },
        )
        outcome = store.get("check", check_key, CheckOutcome, memory_only=volatile)
        if outcome is None:
            outcome = stages.run_app_check(
                app.name, ir, model, kripke, db, catalog, chosen, encoding,
                kernel,
            )
            store.put("check", check_key, outcome, memory_only=volatile)
        timings["general"] = 0.0
        timings["properties"] = time.perf_counter() - start

        return AppAnalysis(
            app=app,
            ir=ir,
            model=model,
            kripke=kripke,
            violations=list(outcome.violations),
            checked_properties=list(outcome.checked_properties),
            check_results={k: list(v) for k, v in outcome.check_results.items()},
            timings=timings,
            backend=chosen,
            state_estimate=estimate_union_states([model]),
            skipped_properties=list(outcome.skipped_properties),
            encoding=outcome.encoding,
            kernel=outcome.kernel,
            kernel_stats=outcome.kernel_stats,
            portfolio=outcome.portfolio,
            abstract_numeric=abstract_numeric,
            db_token=db_tok,
        )

    # ------------------------------------------------------------------
    # Environment (union) pipeline
    # ------------------------------------------------------------------
    def environment_analysis(
        self,
        sources: list[str | SmartApp | AppAnalysis],
        db: CapabilityDatabase | None = None,
        catalog: PropertyCatalog | None = None,
        shared_devices: dict[tuple[str, str], str] | None = None,
        max_union_states: int | None = None,
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
    ) -> EnvironmentAnalysis:
        """Per-app stages (or precomputed analyses) -> union -> check."""
        validate_knobs(backend, encoding, kernel)
        db = db or self._db or default_database()
        catalog = catalog or self._catalog or default_catalog()
        db_tok = db_token(db)
        cat_tok = catalog_token(catalog)
        volatile_db = db_tok != "default"
        store = self.store

        # Per-app pipeline for raw members, threading every knob: a
        # forced-backend environment run must analyze its members with
        # the same backend/encoding, not silently with the defaults.
        analyses = [
            source
            if isinstance(source, AppAnalysis)
            else self.app_analysis(
                source, db=db, catalog=catalog, backend=backend,
                encoding=encoding, kernel=kernel,
            )
            for source in sources
        ]

        models = [a.model for a in analyses]
        estimate = estimate_union_states(models, shared_devices)
        chosen = resolve_backend(backend, estimate, max_union_states)
        member_keys = [self._model_key_for(a) for a in analyses]
        # A precomputed member analyzed under a custom database carries a
        # process-local token in its model key; every union-derived key
        # is then meaningless to other processes and must stay in memory.
        volatile_members = volatile_db or any(
            a.db_token != "default" for a in analyses
        )
        shared_tok = (
            "-"
            if not shared_devices
            else repr(sorted(shared_devices.items()))
        )
        timings: dict[str, float] = {}

        # union ---------------------------------------------------------
        form = "materialized" if chosen == "explicit" else "skeleton"
        union_key = artifact_key(
            "union", member_keys, {"form": form, "shared": shared_tok}
        )
        start = time.perf_counter()
        if chosen == "explicit" and max_union_states is not None and estimate > max_union_states:
            # Over an explicit caller budget the cold path raises before
            # enumerating anything; a cached union (built under a larger
            # budget) must not mask that contract on warm runs.
            raise StateExplosionError(
                f"union of {[m.name for m in models]}: "
                f"{estimate} states exceed budget"
            )
        union = store.get("union", union_key, StateModel, memory_only=volatile_members)
        if union is None:
            union = stages.run_union(
                models, db, shared_devices,
                materialize=chosen == "explicit", max_states=max_union_states,
            )
            store.put("union", union_key, union, memory_only=volatile_members)
        timings["union"] = time.perf_counter() - start

        # kripke --------------------------------------------------------
        kripke: KripkeStructure | None = None
        if chosen == "explicit":
            start = time.perf_counter()
            kripke_key = artifact_key("kripke", [union_key])
            kripke = store.get(
                "kripke", kripke_key, KripkeStructure, memory_only=volatile_members
            )
            if kripke is None:
                kripke = stages.run_kripke(union)
                store.put("kripke", kripke_key, kripke, memory_only=volatile_members)
            timings["kripke"] = time.perf_counter() - start

        # check ---------------------------------------------------------
        start = time.perf_counter()
        volatile = volatile_members or cat_tok != "default"
        check_key = artifact_key(
            "check",
            [union_key],
            {
                "kind": "env",
                "catalog": cat_tok,
                "backend": chosen,
                "encoding": encoding if chosen != "explicit" else "-",
                "kernel": kernel if chosen != "explicit" else "-",
            },
        )
        outcome = store.get("check", check_key, CheckOutcome, memory_only=volatile)
        if outcome is None:
            irs = [a.ir for a in analyses]
            outcome = stages.run_env_check(
                union, irs, kripke, catalog, chosen, encoding, kernel
            )
            store.put("check", check_key, outcome, memory_only=volatile)
        timings["general"] = 0.0
        timings["properties"] = time.perf_counter() - start

        return EnvironmentAnalysis(
            analyses=analyses,
            union_model=union,
            kripke=kripke,
            violations=list(outcome.violations),
            checked_properties=list(outcome.checked_properties),
            timings=timings,
            backend=chosen,
            state_estimate=estimate,
            check_results={k: list(v) for k, v in outcome.check_results.items()},
            encoding=outcome.encoding,
            kernel=outcome.kernel,
            kernel_stats=outcome.kernel_stats,
            portfolio=outcome.portfolio,
        )


# ======================================================================
# Shared pipelines
# ======================================================================
_pipelines: dict[str | None, Pipeline] = {}
_pipelines_lock = threading.Lock()


def pipeline_for(cache_dir) -> Pipeline:
    """The process-shared pipeline over one cache root (None = memory only).

    One pipeline (one store, one memory layer, one set of counters) per
    root, shared by every driver in the process — the batch driver, the
    sweep engine, the service workers, and direct ``analyze_app`` calls
    all reuse each other's artifacts.  Callers resolve
    ``$REPRO_CACHE_DIR`` themselves where it applies (the corpus
    drivers); the plain API facades stay memory-only regardless of the
    environment, like the pre-pipeline orchestrator.
    """
    root = resolve_cache_dir(cache_dir) if cache_dir is not None else None
    slot = None if root is None else str(root)
    with _pipelines_lock:
        pipeline = _pipelines.get(slot)
        if pipeline is None:
            pipeline = Pipeline(ArtifactStore(root))
            _pipelines[slot] = pipeline
        return pipeline


def default_pipeline() -> Pipeline:
    """The memory-only pipeline behind :func:`repro.analyze_app`."""
    return pipeline_for(None)
