"""Durable job records with idempotent, digest-keyed submission.

A *job* is one screening request: a single SmartApp source or an
environment of sources.  Its identity is the
:func:`submission_key` — a SHA-256 over the ordered member (name,
source-digest) pairs, the requested backend/encoding/kernel knobs, and
:data:`~repro.pipeline.store.PIPELINE_VERSION` — so resubmitting
identical sources returns the *same* job record instead of scheduling
duplicate work, exactly like the artifact store returning a cached
stage result.

:class:`JobStore` keeps records in memory (thread-safe) and, when given
a ``state_dir``, mirrors every update to ``<state_dir>/jobs/<id>.json``
and reloads them on startup — a service restart keeps finished verdicts
and dedupes against jobs submitted before the restart.

Submissions are namespaced by *tenant* (the ``X-Soteria-Tenant``
header): the tenant is part of the :func:`submission_key`, so two
tenants submitting identical sources own separate job records, and the
per-tenant breakdown in :meth:`JobStore.counts` feeds the service's
quota enforcement and ``/v1/stats`` view.

A ``ttl`` (seconds) bounds the store's growth: settled records older
than the TTL are garbage-collected by :meth:`JobStore.sweep` — the
service calls it lazily on submission and stats traffic — and expired
mirror files are pruned (and deleted) at startup instead of being
reloaded.  In-flight records never expire; a resubmission after GC
creates a fresh job and re-runs cleanly.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.pipeline.store import PIPELINE_VERSION
from repro.properties.catalog import Violation

#: Job lifecycle states, in order.
STATUSES = ("queued", "running", "done", "failed")

#: Statuses of settled jobs — the only ones TTL/GC may reap.
SETTLED = ("done", "failed")

#: The tenant submissions belong to when no ``X-Soteria-Tenant``
#: header names one.
DEFAULT_TENANT = "default"


def submission_key(
    entries: list[tuple[str, str]],
    backend: str = "auto",
    encoding: str = "auto",
    kernel: str = "auto",
    version: str = PIPELINE_VERSION,
    tenant: str = DEFAULT_TENANT,
) -> str:
    """Identity of one submission: the owning tenant, ordered
    (name, source digest) pairs, the analysis knobs, and the pipeline
    version.  Order is meaning-bearing for environments (it is for the
    union model's app list), a knob change is a different job — forcing
    a backend (or a BDD kernel) must never be served the auto path's
    record — and the tenant namespaces the job space, so one tenant
    never reads (or retries) another tenant's record."""
    parts = [
        f"version={version}",
        f"tenant={tenant}",
        f"backend={backend}",
        f"encoding={encoding}",
        f"kernel={kernel}",
    ]
    parts.extend(f"member={name}\0{digest}" for name, digest in entries)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def violation_dict(violation: Violation) -> dict:
    """One violation as JSON-ready data, witness trace decoded."""
    return {
        "property_id": violation.property_id,
        "apps": list(violation.apps),
        "description": violation.description,
        "formula": violation.formula,
        "devices": list(violation.devices),
        "via_reflection": violation.via_reflection,
        "counterexample": list(violation.counterexample or ()),
    }


@dataclass
class JobRecord:
    """One submission's durable state (all fields JSON-serializable)."""

    id: str
    key: str
    kind: str                      # "app" | "environment"
    apps: list[str]                # member names, submission order
    digests: list[str]             # member source digests, same order
    tenant: str = DEFAULT_TENANT   # owning namespace (quota + stats unit)
    backend: str = "auto"
    encoding: str = "auto"
    kernel: str = "auto"
    status: str = "queued"
    verdict: str | None = None     # policy.APPROVED | policy.NEEDS_REVIEW
    flagged: bool = False
    reason: str | None = None
    violations: list[dict] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)
    skipped_properties: list[str] = field(default_factory=list)
    resolved_backend: str | None = None
    resolved_encoding: str | None = None
    resolved_kernel: str | None = None
    #: The BDD kernel's final stats() snapshot (symbolic jobs only).
    kernel_stats: dict | None = None
    state_estimate: int = 0
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    def summary(self) -> dict:
        """The job-listing view: everything but the violation payloads."""
        data = asdict(self)
        data["violations"] = len(self.violations)
        return data


def job_id_for(key: str) -> str:
    """Deterministic short job id from the submission key."""
    return f"job-{key[:16]}"


class JobStore:
    """Thread-safe job registry, optionally mirrored to JSON on disk.

    ``ttl`` (seconds, ``None`` = keep forever) bounds growth: settled
    records whose last update is older than the TTL are reaped by
    :meth:`sweep` (memory *and* disk mirror), and expired mirror files
    are deleted — not reloaded — at startup.
    """

    def __init__(
        self,
        state_dir: str | os.PathLike | None = None,
        ttl: float | None = None,
    ):
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive seconds, got {ttl!r}")
        self._lock = threading.RLock()
        self._by_id: dict[str, JobRecord] = {}
        self._by_key: dict[str, str] = {}
        self._order: list[str] = []
        self.ttl = ttl
        #: Total records reaped by TTL/GC (startup prune + lazy sweeps).
        self.expired_total = 0
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            self._load()

    # ------------------------------------------------------------------
    def submit(self, record: JobRecord) -> tuple[JobRecord, bool]:
        """Register a job; identical submissions return the existing one.

        Returns ``(record, created)`` — ``created`` is False when the
        submission key matched an existing job (any status: a queued or
        running duplicate attaches to the in-flight job, a finished one
        returns the stored verdict without re-running anything, and a
        failed one is re-scheduled by the service layer —
        :meth:`repro.service.app.SoteriaService.submit`).
        """
        with self._lock:
            existing_id = self._by_key.get(record.key)
            if existing_id is not None:
                return self._by_id[existing_id], False
            self._by_id[record.id] = record
            self._by_key[record.key] = record.id
            self._order.append(record.id)
            self._persist(record)
            return record, True

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._by_id.get(job_id)

    def find(self, key: str) -> JobRecord | None:
        """The record owning one submission key, or None."""
        with self._lock:
            job_id = self._by_key.get(key)
            return None if job_id is None else self._by_id.get(job_id)

    def update(self, job_id: str, **fields) -> JobRecord:
        """Apply field updates to one job and persist the new state."""
        with self._lock:
            record = self._by_id[job_id]
            for name, value in fields.items():
                if not hasattr(record, name):
                    raise AttributeError(f"JobRecord has no field {name!r}")
                setattr(record, name, value)
            record.updated_at = time.time()
            self._persist(record)
            return record

    def list(self, page: int = 1, per_page: int = 50) -> dict:
        """Newest-first job summaries, paginated."""
        with self._lock:
            ordered = [self._by_id[jid] for jid in reversed(self._order)]
        total = len(ordered)
        start = (page - 1) * per_page
        window = ordered[start : start + per_page]
        return {
            "jobs": [record.summary() for record in window],
            "page": page,
            "per_page": per_page,
            "total": total,
        }

    def counts(self) -> dict:
        """Job totals by status, plus a per-tenant breakdown under
        ``"tenants"`` (the ``/v1/stats`` quota view)."""
        with self._lock:
            records = list(self._by_id.values())
        by_status: dict = {status: 0 for status in STATUSES}
        tenants: dict[str, dict[str, int]] = {}
        for record in records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
            per = tenants.setdefault(
                record.tenant, {status: 0 for status in STATUSES} | {"total": 0}
            )
            per[record.status] = per.get(record.status, 0) + 1
            per["total"] += 1
        by_status["total"] = len(records)
        by_status["expired"] = self.expired_total
        by_status["tenants"] = {name: tenants[name] for name in sorted(tenants)}
        return by_status

    # ------------------------------------------------------------------
    # TTL / garbage collection
    # ------------------------------------------------------------------
    def remove(self, job_id: str) -> bool:
        """Forget one record — memory and disk mirror; True if it existed."""
        with self._lock:
            record = self._by_id.pop(job_id, None)
            if record is None:
                return False
            if self._by_key.get(record.key) == job_id:
                del self._by_key[record.key]
            try:
                self._order.remove(job_id)
            except ValueError:
                pass
            directory = self._jobs_dir
            if directory is not None:
                try:
                    (directory / f"{job_id}.json").unlink(missing_ok=True)
                except OSError:
                    pass  # the mirror is best-effort, like _persist
            return True

    def sweep(self, now: float | None = None) -> list[str]:
        """Reap settled records older than the TTL; the reaped job ids.

        In-flight records (``queued``/``running``) are never reaped — a
        live worker owns them.  A no-op without a TTL, so callers can
        invoke it unconditionally on hot paths (lazy GC).
        """
        if self.ttl is None:
            return []
        if now is None:
            now = time.time()
        cutoff = now - self.ttl
        with self._lock:
            expired = [
                record.id
                for record in self._by_id.values()
                if record.status in SETTLED and record.updated_at < cutoff
            ]
            for job_id in expired:
                self.remove(job_id)
            self.expired_total += len(expired)
        return expired

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def _jobs_dir(self) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "jobs"

    def _persist(self, record: JobRecord) -> None:
        """Mirror one record to disk, atomically and best-effort."""
        directory = self._jobs_dir
        if directory is None:
            return
        try:
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{record.id}.json"
            tmp = directory / f".{record.id}.tmp"
            tmp.write_text(json.dumps(asdict(record), indent=2))
            os.replace(tmp, path)
        except Exception:
            pass  # an unwritable state volume degrades to in-memory only

    def _load(self) -> None:
        directory = self._jobs_dir
        if directory is None or not directory.is_dir():
            return
        records = []
        cutoff = None if self.ttl is None else time.time() - self.ttl
        for path in sorted(directory.glob("*.json")):
            try:
                data = json.loads(path.read_text())
                record = JobRecord(**data)
            except Exception:
                continue  # torn/stale file: skip, do not crash startup
            if cutoff is not None and record.updated_at < cutoff:
                # Startup prune: an expired mirror file is deleted, not
                # reloaded — the durable store shrinks on disk.  (Stale
                # queued/running records from the dead process expire
                # too; no worker owns them anymore.)
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                self.expired_total += 1
                continue
            if record.status in ("queued", "running"):
                # The process died before/while analyzing; no worker owns
                # the record anymore, so surface it as failed —
                # :meth:`repro.service.app.SoteriaService.submit`
                # re-schedules failed jobs on identical resubmission.
                record.error = (
                    "service restarted during analysis"
                    if record.status == "running"
                    else "service restarted before analysis started"
                )
                record.status = "failed"
            records.append(record)
        records.sort(key=lambda record: record.created_at)
        for record in records:
            self._by_id[record.id] = record
            self._by_key.setdefault(record.key, record.id)
            self._order.append(record.id)
