"""Durable job records with idempotent, digest-keyed submission.

A *job* is one screening request: a single SmartApp source or an
environment of sources.  Its identity is the
:func:`submission_key` — a SHA-256 over the ordered member (name,
source-digest) pairs, the requested backend/encoding/kernel knobs, and
:data:`~repro.pipeline.store.PIPELINE_VERSION` — so resubmitting
identical sources returns the *same* job record instead of scheduling
duplicate work, exactly like the artifact store returning a cached
stage result.

:class:`JobStore` keeps records in memory (thread-safe) and, when given
a ``state_dir``, mirrors every update to ``<state_dir>/jobs/<id>.json``
and reloads them on startup — a service restart keeps finished verdicts
and dedupes against jobs submitted before the restart.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.pipeline.store import PIPELINE_VERSION
from repro.properties.catalog import Violation

#: Job lifecycle states, in order.
STATUSES = ("queued", "running", "done", "failed")


def submission_key(
    entries: list[tuple[str, str]],
    backend: str = "auto",
    encoding: str = "auto",
    kernel: str = "auto",
    version: str = PIPELINE_VERSION,
) -> str:
    """Identity of one submission: ordered (name, source digest) pairs
    plus the analysis knobs and pipeline version.  Order is
    meaning-bearing for environments (it is for the union model's app
    list), and a knob change is a different job — forcing a backend (or
    a BDD kernel) must never be served the auto path's record."""
    parts = [
        f"version={version}",
        f"backend={backend}",
        f"encoding={encoding}",
        f"kernel={kernel}",
    ]
    parts.extend(f"member={name}\0{digest}" for name, digest in entries)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def violation_dict(violation: Violation) -> dict:
    """One violation as JSON-ready data, witness trace decoded."""
    return {
        "property_id": violation.property_id,
        "apps": list(violation.apps),
        "description": violation.description,
        "formula": violation.formula,
        "devices": list(violation.devices),
        "via_reflection": violation.via_reflection,
        "counterexample": list(violation.counterexample or ()),
    }


@dataclass
class JobRecord:
    """One submission's durable state (all fields JSON-serializable)."""

    id: str
    key: str
    kind: str                      # "app" | "environment"
    apps: list[str]                # member names, submission order
    digests: list[str]             # member source digests, same order
    backend: str = "auto"
    encoding: str = "auto"
    kernel: str = "auto"
    status: str = "queued"
    verdict: str | None = None     # policy.APPROVED | policy.NEEDS_REVIEW
    flagged: bool = False
    reason: str | None = None
    violations: list[dict] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)
    skipped_properties: list[str] = field(default_factory=list)
    resolved_backend: str | None = None
    resolved_encoding: str | None = None
    resolved_kernel: str | None = None
    #: The BDD kernel's final stats() snapshot (symbolic jobs only).
    kernel_stats: dict | None = None
    state_estimate: int = 0
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    def summary(self) -> dict:
        """The job-listing view: everything but the violation payloads."""
        data = asdict(self)
        data["violations"] = len(self.violations)
        return data


def job_id_for(key: str) -> str:
    """Deterministic short job id from the submission key."""
    return f"job-{key[:16]}"


class JobStore:
    """Thread-safe job registry, optionally mirrored to JSON on disk."""

    def __init__(self, state_dir: str | os.PathLike | None = None):
        self._lock = threading.RLock()
        self._by_id: dict[str, JobRecord] = {}
        self._by_key: dict[str, str] = {}
        self._order: list[str] = []
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            self._load()

    # ------------------------------------------------------------------
    def submit(self, record: JobRecord) -> tuple[JobRecord, bool]:
        """Register a job; identical submissions return the existing one.

        Returns ``(record, created)`` — ``created`` is False when the
        submission key matched an existing job (any status: a queued or
        running duplicate attaches to the in-flight job, a finished one
        returns the stored verdict without re-running anything, and a
        failed one is re-scheduled by the service layer —
        :meth:`repro.service.app.SoteriaService.submit`).
        """
        with self._lock:
            existing_id = self._by_key.get(record.key)
            if existing_id is not None:
                return self._by_id[existing_id], False
            self._by_id[record.id] = record
            self._by_key[record.key] = record.id
            self._order.append(record.id)
            self._persist(record)
            return record, True

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._by_id.get(job_id)

    def update(self, job_id: str, **fields) -> JobRecord:
        """Apply field updates to one job and persist the new state."""
        with self._lock:
            record = self._by_id[job_id]
            for name, value in fields.items():
                if not hasattr(record, name):
                    raise AttributeError(f"JobRecord has no field {name!r}")
                setattr(record, name, value)
            record.updated_at = time.time()
            self._persist(record)
            return record

    def list(self, page: int = 1, per_page: int = 50) -> dict:
        """Newest-first job summaries, paginated."""
        with self._lock:
            ordered = [self._by_id[jid] for jid in reversed(self._order)]
        total = len(ordered)
        start = (page - 1) * per_page
        window = ordered[start : start + per_page]
        return {
            "jobs": [record.summary() for record in window],
            "page": page,
            "per_page": per_page,
            "total": total,
        }

    def counts(self) -> dict[str, int]:
        with self._lock:
            records = list(self._by_id.values())
        by_status = {status: 0 for status in STATUSES}
        for record in records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        by_status["total"] = len(records)
        return by_status

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def _jobs_dir(self) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "jobs"

    def _persist(self, record: JobRecord) -> None:
        """Mirror one record to disk, atomically and best-effort."""
        directory = self._jobs_dir
        if directory is None:
            return
        try:
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{record.id}.json"
            tmp = directory / f".{record.id}.tmp"
            tmp.write_text(json.dumps(asdict(record), indent=2))
            os.replace(tmp, path)
        except Exception:
            pass  # an unwritable state volume degrades to in-memory only

    def _load(self) -> None:
        directory = self._jobs_dir
        if directory is None or not directory.is_dir():
            return
        records = []
        for path in sorted(directory.glob("*.json")):
            try:
                data = json.loads(path.read_text())
                record = JobRecord(**data)
            except Exception:
                continue  # torn/stale file: skip, do not crash startup
            if record.status in ("queued", "running"):
                # The process died before/while analyzing; no worker owns
                # the record anymore, so surface it as failed —
                # :meth:`repro.service.app.SoteriaService.submit`
                # re-schedules failed jobs on identical resubmission.
                record.error = (
                    "service restarted during analysis"
                    if record.status == "running"
                    else "service restarted before analysis started"
                )
                record.status = "failed"
            records.append(record)
        records.sort(key=lambda record: record.created_at)
        for record in records:
            self._by_id[record.id] = record
            self._by_key.setdefault(record.key, record.id)
            self._order.append(record.id)
