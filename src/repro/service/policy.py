"""Auto-flagging policy: analysis verdicts to review-queue decisions.

Modeled on an app-store scanner pipeline (addons-server's ``scanners``
flow): every submission is auto-scanned, and the scan result routes it —
clean submissions are auto-``approved``, anything with a property
violation is flagged ``needs-review`` for a human, never auto-rejected
(the paper is explicit that some findings — e.g. via-reflection traces —
can be false positives a reviewer must adjudicate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.properties.catalog import Violation

#: Verdict for a submission with no property violations.
APPROVED = "approved"

#: Verdict for a submission with at least one violation: queued for a
#: human reviewer, not auto-rejected.
NEEDS_REVIEW = "needs-review"


@dataclass(frozen=True)
class Decision:
    """One policy decision over a finished analysis."""

    verdict: str
    flagged: bool
    reason: str


def decide(violations: list[Violation]) -> Decision:
    """Route one finished analysis: any violation flags the submission."""
    if not violations:
        return Decision(
            verdict=APPROVED,
            flagged=False,
            reason="all checked properties hold",
        )
    ids = sorted({v.property_id for v in violations})
    reflective = sum(1 for v in violations if v.via_reflection)
    reason = f"{len(violations)} violation(s): {', '.join(ids)}"
    if reflective:
        reason += f" ({reflective} via reflection — possible false positive)"
    return Decision(verdict=NEEDS_REVIEW, flagged=True, reason=reason)
