"""Analysis-as-a-service: submission/job API over the staged pipeline.

``repro.service`` turns the Soteria pipeline into a screening service:
POST SmartApp sources, get a durable job whose verdict auto-flags the
submission for an app-store review queue (violation ⇒ ``needs-review``,
clean ⇒ ``approved``).  Stdlib only — :mod:`http.server` for transport,
:mod:`concurrent.futures` for the worker pool, JSON files for job
durability; stage artifacts are shared through
:class:`repro.pipeline.store.ArtifactStore`.
"""

from repro.service.app import (
    DEFAULT_TENANT_QUOTA,
    FleetBusyError,
    HANDLER_TIMEOUT_SECONDS,
    MAX_BODY_BYTES,
    MAX_CONCURRENT_WAITERS,
    MAX_PENDING_JOBS,
    MAX_WAIT_SECONDS,
    QueueFullError,
    SoteriaService,
    SubmissionError,
    build_server,
    serve,
    validate_tenant,
)
from repro.service.jobs import (
    DEFAULT_TENANT,
    SETTLED,
    STATUSES,
    JobRecord,
    JobStore,
    job_id_for,
    submission_key,
    violation_dict,
)
from repro.service.policy import APPROVED, NEEDS_REVIEW, Decision, decide

__all__ = [
    "APPROVED",
    "DEFAULT_TENANT",
    "DEFAULT_TENANT_QUOTA",
    "Decision",
    "FleetBusyError",
    "HANDLER_TIMEOUT_SECONDS",
    "JobRecord",
    "JobStore",
    "MAX_BODY_BYTES",
    "MAX_CONCURRENT_WAITERS",
    "MAX_PENDING_JOBS",
    "MAX_WAIT_SECONDS",
    "NEEDS_REVIEW",
    "QueueFullError",
    "SETTLED",
    "STATUSES",
    "SoteriaService",
    "SubmissionError",
    "build_server",
    "decide",
    "job_id_for",
    "serve",
    "submission_key",
    "validate_tenant",
    "violation_dict",
]
