"""Analysis-as-a-service: submission/job API over the staged pipeline.

``repro.service`` turns the Soteria pipeline into a screening service:
POST SmartApp sources, get a durable job whose verdict auto-flags the
submission for an app-store review queue (violation ⇒ ``needs-review``,
clean ⇒ ``approved``).  Stdlib only — :mod:`http.server` for transport,
:mod:`concurrent.futures` for the worker pool, JSON files for job
durability; stage artifacts are shared through
:class:`repro.pipeline.store.ArtifactStore`.
"""

from repro.service.app import (
    MAX_BODY_BYTES,
    MAX_WAIT_SECONDS,
    SoteriaService,
    SubmissionError,
    build_server,
    serve,
)
from repro.service.jobs import (
    STATUSES,
    JobRecord,
    JobStore,
    job_id_for,
    submission_key,
    violation_dict,
)
from repro.service.policy import APPROVED, NEEDS_REVIEW, Decision, decide

__all__ = [
    "APPROVED",
    "Decision",
    "JobRecord",
    "JobStore",
    "MAX_BODY_BYTES",
    "MAX_WAIT_SECONDS",
    "NEEDS_REVIEW",
    "STATUSES",
    "SoteriaService",
    "SubmissionError",
    "build_server",
    "decide",
    "job_id_for",
    "serve",
    "submission_key",
    "violation_dict",
]
