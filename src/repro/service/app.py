"""Analysis-as-a-service: the submission/job HTTP API over the pipeline.

Stdlib only (:mod:`http.server` + :mod:`concurrent.futures`): the screen
loop an app store would run.  POST a SmartApp source (or an environment
of sources); a worker executes the staged pipeline through the shared
artifact store; the job record carries the auto-flagging verdict
(:mod:`repro.service.policy`) and the decoded violation witnesses.

Endpoints (all JSON)::

    GET  /v1/health                      liveness + pipeline version
    POST /v1/submissions                 submit sources -> job (idempotent)
    GET  /v1/jobs                        job summaries, newest first, paginated
    GET  /v1/jobs/<id>                   one job's full status
    GET  /v1/jobs/<id>/violations        decoded witnesses, paginated
    GET  /v1/stats                       job counts + per-stage cache counters
    POST /v1/fleet                       run a fleet screen -> telemetry
    GET  /v1/fleet                       latest fleet screening telemetry
    GET  /v1/blocklist                   latest violation blocklist feed

``POST /v1/submissions`` accepts either shape::

    {"source": "...groovy...", "name": "MyApp"}
    {"sources": [{"name": "A", "source": "..."}, ...],
     "backend": "auto", "encoding": "auto", "kernel": "auto"}

``backend`` accepts every pipeline backend, including the SAT/BDD
portfolio pair ``bmc``/``portfolio`` (see ``soteria env --help``).

and answers 201 for a new job, 200 for an identical resubmission — same
tenant + same sources + same knobs map to the same
:func:`~repro.service.jobs.submission_key`, so duplicates attach to the
existing record (finished ones return their verdict without re-running
a single pipeline stage; the stage hit/miss counters under
``/v1/stats`` prove it).  ``?wait=<seconds>`` blocks until the job
finishes (or the budget runs out) before responding — handy for
scripts and the CI smoke test.

Hardening for real traffic:

- **Event-driven waits.**  ``?wait=`` parks on a per-job
  :class:`threading.Event` signalled when the record settles — it
  holds no executor state, and a settled job answers without touching
  the runner-future registry (which is pruned at settle time, so a
  long-running service retains nothing per finished job).  Parked
  waiters are bounded by a slot pool (:data:`MAX_CONCURRENT_WAITERS`);
  past it, ``?wait=`` degrades to an immediate status snapshot instead
  of parking another handler thread.
- **Backpressure.**  Admission is bounded: once the unsettled-job
  count reaches ``max_pending``, new work is refused with HTTP 429 and
  a ``Retry-After`` hint (resubmissions of already-settled jobs are
  still served — they schedule nothing).
- **Per-tenant quotas.**  Submissions are namespaced by the
  ``X-Soteria-Tenant`` header; each tenant owns at most
  ``tenant_quota`` unsettled jobs (a greedy tenant saturates its own
  quota, not the service), and ``/v1/stats`` breaks job counts down
  per tenant.
- **Socket timeouts.**  Handler sockets carry a read/write timeout
  (:data:`HANDLER_TIMEOUT_SECONDS`), so a slow-loris client that
  under-sends its declared ``Content-Length`` is dropped (408) instead
  of parking a handler thread forever.
- **Job TTL/GC.**  A ``job_ttl`` reaps settled records — memory and
  disk mirror — lazily and at startup; resubmission after GC re-runs
  cleanly.
- **Single-flight fleet screens.**  ``POST /v1/fleet`` runs under a
  gate: a second concurrent screen is answered 409 (with
  ``Retry-After``) instead of interleaving with the running one.

Workers default to a **process pool** (``soteria serve`` and
:func:`build_server`): a worker receives only picklable job data — the
named sources, the backend/encoding/kernel knobs, and the cache root —
and returns a plain result dict that the *parent* records on the job
store, so no service state ever crosses the process boundary (with a
disk cache root the workers additionally share stage artifacts through
the store's disk layer; the ``/v1/stats`` stage counters always
describe the parent's store).  Platforms without working
multiprocessing fall back to threads, and ``pool="thread"`` forces the
in-process pool (shared pipeline, fastest for tests).
"""

from __future__ import annotations

import concurrent.futures
import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.pipeline.runner import Pipeline, pipeline_for
from repro.pipeline.stages import source_digest, validate_knobs
from repro.pipeline.store import ArtifactStore, resolve_cache_dir
from repro.mc.kernel import aggregate_kernel_stats, record_kernel_stats
from repro.service import policy
from repro.service.jobs import (
    DEFAULT_TENANT,
    JobRecord,
    JobStore,
    job_id_for,
    submission_key,
    violation_dict,
)

#: Upper bound on ``?wait=`` to keep handler threads from parking forever.
MAX_WAIT_SECONDS = 300.0

#: Handler-socket read/write timeout (seconds).  A client that stalls
#: mid-body (slow-loris: declares ``Content-Length: N``, sends N-1
#: bytes) or stops reading its response is dropped after this long
#: instead of parking a handler thread indefinitely.
HANDLER_TIMEOUT_SECONDS = 30.0

#: Waiter-slot pool size: at most this many handler threads may park in
#: an event wait at once.  Past it, ``?wait=`` answers immediately with
#: the job's current status (a degraded wait) — N polite clients must
#: never cost N parked OS threads.
MAX_CONCURRENT_WAITERS = 32

#: Admission bound: unsettled jobs (queued + running) across all
#: tenants.  At the bound, new work is answered 429 + ``Retry-After``.
MAX_PENDING_JOBS = 64

#: Per-tenant admission bound (unsettled jobs owned by one tenant).
DEFAULT_TENANT_QUOTA = 16

#: ``Retry-After`` hint for a rejected concurrent fleet screen (409).
FLEET_RETRY_AFTER_SECONDS = 30

#: Tenant names: short, path/log-safe tokens.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Upper bound on a POST body.  The service is unauthenticated, so an
#: attacker-controlled Content-Length must never buy a memory balloon;
#: real SmartApp sources are a few KB each.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Upper bound on ``POST /v1/fleet`` household counts.  The screen runs
#: synchronously in the handler thread; dedup makes the cost a function
#: of the *profile pool*, not the count, but the sampling loop itself is
#: O(count) and an unauthenticated request must stay bounded.  Bigger
#: fleets belong on the CLI (``soteria fleet --households 1000000``).
MAX_FLEET_HOUSEHOLDS = 50_000


class SubmissionError(ValueError):
    """A malformed or invalid submission body (rendered as HTTP 400)."""


class QueueFullError(RuntimeError):
    """Admission refused — the service (or the tenant's quota) is
    saturated.  Rendered as HTTP 429 with a ``Retry-After`` hint."""

    def __init__(self, scope: str, retry_after: int):
        self.scope = scope            # "service" | "tenant:<name>"
        self.retry_after = retry_after
        super().__init__(
            f"{scope} queue is full; retry in ~{retry_after}s"
        )


class FleetBusyError(RuntimeError):
    """A fleet screen is already running (single-flight gate).
    Rendered as HTTP 409 with a ``Retry-After`` hint."""

    def __init__(self):
        self.retry_after = FLEET_RETRY_AFTER_SECONDS
        super().__init__("a fleet screen is already running")


def validate_tenant(tenant: str) -> str:
    """Check a tenant name (header value); returns it unchanged."""
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise SubmissionError(
            "tenant must be 1-64 chars of [A-Za-z0-9._-] "
            "(X-Soteria-Tenant header)"
        )
    return tenant


def _parse_submission(
    body: dict,
) -> tuple[list[tuple[str | None, str]], str, str, str]:
    """Normalize a submission body to
    ([(name, source), ...], backend, encoding, kernel)."""
    if not isinstance(body, dict):
        raise SubmissionError("submission body must be a JSON object")
    backend = body.get("backend", "auto")
    encoding = body.get("encoding", "auto")
    kernel = body.get("kernel", "auto")
    try:
        validate_knobs(backend, encoding, kernel)
    except ValueError as exc:
        raise SubmissionError(str(exc)) from None
    if "sources" in body:
        raw = body["sources"]
        if not isinstance(raw, list) or not raw:
            raise SubmissionError("'sources' must be a non-empty list")
        entries = []
        for item in raw:
            if not isinstance(item, dict) or not isinstance(item.get("source"), str):
                raise SubmissionError(
                    "each sources[] item must be {'source': str, 'name'?: str}"
                )
            entries.append((item.get("name"), item["source"]))
        return entries, backend, encoding, kernel
    if isinstance(body.get("source"), str):
        return [(body.get("name"), body["source"])], backend, encoding, kernel
    raise SubmissionError("submission needs 'source' or 'sources'")


class SoteriaService:
    """The service core: pipeline + job store + worker pool.

    Transport-independent (the HTTP handler and the tests drive the same
    methods).  One pipeline instance — one artifact store, one set of
    counters — serves every worker, so concurrent submissions of
    overlapping sources share stage artifacts.
    """

    def __init__(
        self,
        cache_dir=None,
        state_dir=None,
        jobs: int = 2,
        pool: str = "thread",
        max_pending: int = MAX_PENDING_JOBS,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        max_waiters: int = MAX_CONCURRENT_WAITERS,
        job_ttl: float | None = None,
    ):
        self._cache_root = resolve_cache_dir(cache_dir)
        self.pipeline = Pipeline(ArtifactStore(self._cache_root))
        self.jobs = JobStore(state_dir, ttl=job_ttl)
        self._sources: dict[str, list[tuple[str | None, str]]] = {}
        self._futures: dict[str, concurrent.futures.Future] = {}
        # In-flight registry for the event-driven wait path: one Event
        # per unsettled job, signalled (then pruned) at record-settle
        # time.  Doubles as the admission count — len(_events) is the
        # queued+running population.
        self._events: dict[str, threading.Event] = {}
        self._tenant_inflight: dict[str, int] = {}
        self._lock = threading.Lock()
        self.max_pending = max(1, max_pending)
        self.tenant_quota = max(1, tenant_quota)
        # Waiter slots: parked ?wait= handler threads, bounded.
        self._waiter_slots = threading.BoundedSemaphore(max(1, max_waiters))
        self.max_waiters = max(1, max_waiters)
        self._wait_stats = {"waits": 0, "active": 0, "peak": 0, "degraded": 0}
        self._rejected = {"service": 0, "tenant": 0}
        self.workers = max(1, jobs)
        workers = self.workers
        self._process_pool = (
            self._make_process_pool(workers) if pool == "process" else None
        )
        #: The pool flavor actually running ("process" may fall back).
        self.pool_kind = "process" if self._process_pool is not None else "thread"
        # Job-runner threads: each runs one job to completion — inline
        # on the shared pipeline, or parked on a process-pool worker and
        # recording the fields it returns.  Either way the job's event
        # fires only after the record is updated, so waiters never
        # observe a signalled event with a stale record.
        self._executor = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        # Latest fleet screening, published by fleet_screen() for the
        # GET /v1/fleet and GET /v1/blocklist views.  One slot on
        # purpose: the feed is the *current* blocklist, not a history.
        # _fleet_gate is the single-flight lock: concurrent screens
        # never interleave — the second one is refused (409).
        self._fleet_lock = threading.Lock()
        self._fleet_gate = threading.Lock()
        self._fleet_latest: dict | None = None

    @staticmethod
    def _make_process_pool(workers: int):
        executor = None
        try:
            executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
            # Probe eagerly: broken multiprocessing (restricted
            # sandboxes, missing semaphores) should fall back now,
            # not on the first submission.
            executor.submit(int, 0).result(timeout=30)
            return executor
        except Exception:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            return None

    # ------------------------------------------------------------------
    def _admit(self, tenant: str) -> None:
        """Admission control, caller holds ``_lock``.  Raises
        :class:`QueueFullError` when the service or the tenant is at
        its unsettled-job bound."""
        pending = len(self._events)
        retry_after = min(60, max(1, math.ceil((pending + 1) / self.workers)))
        if pending >= self.max_pending:
            self._rejected["service"] += 1
            raise QueueFullError("service", retry_after)
        if self._tenant_inflight.get(tenant, 0) >= self.tenant_quota:
            self._rejected["tenant"] += 1
            raise QueueFullError(f"tenant:{tenant}", retry_after)

    def submit(
        self,
        entries: list[tuple[str | None, str]],
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
        tenant: str = DEFAULT_TENANT,
    ) -> tuple[JobRecord, bool]:
        """Register one submission; identical ones attach to their job.

        Raises :class:`QueueFullError` when scheduling NEW work would
        exceed the service's ``max_pending`` bound or the tenant's
        quota — resubmissions that attach to an existing (unsettled or
        finished) job schedule nothing and are always served.
        """
        validate_knobs(backend, encoding, kernel)
        validate_tenant(tenant)
        named = [
            (name if name else f"submission-{index + 1}", source)
            for index, (name, source) in enumerate(entries)
        ]
        digests = [source_digest(name, source) for name, source in named]
        key = submission_key(
            list(zip((name for name, _ in named), digests)),
            backend,
            encoding,
            kernel,
            tenant=tenant,
        )
        with self._lock:
            self.jobs.sweep()  # lazy TTL/GC on the submission path
            record = self.jobs.find(key)
            created = record is None
            schedule = created
            if record is not None:
                in_flight = record.id in self._events
                if record.status == "failed" and not in_flight:
                    # A failed job — crash recovery after a restart, a
                    # transient error — retries on identical
                    # resubmission instead of serving the stale failure
                    # forever.  The retry is new work, so it passes
                    # admission; stale result fields are cleared below
                    # so the record never mixes two attempts.
                    schedule = True
            if schedule:
                self._admit(tenant)
            if created:
                record = JobRecord(
                    id=job_id_for(key),
                    key=key,
                    kind="app" if len(named) == 1 else "environment",
                    apps=[name for name, _ in named],
                    digests=digests,
                    tenant=tenant,
                    backend=backend,
                    encoding=encoding,
                    kernel=kernel,
                )
                record, _ = self.jobs.submit(record)
            elif schedule:
                record = self.jobs.update(
                    record.id,
                    status="queued",
                    error=None,
                    verdict=None,
                    flagged=False,
                    reason=None,
                    violations=[],
                    checked_properties=[],
                    skipped_properties=[],
                    resolved_backend=None,
                    resolved_encoding=None,
                    resolved_kernel=None,
                    kernel_stats=None,
                    state_estimate=0,
                )
            if schedule:
                self._sources[record.id] = named
                self._events[record.id] = threading.Event()
                self._tenant_inflight[tenant] = (
                    self._tenant_inflight.get(tenant, 0) + 1
                )
                self._futures[record.id] = self._executor.submit(
                    self._run_job, record.id
                )
        return record, created

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord | None:
        """Block until a job settles (bounded by ``timeout``); job or None.

        Event-driven: a settled job answers straight from the store —
        no executor state is consulted, let alone retained — and an
        unsettled one parks on its settle event.  Parked waiters are
        bounded by the waiter-slot pool; with every slot taken the wait
        degrades to an immediate snapshot of the record (callers poll),
        so a burst of polite clients can never park a thread each.
        """
        with self._lock:
            event = self._events.get(job_id)
        if event is None:
            # Settled (or never scheduled): the record is the answer.
            return self.jobs.get(job_id)
        if not self._waiter_slots.acquire(blocking=False):
            with self._lock:
                self._wait_stats["degraded"] += 1
            return self.jobs.get(job_id)
        try:
            with self._lock:
                self._wait_stats["waits"] += 1
                self._wait_stats["active"] += 1
                self._wait_stats["peak"] = max(
                    self._wait_stats["peak"], self._wait_stats["active"]
                )
            event.wait(timeout)
        finally:
            with self._lock:
                self._wait_stats["active"] -= 1
            self._waiter_slots.release()
        return self.jobs.get(job_id)

    def stats(self) -> dict:
        self.jobs.sweep()  # lazy TTL/GC on the stats path too
        with self._lock:
            service = {
                "pool": self.pool_kind,
                "workers": self.workers,
                "pending": len(self._events),
                "max_pending": self.max_pending,
                "tenant_quota": self.tenant_quota,
                "rejected": dict(self._rejected),
                "waiters": dict(self._wait_stats) | {"slots": self.max_waiters},
                "job_ttl": self.jobs.ttl,
            }
        return {
            "jobs": self.jobs.counts(),
            "service": service,
            "pipeline": self.pipeline.store.cache_info(),
            # Process-wide BDD-kernel counters over every symbolic check
            # this service process ran (process-pool workers report their
            # kernels' snapshots back through the job fields, so the
            # aggregate covers both pool flavors).
            "kernels": aggregate_kernel_stats(),
        }

    # ------------------------------------------------------------------
    def fleet_screen(self, body: dict) -> dict:
        """Run one fleet screening synchronously; publish + return it.

        The body mirrors the ``soteria fleet`` knobs (all optional)::

            {"households": 10000, "seed": 0, "templates": 50,
             "variants": 3, "corpus_weight": 0.25, "inject_rate": 0.4,
             "jobs": 1, "backend": "auto", "encoding": "auto",
             "kernel": "auto"}

        Runs in the calling (handler) thread — the screen is bounded by
        :data:`MAX_FLEET_HOUSEHOLDS` and canonical dedup keeps the
        checked set small — and stores the telemetry + blocklist for the
        GET views.  Screens share this service's artifact store, so a
        repeat request over a disk root is served almost entirely from
        the fleet cache tier.

        Screens are **single-flight**: while one runs, a second
        concurrent ``POST /v1/fleet`` raises :class:`FleetBusyError`
        (HTTP 409 + ``Retry-After``) instead of interleaving — two
        screens must never race their writes to the published
        telemetry slot (or thrash the shared store).
        """
        from repro.fleet.driver import FleetOptions, run_fleet
        from repro.fleet.profiles import FleetProfile

        if not isinstance(body, dict):
            raise SubmissionError("fleet body must be a JSON object")
        if not self._fleet_gate.acquire(blocking=False):
            raise FleetBusyError()
        try:
            return self._fleet_screen_locked(body)
        finally:
            self._fleet_gate.release()

    def _fleet_screen_locked(self, body: dict) -> dict:
        """The screen body; caller holds the single-flight gate."""
        from repro.fleet.driver import FleetOptions, run_fleet
        from repro.fleet.profiles import FleetProfile

        def _int(name: str, default: int, low: int, high: int) -> int:
            value = body.get(name, default)
            if not isinstance(value, int) or isinstance(value, bool):
                raise SubmissionError(f"{name!r} must be an integer")
            if not low <= value <= high:
                raise SubmissionError(f"{name!r} must be in [{low}, {high}]")
            return value

        def _rate(name: str, default: float) -> float:
            value = body.get(name, default)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SubmissionError(f"{name!r} must be a number")
            if not 0.0 <= value <= 1.0:
                raise SubmissionError(f"{name!r} must be in [0.0, 1.0]")
            return float(value)

        backend = body.get("backend", "auto")
        encoding = body.get("encoding", "auto")
        kernel = body.get("kernel", "auto")
        try:
            validate_knobs(backend, encoding, kernel)
        except ValueError as exc:
            raise SubmissionError(str(exc)) from None
        households = _int("households", 10_000, 1, MAX_FLEET_HOUSEHOLDS)
        profile = FleetProfile(
            seed=_int("seed", 0, 0, 2**32),
            templates=_int("templates", 50, 1, 500),
            variants=_int("variants", 3, 1, 26),
            corpus_weight=_rate("corpus_weight", 0.25),
            inject_rate=_rate("inject_rate", 0.4),
        )
        options = FleetOptions(
            jobs=_int("jobs", 1, 1, 4),
            cache_dir=None if self._cache_root is None else str(self._cache_root),
            backend=backend,
            encoding=encoding,
            kernel=kernel,
        )
        result = run_fleet(profile, households, options)
        payload = {
            "telemetry": result.telemetry.to_json(),
            "blocklist": result.blocklist,
            "exit_code": result.exit_code,
        }
        with self._fleet_lock:
            self._fleet_latest = payload
        return payload

    def fleet_latest(self) -> dict | None:
        """The latest published screening payload, or None before any."""
        with self._fleet_lock:
            return self._fleet_latest

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
        # Wake every parked waiter (their jobs will never settle now)
        # and drop the in-flight registries, so shutdown never strands
        # a handler thread in an event wait.
        with self._lock:
            events = list(self._events.values())
            self._events.clear()
            self._futures.clear()
            self._sources.clear()
            self._tenant_inflight.clear()
        for event in events:
            event.set()

    # ------------------------------------------------------------------
    def _run_job(self, job_id: str) -> None:
        """Job-runner thread body: analyze one job, record the outcome.

        With a process pool the analysis itself runs in a child that
        receives only picklable data and returns a plain field dict;
        everything touching the job store — including a worker failure,
        a pickling error, or a broken pool — is recorded here, in the
        parent, before this job's future resolves.
        """
        with self._lock:
            named = self._sources.get(job_id)
        record = self.jobs.get(job_id)
        try:
            if record is None or named is None:
                return
            self.jobs.update(job_id, status="running")
            if self._process_pool is not None:
                fields = self._process_pool.submit(
                    _analyze_in_worker,
                    named,
                    record.kind,
                    record.backend,
                    record.encoding,
                    record.kernel,
                    None if self._cache_root is None else str(self._cache_root),
                ).result()
                # The worker's kernel ran in another process: fold its
                # stats snapshot into this process's aggregate so
                # /v1/stats covers process-pool jobs too.  (Thread-pool
                # jobs record themselves inside the check stage.)
                if fields.get("kernel_stats"):
                    record_kernel_stats(fields["kernel_stats"])
            else:
                fields = _run_analysis(
                    self.pipeline,
                    named,
                    record.kind,
                    record.backend,
                    record.encoding,
                    record.kernel,
                )
            self.jobs.update(job_id, **fields)
        except Exception as exc:
            self.jobs.update(
                job_id, status="failed", error=f"{type(exc).__name__}: {exc}"
            )
        finally:
            # Settle-time pruning: the record already carries the
            # outcome, so nothing per-job may outlive this block — not
            # the sources, not the runner future, not the event.  The
            # event is signalled AFTER the registries shrink; waiters
            # hold their own reference and re-read the settled record.
            with self._lock:
                self._sources.pop(job_id, None)
                self._futures.pop(job_id, None)
                event = self._events.pop(job_id, None)
                if record is not None:
                    tenant = record.tenant
                    remaining = self._tenant_inflight.get(tenant, 1) - 1
                    if remaining <= 0:
                        self._tenant_inflight.pop(tenant, None)
                    else:
                        self._tenant_inflight[tenant] = remaining
            if event is not None:
                event.set()


def _run_analysis(
    pipeline: Pipeline,
    named: list[tuple[str | None, str]],
    kind: str,
    backend: str,
    encoding: str,
    kernel: str = "auto",
) -> dict:
    """Run the staged pipeline for one job; returns the
    :class:`~repro.service.jobs.JobRecord` field updates as a plain
    JSON-ready dict — the process-pool wire format."""
    if kind == "app":
        name, source = named[0]
        analysis = pipeline.app_analysis(
            source, name=name, backend=backend, encoding=encoding, kernel=kernel
        )
        violations = analysis.violations
        skipped = list(analysis.skipped_properties)
    else:
        analysis = pipeline.environment_analysis(
            [source for _name, source in named],
            backend=backend,
            encoding=encoding,
            kernel=kernel,
        )
        violations = analysis.violations
        skipped = sorted(
            {pid for member in analysis.analyses for pid in member.skipped_properties}
        )
    decision = policy.decide(violations)
    return {
        "status": "done",
        "verdict": decision.verdict,
        "flagged": decision.flagged,
        "reason": decision.reason,
        "violations": [violation_dict(v) for v in violations],
        "checked_properties": list(analysis.checked_properties),
        "skipped_properties": skipped,
        "resolved_backend": analysis.backend,
        "resolved_encoding": analysis.encoding,
        "resolved_kernel": analysis.kernel,
        "kernel_stats": analysis.kernel_stats,
        "state_estimate": analysis.state_estimate,
    }


def _analyze_in_worker(
    named: list[tuple[str | None, str]],
    kind: str,
    backend: str,
    encoding: str,
    kernel: str,
    cache_root: str | None,
) -> dict:
    """Process-pool worker body: picklable data in, picklable dict out.

    Receives the named sources, the job kind, the knobs, and the cache
    root — never the service instance — and analyzes on the worker
    process's shared pipeline over that root, so a worker reuses its own
    artifacts across jobs and, with a disk root, shares them with every
    other process through the store's disk layer.

    Failures travel as plain data too: an exception that does not
    survive the pickle round trip would kill the pool's result reader
    and brick every job after it, so nothing raised here ever crosses
    the process boundary as an exception object.
    """
    try:
        return _run_analysis(
            pipeline_for(cache_root), named, kind, backend, encoding, kernel
        )
    except Exception as exc:
        return {"status": "failed", "error": f"{type(exc).__name__}: {exc}"}


# ======================================================================
# HTTP transport
# ======================================================================
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def setup(self) -> None:
        # Socket read/write timeout: a stalled body read (slow-loris) or
        # a client that stops reading its response drops the connection
        # after this long instead of parking the handler thread forever.
        # (StreamRequestHandler.setup applies self.timeout to the
        # connection; BaseHTTPRequestHandler additionally reaps idle
        # keep-alive connections with it.)
        self.timeout = getattr(
            self.server, "handler_timeout", HANDLER_TIMEOUT_SECONDS
        )
        super().setup()

    @property
    def service(self) -> SoteriaService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, *_args) -> None:  # keep the CLI output clean
        pass

    # -- helpers -------------------------------------------------------
    def _json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json_safe(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        """Best-effort error response: the socket may already be gone
        (timed out, client hung up) — never let the write raise."""
        try:
            self._json(status, payload, headers)
        except OSError:
            self.close_connection = True

    def _tenant(self) -> str:
        return validate_tenant(
            self.headers.get("X-Soteria-Tenant", DEFAULT_TENANT)
        )

    def _query(self) -> dict[str, str]:
        return {
            key: values[-1]
            for key, values in parse_qs(urlparse(self.path).query).items()
        }

    @staticmethod
    def _page_args(query: dict[str, str]) -> tuple[int, int]:
        try:
            page = max(1, int(query.get("page", "1")))
            per_page = min(500, max(1, int(query.get("per_page", "50"))))
        except ValueError:
            raise SubmissionError("page/per_page must be integers") from None
        return page, per_page

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path = urlparse(self.path).path.rstrip("/")
        try:
            query = self._query()
            if path == "/v1/health":
                self._json(200, {"status": "ok", "version": __version__})
            elif path == "/v1/stats":
                self._json(200, self.service.stats())
            elif path == "/v1/jobs":
                page, per_page = self._page_args(query)
                self._json(200, self.service.jobs.list(page, per_page))
            elif path.startswith("/v1/jobs/"):
                self._get_job(path[len("/v1/jobs/"):], query)
            elif path == "/v1/fleet":
                latest = self.service.fleet_latest()
                if latest is None:
                    self._json(404, {"error": "no fleet screening has run yet"})
                else:
                    self._json(
                        200,
                        {
                            "telemetry": latest["telemetry"],
                            "exit_code": latest["exit_code"],
                        },
                    )
            elif path == "/v1/blocklist":
                latest = self.service.fleet_latest()
                if latest is None:
                    self._json(404, {"error": "no fleet screening has run yet"})
                else:
                    self._json(200, latest["blocklist"])
            else:
                self._json(404, {"error": f"unknown path {path!r}"})
        except SubmissionError as exc:
            self._json_safe(400, {"error": str(exc)})
        except Exception as exc:  # a handler bug must not kill the server
            self._json_safe(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _get_job(self, rest: str, query: dict[str, str]) -> None:
        job_id, _, sub = rest.partition("/")
        record = self.service.jobs.get(job_id)
        if record is None:
            self._json(404, {"error": f"unknown job {job_id!r}"})
            return
        if not sub:
            self._json(200, record.summary())
        elif sub == "violations":
            page, per_page = self._page_args(query)
            start = (page - 1) * per_page
            window = record.violations[start : start + per_page]
            self._json(
                200,
                {
                    "job": record.id,
                    "verdict": record.verdict,
                    "violations": window,
                    "page": page,
                    "per_page": per_page,
                    "total": len(record.violations),
                },
            )
        else:
            self._json(404, {"error": f"unknown job view {sub!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        path = urlparse(self.path).path.rstrip("/")
        if path not in ("/v1/submissions", "/v1/fleet"):
            self._json(404, {"error": f"unknown path {path!r}"})
            return
        try:
            tenant = self._tenant()
            body = self._read_body()
            if body is None:  # refused: _read_body already answered
                return
            if path == "/v1/fleet":
                payload = self.service.fleet_screen(body)
                self._json(200, payload)
                return
            entries, backend, encoding, kernel = _parse_submission(body)
            record, created = self.service.submit(
                entries, backend, encoding, kernel, tenant=tenant
            )
            wait = self._query().get("wait")
            if wait is not None:
                try:
                    budget = min(MAX_WAIT_SECONDS, max(0.0, float(wait)))
                except ValueError:
                    raise SubmissionError("wait must be a number of seconds") from None
                record = self.service.wait(record.id, timeout=budget) or record
            payload = record.summary()
            payload["created"] = created
            self._json(201 if created else 200, payload)
        except QueueFullError as exc:
            # Backpressure: bounded admission answers 429 with a
            # Retry-After hint instead of queueing without limit.
            self._json_safe(
                429,
                {"error": str(exc), "scope": exc.scope,
                 "retry_after": exc.retry_after},
                headers={"Retry-After": str(exc.retry_after)},
            )
        except FleetBusyError as exc:
            # Single-flight: a concurrent screen never interleaves.
            self._json_safe(
                409,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": str(exc.retry_after)},
            )
        except SubmissionError as exc:
            self._json_safe(400, {"error": str(exc)})
        except Exception as exc:
            self._json_safe(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _read_body(self) -> dict | None:
        """Read and decode a bounded JSON POST body; None if refused."""
        raw_length = self.headers.get("Content-Length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            self.close_connection = True  # body unread: drop the socket
            raise SubmissionError(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length < 0:
            self.close_connection = True
            raise SubmissionError("Content-Length must be non-negative")
        if length > MAX_BODY_BYTES:
            # Refuse before reading: an attacker-sized body must not
            # be buffered just to be rejected.
            self.close_connection = True
            self._json(
                413,
                {"error": f"submission body exceeds {MAX_BODY_BYTES} bytes"},
            )
            return None
        try:
            raw = self.rfile.read(length)
        except TimeoutError:
            # Slow-loris: the client declared Content-Length but
            # stalled mid-body.  The socket timeout (setup()) fired —
            # drop the connection; a 408 is attempted best-effort, and
            # the handler thread is free either way.
            self.close_connection = True
            self._json_safe(
                408,
                {"error": "timed out reading the request body"},
            )
            return None
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise SubmissionError(f"invalid JSON body: {exc}") from None
        return body


class _Server(ThreadingHTTPServer):
    # A submission burst opens many connections at once; the stock
    # listen backlog (5) would refuse some of them at the TCP layer
    # before admission control ever saw them.
    request_queue_size = 128


def build_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir=None,
    state_dir=None,
    jobs: int = 2,
    pool: str = "process",
    max_pending: int = MAX_PENDING_JOBS,
    tenant_quota: int = DEFAULT_TENANT_QUOTA,
    max_waiters: int = MAX_CONCURRENT_WAITERS,
    job_ttl: float | None = None,
    handler_timeout: float = HANDLER_TIMEOUT_SECONDS,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server with its :class:`SoteriaService` attached.

    ``port=0`` binds an ephemeral port (see ``server.server_address``) —
    the tests' way to avoid collisions.  The worker pool defaults to
    ``"process"`` (falling back to threads where multiprocessing is
    unavailable); pass ``pool="thread"`` for the in-process pool.
    """
    server = _Server((host, port), _Handler)
    server.handler_timeout = handler_timeout  # type: ignore[attr-defined]
    server.service = SoteriaService(  # type: ignore[attr-defined]
        cache_dir=cache_dir,
        state_dir=state_dir,
        jobs=jobs,
        pool=pool,
        max_pending=max_pending,
        tenant_quota=tenant_quota,
        max_waiters=max_waiters,
        job_ttl=job_ttl,
    )
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir=None,
    state_dir=None,
    jobs: int = 2,
    pool: str = "process",
    max_pending: int = MAX_PENDING_JOBS,
    tenant_quota: int = DEFAULT_TENANT_QUOTA,
    job_ttl: float | None = None,
) -> None:
    """Run the service until interrupted (the ``soteria serve`` body)."""
    server = build_server(
        host,
        port,
        cache_dir,
        state_dir,
        jobs,
        pool,
        max_pending=max_pending,
        tenant_quota=tenant_quota,
        job_ttl=job_ttl,
    )
    bound_host, bound_port = server.server_address[:2]
    service: SoteriaService = server.service  # type: ignore[attr-defined]
    print(f"soteria service listening on http://{bound_host}:{bound_port}")
    print(f"  worker pool: {service.pool_kind} x{service.workers}, "
          f"max pending {service.max_pending}, "
          f"tenant quota {service.tenant_quota}, "
          f"job ttl {service.jobs.ttl or 'none'}")
    print("  POST /v1/submissions   GET /v1/jobs   GET /v1/stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
        server.server_close()
