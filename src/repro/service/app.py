"""Analysis-as-a-service: the submission/job HTTP API over the pipeline.

Stdlib only (:mod:`http.server` + :mod:`concurrent.futures`): the screen
loop an app store would run.  POST a SmartApp source (or an environment
of sources); a worker executes the staged pipeline through the shared
artifact store; the job record carries the auto-flagging verdict
(:mod:`repro.service.policy`) and the decoded violation witnesses.

Endpoints (all JSON)::

    GET  /v1/health                      liveness + pipeline version
    POST /v1/submissions                 submit sources -> job (idempotent)
    GET  /v1/jobs                        job summaries, newest first, paginated
    GET  /v1/jobs/<id>                   one job's full status
    GET  /v1/jobs/<id>/violations        decoded witnesses, paginated
    GET  /v1/stats                       job counts + per-stage cache counters

``POST /v1/submissions`` accepts either shape::

    {"source": "...groovy...", "name": "MyApp"}
    {"sources": [{"name": "A", "source": "..."}, ...],
     "backend": "auto", "encoding": "auto"}

and answers 201 for a new job, 200 for an identical resubmission — same
sources + same knobs map to the same :func:`~repro.service.jobs.submission_key`,
so duplicates attach to the existing record (finished ones return their
verdict without re-running a single pipeline stage; the stage hit/miss
counters under ``/v1/stats`` prove it).  ``?wait=<seconds>`` blocks
until the job finishes (or the budget runs out) before responding —
handy for scripts and the CI smoke test.

Workers default to a thread pool (``pool="process"`` upgrades to worker
processes when the platform provides working multiprocessing, falling
back to threads where it does not — the artifact store's disk layer is
the cross-process channel).
"""

from __future__ import annotations

import concurrent.futures
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.pipeline.runner import Pipeline
from repro.pipeline.stages import source_digest, validate_knobs
from repro.pipeline.store import ArtifactStore, resolve_cache_dir
from repro.service import policy
from repro.service.jobs import JobRecord, JobStore, job_id_for, submission_key, violation_dict

#: Upper bound on ``?wait=`` to keep handler threads from parking forever.
MAX_WAIT_SECONDS = 300.0


class SubmissionError(ValueError):
    """A malformed or invalid submission body (rendered as HTTP 400)."""


def _parse_submission(body: dict) -> tuple[list[tuple[str | None, str]], str, str]:
    """Normalize a submission body to ([(name, source), ...], backend, encoding)."""
    if not isinstance(body, dict):
        raise SubmissionError("submission body must be a JSON object")
    backend = body.get("backend", "auto")
    encoding = body.get("encoding", "auto")
    try:
        validate_knobs(backend, encoding)
    except ValueError as exc:
        raise SubmissionError(str(exc)) from None
    if "sources" in body:
        raw = body["sources"]
        if not isinstance(raw, list) or not raw:
            raise SubmissionError("'sources' must be a non-empty list")
        entries = []
        for item in raw:
            if not isinstance(item, dict) or not isinstance(item.get("source"), str):
                raise SubmissionError(
                    "each sources[] item must be {'source': str, 'name'?: str}"
                )
            entries.append((item.get("name"), item["source"]))
        return entries, backend, encoding
    if isinstance(body.get("source"), str):
        return [(body.get("name"), body["source"])], backend, encoding
    raise SubmissionError("submission needs 'source' or 'sources'")


class SoteriaService:
    """The service core: pipeline + job store + worker pool.

    Transport-independent (the HTTP handler and the tests drive the same
    methods).  One pipeline instance — one artifact store, one set of
    counters — serves every worker, so concurrent submissions of
    overlapping sources share stage artifacts.
    """

    def __init__(
        self,
        cache_dir=None,
        state_dir=None,
        jobs: int = 2,
        pool: str = "thread",
    ):
        self.pipeline = Pipeline(ArtifactStore(resolve_cache_dir(cache_dir)))
        self.jobs = JobStore(state_dir)
        self._sources: dict[str, list[tuple[str | None, str]]] = {}
        self._futures: dict[str, concurrent.futures.Future] = {}
        self._lock = threading.Lock()
        self._executor = self._make_executor(jobs, pool)

    @staticmethod
    def _make_executor(jobs: int, pool: str):
        workers = max(1, jobs)
        if pool == "process":
            try:
                executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
                # Probe eagerly: broken multiprocessing (restricted
                # sandboxes, missing semaphores) should fall back now,
                # not on the first submission.
                executor.submit(int, 0).result(timeout=30)
                return executor
            except Exception:
                pass
        return concurrent.futures.ThreadPoolExecutor(max_workers=workers)

    # ------------------------------------------------------------------
    def submit(
        self,
        entries: list[tuple[str | None, str]],
        backend: str = "auto",
        encoding: str = "auto",
    ) -> tuple[JobRecord, bool]:
        """Register one submission; identical ones attach to their job."""
        validate_knobs(backend, encoding)
        named = [
            (name if name else f"submission-{index + 1}", source)
            for index, (name, source) in enumerate(entries)
        ]
        digests = [source_digest(name, source) for name, source in named]
        key = submission_key(
            list(zip((name for name, _ in named), digests)), backend, encoding
        )
        record = JobRecord(
            id=job_id_for(key),
            key=key,
            kind="app" if len(named) == 1 else "environment",
            apps=[name for name, _ in named],
            digests=digests,
            backend=backend,
            encoding=encoding,
        )
        record, created = self.jobs.submit(record)
        if created:
            with self._lock:
                self._sources[record.id] = named
                self._futures[record.id] = self._executor.submit(
                    _execute_job, self, record.id
                )
        return record, created

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord | None:
        """Block until a job settles (bounded by ``timeout``); job or None."""
        with self._lock:
            future = self._futures.get(job_id)
        if future is not None:
            try:
                future.result(timeout=timeout)
            except concurrent.futures.TimeoutError:
                pass
            except Exception:
                pass  # the failure is recorded on the job itself
        return self.jobs.get(job_id)

    def stats(self) -> dict:
        return {
            "jobs": self.jobs.counts(),
            "pipeline": self.pipeline.store.cache_info(),
        }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


def _execute_job(service: SoteriaService, job_id: str) -> None:
    """Worker body: run the pipeline for one job and record the verdict.

    Module-level so a process pool can ship it; with the default thread
    pool it shares the service's store directly.
    """
    with service._lock:
        named = service._sources.get(job_id)
    record = service.jobs.get(job_id)
    if record is None or named is None:
        return
    service.jobs.update(job_id, status="running")
    try:
        if record.kind == "app":
            name, source = named[0]
            analysis = service.pipeline.app_analysis(
                source, name=name, backend=record.backend, encoding=record.encoding
            )
            violations = analysis.violations
            skipped = list(analysis.skipped_properties)
            resolved_encoding = analysis.encoding
        else:
            analysis = service.pipeline.environment_analysis(
                [source for _name, source in named],
                backend=record.backend,
                encoding=record.encoding,
            )
            violations = analysis.violations
            skipped = sorted(
                {pid for member in analysis.analyses for pid in member.skipped_properties}
            )
            resolved_encoding = analysis.encoding
        decision = policy.decide(violations)
        service.jobs.update(
            job_id,
            status="done",
            verdict=decision.verdict,
            flagged=decision.flagged,
            reason=decision.reason,
            violations=[violation_dict(v) for v in violations],
            checked_properties=list(analysis.checked_properties),
            skipped_properties=skipped,
            resolved_backend=analysis.backend,
            resolved_encoding=resolved_encoding,
            state_estimate=analysis.state_estimate,
        )
    except Exception as exc:
        service.jobs.update(job_id, status="failed", error=f"{type(exc).__name__}: {exc}")
    finally:
        with service._lock:
            service._sources.pop(job_id, None)


# ======================================================================
# HTTP transport
# ======================================================================
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SoteriaService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, *_args) -> None:  # keep the CLI output clean
        pass

    # -- helpers -------------------------------------------------------
    def _json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query(self) -> dict[str, str]:
        return {
            key: values[-1]
            for key, values in parse_qs(urlparse(self.path).query).items()
        }

    @staticmethod
    def _page_args(query: dict[str, str]) -> tuple[int, int]:
        try:
            page = max(1, int(query.get("page", "1")))
            per_page = min(500, max(1, int(query.get("per_page", "50"))))
        except ValueError:
            raise SubmissionError("page/per_page must be integers") from None
        return page, per_page

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path = urlparse(self.path).path.rstrip("/")
        try:
            query = self._query()
            if path == "/v1/health":
                self._json(200, {"status": "ok", "version": __version__})
            elif path == "/v1/stats":
                self._json(200, self.service.stats())
            elif path == "/v1/jobs":
                page, per_page = self._page_args(query)
                self._json(200, self.service.jobs.list(page, per_page))
            elif path.startswith("/v1/jobs/"):
                self._get_job(path[len("/v1/jobs/"):], query)
            else:
                self._json(404, {"error": f"unknown path {path!r}"})
        except SubmissionError as exc:
            self._json(400, {"error": str(exc)})
        except Exception as exc:  # a handler bug must not kill the server
            self._json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _get_job(self, rest: str, query: dict[str, str]) -> None:
        job_id, _, sub = rest.partition("/")
        record = self.service.jobs.get(job_id)
        if record is None:
            self._json(404, {"error": f"unknown job {job_id!r}"})
            return
        if not sub:
            self._json(200, record.summary())
        elif sub == "violations":
            page, per_page = self._page_args(query)
            start = (page - 1) * per_page
            window = record.violations[start : start + per_page]
            self._json(
                200,
                {
                    "job": record.id,
                    "verdict": record.verdict,
                    "violations": window,
                    "page": page,
                    "per_page": per_page,
                    "total": len(record.violations),
                },
            )
        else:
            self._json(404, {"error": f"unknown job view {sub!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        path = urlparse(self.path).path.rstrip("/")
        if path != "/v1/submissions":
            self._json(404, {"error": f"unknown path {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            try:
                body = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as exc:
                raise SubmissionError(f"invalid JSON body: {exc}") from None
            entries, backend, encoding = _parse_submission(body)
            record, created = self.service.submit(entries, backend, encoding)
            wait = self._query().get("wait")
            if wait is not None:
                try:
                    budget = min(MAX_WAIT_SECONDS, max(0.0, float(wait)))
                except ValueError:
                    raise SubmissionError("wait must be a number of seconds") from None
                record = self.service.wait(record.id, timeout=budget) or record
            payload = record.summary()
            payload["created"] = created
            self._json(201 if created else 200, payload)
        except SubmissionError as exc:
            self._json(400, {"error": str(exc)})
        except Exception as exc:
            self._json(500, {"error": f"{type(exc).__name__}: {exc}"})


def build_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir=None,
    state_dir=None,
    jobs: int = 2,
    pool: str = "thread",
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server with its :class:`SoteriaService` attached.

    ``port=0`` binds an ephemeral port (see ``server.server_address``) —
    the tests' way to avoid collisions.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = SoteriaService(  # type: ignore[attr-defined]
        cache_dir=cache_dir, state_dir=state_dir, jobs=jobs, pool=pool
    )
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir=None,
    state_dir=None,
    jobs: int = 2,
    pool: str = "thread",
) -> None:
    """Run the service until interrupted (the ``soteria serve`` body)."""
    server = build_server(host, port, cache_dir, state_dir, jobs, pool)
    bound_host, bound_port = server.server_address[:2]
    print(f"soteria service listening on http://{bound_host}:{bound_port}")
    print("  POST /v1/submissions   GET /v1/jobs   GET /v1/stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.service.shutdown()  # type: ignore[attr-defined]
        server.server_close()
