"""Control-flow graphs and reaching definitions.

Statement-level CFGs per method, an inter-procedural CFG (ICFG) that splices
callee graphs in at call sites (with call-site identifiers for the depth-one
call-site sensitivity of Sharir-Pnueli that the paper uses), and a classic
forward may reaching-definitions analysis.  Algorithm 1 (backward dependence
for property abstraction, :mod:`repro.analysis.dependence`) runs on top of
these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang import ast


class NodeKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    STMT = "stmt"
    BRANCH = "branch"
    JOIN = "join"
    RETURN_SITE = "return-site"


@dataclass
class CFGNode:
    """One CFG node.  ``stmt`` is None for ENTRY/EXIT/JOIN nodes."""

    id: int
    kind: NodeKind
    method: str
    stmt: ast.Stmt | None = None
    cond: ast.Expr | None = None
    line: int = 0


@dataclass
class CFG:
    """Control-flow graph of a single method."""

    method: str
    nodes: dict[int, CFGNode] = field(default_factory=dict)
    succ: dict[int, list[tuple[int, str | None]]] = field(default_factory=dict)
    pred: dict[int, list[int]] = field(default_factory=dict)
    entry: int = -1
    exit: int = -1

    def add_node(
        self,
        kind: NodeKind,
        next_id: list[int],
        stmt: ast.Stmt | None = None,
        cond: ast.Expr | None = None,
        line: int = 0,
    ) -> int:
        node_id = next_id[0]
        next_id[0] += 1
        self.nodes[node_id] = CFGNode(
            id=node_id, kind=kind, method=self.method, stmt=stmt, cond=cond, line=line
        )
        self.succ[node_id] = []
        self.pred[node_id] = []
        return node_id

    def add_edge(self, src: int, dst: int, label: str | None = None) -> None:
        if (dst, label) not in self.succ[src]:
            self.succ[src].append((dst, label))
            self.pred[dst].append(src)

    def statements(self) -> list[CFGNode]:
        return [n for n in self.nodes.values() if n.kind is NodeKind.STMT]


class _CFGBuilder:
    """Builds a CFG for one method body."""

    def __init__(self, method: str, counter: list[int]) -> None:
        self.cfg = CFG(method=method)
        self.counter = counter
        self._loop_stack: list[tuple[int, int]] = []  # (header, after)
        self._breaks: dict[tuple[int, int], list[int]] = {}

    def build(self, body: ast.Block | None) -> CFG:
        self.cfg.entry = self.cfg.add_node(NodeKind.ENTRY, self.counter)
        self.cfg.exit = self.cfg.add_node(NodeKind.EXIT, self.counter)
        tails = self._block(body, [self.cfg.entry])
        self._link(tails, self.cfg.exit)
        return self.cfg

    # ``current`` is the set of dangling predecessors awaiting the next node.
    def _block(self, block: ast.Block | None, current: list[int]) -> list[int]:
        if block is None:
            return current
        for stmt in block.statements:
            current = self._statement(stmt, current)
            if not current:
                break  # unreachable code after return/break
        return current

    def _statement(self, stmt: ast.Stmt, current: list[int]) -> list[int]:
        if isinstance(stmt, ast.IfStmt):
            return self._if(stmt, current)
        if isinstance(stmt, ast.WhileStmt):
            return self._while(stmt, current)
        if isinstance(stmt, ast.ForInStmt):
            return self._for(stmt, current)
        if isinstance(stmt, ast.ReturnStmt):
            node = self.cfg.add_node(
                NodeKind.STMT, self.counter, stmt=stmt, line=stmt.line
            )
            self._link(current, node)
            self.cfg.add_edge(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.BreakStmt):
            node = self.cfg.add_node(
                NodeKind.STMT, self.counter, stmt=stmt, line=stmt.line
            )
            self._link(current, node)
            if self._loop_stack:
                # Edge added lazily by the loop construct via a sentinel.
                self._breaks.setdefault(self._loop_stack[-1], []).append(node)
            return []
        if isinstance(stmt, ast.ContinueStmt):
            node = self.cfg.add_node(
                NodeKind.STMT, self.counter, stmt=stmt, line=stmt.line
            )
            self._link(current, node)
            if self._loop_stack:
                header = self._loop_stack[-1][0]
                self.cfg.add_edge(node, header)
            return []
        node = self.cfg.add_node(NodeKind.STMT, self.counter, stmt=stmt, line=stmt.line)
        self._link(current, node)
        return [node]

    def _if(self, stmt: ast.IfStmt, current: list[int]) -> list[int]:
        branch = self.cfg.add_node(
            NodeKind.BRANCH, self.counter, stmt=stmt, cond=stmt.cond, line=stmt.line
        )
        self._link(current, branch)
        then_tails = self._block(stmt.then, self._edge_from(branch, "true"))
        if stmt.otherwise is None:
            else_tails = self._edge_from(branch, "false")  # fall through
        elif isinstance(stmt.otherwise, ast.IfStmt):
            else_tails = self._statement(
                stmt.otherwise, self._edge_from(branch, "false")
            )
        else:
            else_tails = self._block(stmt.otherwise, self._edge_from(branch, "false"))
        return then_tails + else_tails

    def _edge_from(self, node: int, label: str) -> list[int]:
        # Defer the edge: return a marker list; _link adds labelled edges.
        return [-node - 1000000 if label == "false" else node]

    def _link(self, current: list[int], dst: int) -> None:
        for src in current:
            if src <= -1000000:
                self.cfg.add_edge(-src - 1000000, dst, "false")
            else:
                label = None
                if self.cfg.nodes.get(src) and self.cfg.nodes[src].kind is NodeKind.BRANCH:
                    label = "true"
                self.cfg.add_edge(src, dst, label)

    def _while(self, stmt: ast.WhileStmt, current: list[int]) -> list[int]:
        header = self.cfg.add_node(
            NodeKind.BRANCH, self.counter, stmt=stmt, cond=stmt.cond, line=stmt.line
        )
        self._link(current, header)
        key = (header, header)
        self._loop_stack.append(key)
        body_tails = self._block(stmt.body, self._edge_from(header, "true"))
        self._loop_stack.pop()
        for tail in body_tails:
            self._link([tail], header)
        exits = [-header - 1000000]
        for brk in self._breaks.pop(key, []):
            exits.append(brk)
        return exits

    def _for(self, stmt: ast.ForInStmt, current: list[int]) -> list[int]:
        # Model for-in as a loop whose variable is defined by the iterable.
        header = self.cfg.add_node(
            NodeKind.BRANCH, self.counter, stmt=stmt, cond=stmt.iterable, line=stmt.line
        )
        self._link(current, header)
        key = (header, header)
        self._loop_stack.append(key)
        body_tails = self._block(stmt.body, self._edge_from(header, "true"))
        self._loop_stack.pop()
        for tail in body_tails:
            self._link([tail], header)
        exits = [-header - 1000000]
        for brk in self._breaks.pop(key, []):
            exits.append(brk)
        return exits


def build_cfg(method: ast.MethodDecl, counter: list[int] | None = None) -> CFG:
    """Build a statement-level CFG for one method."""
    builder = _CFGBuilder(method.name, counter if counter is not None else [0])
    return builder.build(method.body)


# ----------------------------------------------------------------------
# Inter-procedural CFG
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """A call from ``caller`` node ``node_id`` to ``callee`` (site-id = node)."""

    node_id: int
    caller: str
    callee: str
    call: ast.MethodCall
    line: int


class ICFG:
    """Inter-procedural CFG over all methods of an app.

    Node ids are globally unique (a shared counter feeds every per-method
    CFG).  Call edges connect a call-site node to the callee's ENTRY and the
    callee's EXIT back to the call-site's RETURN-SITE successor.  The call
    site id labels both edges so paths can be filtered with depth-one
    call-site sensitivity (unmatched call/return paths are discarded).
    """

    def __init__(self, methods: dict[str, ast.MethodDecl]) -> None:
        self.methods = methods
        counter = [0]
        self.cfgs: dict[str, CFG] = {
            name: build_cfg(decl, counter) for name, decl in methods.items()
        }
        self.nodes: dict[int, CFGNode] = {}
        for cfg in self.cfgs.values():
            self.nodes.update(cfg.nodes)
        self.call_sites: list[CallSite] = []
        #: edges: node -> [(dst, kind, site)]; kind in {"intra","call","return"}
        self.succ: dict[int, list[tuple[int, str, int | None]]] = {}
        self.pred: dict[int, list[tuple[int, str, int | None]]] = {}
        self._build_edges()

    def _build_edges(self) -> None:
        for cfg in self.cfgs.values():
            for src, edges in cfg.succ.items():
                for dst, _label in edges:
                    self._add_edge(src, dst, "intra", None)
        for cfg in self.cfgs.values():
            for node in cfg.nodes.values():
                if node.stmt is None and node.cond is None:
                    continue
                root: ast.Node | None = node.stmt if node.stmt is not None else node.cond
                if isinstance(node.stmt, (ast.IfStmt, ast.WhileStmt)):
                    root = node.cond  # body statements have their own nodes
                if root is None:
                    continue
                for call in ast.find_calls(root):
                    if (
                        isinstance(call.name, str)
                        and call.receiver is None
                        and call.name in self.cfgs
                    ):
                        callee = self.cfgs[call.name]
                        site = CallSite(
                            node_id=node.id,
                            caller=node.method,
                            callee=call.name,
                            call=call,
                            line=node.line,
                        )
                        self.call_sites.append(site)
                        self._add_edge(node.id, callee.entry, "call", node.id)
                        self._add_edge(callee.exit, node.id, "return", node.id)

    def _add_edge(self, src: int, dst: int, kind: str, site: int | None) -> None:
        self.succ.setdefault(src, []).append((dst, kind, site))
        self.pred.setdefault(dst, []).append((src, kind, site))

    def successors(self, node_id: int) -> list[tuple[int, str, int | None]]:
        return self.succ.get(node_id, [])

    def predecessors(self, node_id: int) -> list[tuple[int, str, int | None]]:
        return self.pred.get(node_id, [])


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Definition:
    """A definition of ``var`` at ``node_id`` with right-hand side ``rhs``.

    ``rhs`` is None for parameter bindings whose argument expression is
    recorded in ``arg`` instead (inter-procedural definitions, as in the
    paper's Algorithm 1 treatment of parameter passing).
    """

    node_id: int
    var: str
    rhs_repr: str  # stable identity for set membership

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Def({self.var}@{self.node_id})"


class ReachingDefinitions:
    """Forward may reaching-definitions over the ICFG.

    Definitions are generated by assignments (including ``state.f = ...``
    pseudo-variables, giving the field-sensitive analysis of Sec. 4.2.3) and
    by parameter bindings at call sites.  The analysis iterates to a fixed
    point with the standard gen/kill equations.
    """

    def __init__(self, icfg: ICFG) -> None:
        self.icfg = icfg
        self.defs: dict[int, list[tuple[str, ast.Expr | None]]] = {}
        self._collect_defs()
        self.in_sets: dict[int, set[Definition]] = {}
        self.out_sets: dict[int, set[Definition]] = {}
        self._solve()

    # -- def collection -------------------------------------------------
    def _collect_defs(self) -> None:
        for node in self.icfg.nodes.values():
            gen: list[tuple[str, ast.Expr | None]] = []
            if isinstance(node.stmt, ast.Assign):
                var = target_variable(node.stmt.target)
                if var is not None:
                    gen.append((var, node.stmt.value))
            if isinstance(node.stmt, ast.ForInStmt):
                gen.append((node.stmt.var, node.stmt.iterable))
            self.defs[node.id] = gen
        # Parameter bindings: at a call node, the callee's parameters are
        # defined by the argument expressions.
        for site in self.icfg.call_sites:
            callee_decl = self.icfg.methods.get(site.callee)
            if callee_decl is None:
                continue
            gen = self.defs.setdefault(site.node_id, [])
            for index, param in enumerate(callee_decl.params):
                arg: ast.Expr | None
                if index < len(site.call.args):
                    arg = site.call.args[index]
                else:
                    arg = param.default
                gen.append((param.name, arg))

    def definition_objects(self, node_id: int) -> set[Definition]:
        return {
            Definition(node_id, var, _expr_key(rhs))
            for var, rhs in self.defs.get(node_id, [])
        }

    # -- fixed point -----------------------------------------------------
    def _solve(self) -> None:
        node_ids = list(self.icfg.nodes)
        for node_id in node_ids:
            self.in_sets[node_id] = set()
            self.out_sets[node_id] = set()
        worklist = list(node_ids)
        while worklist:
            node_id = worklist.pop()
            incoming: set[Definition] = set()
            for src, _kind, _site in self.icfg.predecessors(node_id):
                incoming |= self.out_sets[src]
            gen = self.definition_objects(node_id)
            killed_vars = {d.var for d in gen}
            outgoing = gen | {d for d in incoming if d.var not in killed_vars}
            if incoming != self.in_sets[node_id] or outgoing != self.out_sets[node_id]:
                self.in_sets[node_id] = incoming
                self.out_sets[node_id] = outgoing
                for dst, _kind, _site in self.icfg.successors(node_id):
                    if dst not in worklist:
                        worklist.append(dst)

    # -- queries ----------------------------------------------------------
    def reaching(self, node_id: int, var: str) -> list[tuple[int, ast.Expr | None]]:
        """Definitions of ``var`` reaching ``node_id`` (paper: defs of (n: id))."""
        results: list[tuple[int, ast.Expr | None]] = []
        for definition in self.in_sets.get(node_id, set()):
            if definition.var != var:
                continue
            for dvar, rhs in self.defs.get(definition.node_id, []):
                if dvar == var:
                    results.append((definition.node_id, rhs))
        return results


def target_variable(target: ast.Expr | None) -> str | None:
    """Variable name defined by an assignment target.

    ``state.counter`` and ``atomicState.counter`` become the pseudo-variables
    ``state.counter`` / ``atomicState.counter`` (field sensitivity).
    """
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.PropertyAccess) and isinstance(target.obj, ast.Name):
        if target.obj.id in ("state", "atomicState"):
            return f"{target.obj.id}.{target.name}"
    return None


def _expr_key(expr: ast.Expr | None) -> str:
    if expr is None:
        return "<none>"
    return f"{type(expr).__name__}@{expr.line}:{id(expr) & 0xFFFF}"
