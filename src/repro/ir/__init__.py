"""Intermediate representation of IoT apps (Soteria Sec. 4.1).

The IR is built from a framework-agnostic component model with three parts:

* **Permissions** — the devices and user inputs an app is granted
  (:class:`repro.ir.ir.Permission`),
* **Events/Actions** — subscriptions binding device or abstract events to
  event-handler methods (:class:`repro.ir.ir.Subscription`),
* **Call graphs** — one per entry point, with calls by reflection
  over-approximated to all app methods (:mod:`repro.ir.callgraph`).
"""

from repro.ir.ir import (
    AppIR,
    EntryPoint,
    Permission,
    PermissionKind,
    Subscription,
)
from repro.ir.builder import IRBuilder, build_ir
from repro.ir.cfg import CFG, CFGNode, ICFG, NodeKind, ReachingDefinitions
from repro.ir.callgraph import CallGraph, build_call_graph

__all__ = [
    "AppIR",
    "EntryPoint",
    "Permission",
    "PermissionKind",
    "Subscription",
    "IRBuilder",
    "build_ir",
    "CFG",
    "CFGNode",
    "ICFG",
    "NodeKind",
    "ReachingDefinitions",
    "CallGraph",
    "build_call_graph",
]
