"""IR data structures (Soteria Sec. 4.1, Fig. 4 and Fig. 5)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang import ast
from repro.platform.capabilities import CapabilityDatabase
from repro.platform.events import Event
from repro.platform.smartapp import SmartApp


class PermissionKind(enum.Enum):
    DEVICE = "device"
    USER_DEFINED = "user_defined"


@dataclass(frozen=True)
class Permission:
    """One ``input`` triple from the permissions block.

    For a device, ``handle`` is the app-local device identifier and
    ``capability`` its platform capability name (``"switch"``).  For a user
    input, ``capability`` holds the input type (``"number"``, ``"time"``,
    ``"enum"``, ``"contact"``, ``"phone"``, ...).
    """

    handle: str
    capability: str
    kind: PermissionKind
    title: str = ""
    required: bool = False
    multiple: bool = False
    line: int = 0

    def render(self) -> str:
        """The IR text line, matching the paper's Fig. 5 format."""
        return f"input ({self.handle}, {self.capability}, type:{self.kind.value})"


@dataclass(frozen=True)
class Subscription:
    """One events/actions-block line: event -> handler method."""

    event: Event
    handler: str
    line: int = 0

    def render(self) -> str:
        return f'subscribe({self.event.device}, "{self.event.label()}", {self.handler})'


@dataclass(frozen=True)
class EntryPoint:
    """A dummy-main entry: the handler invoked when ``event`` occurs."""

    event: Event
    handler: str


@dataclass
class AppIR:
    """The complete IR of one app (permissions, events/actions, methods)."""

    app: SmartApp
    permissions: list[Permission] = field(default_factory=list)
    subscriptions: list[Subscription] = field(default_factory=list)
    entry_points: list[EntryPoint] = field(default_factory=list)
    #: Apps using ``dynamicPage`` build permissions at run time — out of
    #: Soteria's static scope (MalIoT App10).
    has_dynamic_preferences: bool = False
    #: Methods that transmit data off-hub (sendSms/httpPost...), recorded for
    #: scope reporting (MalIoT App11 is out of the attacker model).
    sink_calls: list[tuple[str, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def devices(self) -> list[Permission]:
        return [p for p in self.permissions if p.kind is PermissionKind.DEVICE]

    def user_inputs(self) -> list[Permission]:
        return [p for p in self.permissions if p.kind is PermissionKind.USER_DEFINED]

    def device(self, handle: str) -> Permission | None:
        for perm in self.permissions:
            if perm.handle == handle and perm.kind is PermissionKind.DEVICE:
                return perm
        return None

    def user_input(self, handle: str) -> Permission | None:
        for perm in self.permissions:
            if perm.handle == handle and perm.kind is PermissionKind.USER_DEFINED:
                return perm
        return None

    def capabilities_used(self) -> set[str]:
        return {p.capability for p in self.devices()}

    def method(self, name: str) -> ast.MethodDecl | None:
        return self.app.module.methods.get(name)

    def methods(self) -> dict[str, ast.MethodDecl]:
        return self.app.module.methods

    def handlers(self) -> list[str]:
        seen: list[str] = []
        for entry in self.entry_points:
            if entry.handler not in seen:
                seen.append(entry.handler)
        return seen

    # ------------------------------------------------------------------
    # Rendering (Fig. 5 style)
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Textual IR in the paper's Fig. 5 layout."""
        lines = ["// Permissions block"]
        lines.extend(p.render() for p in self.permissions)
        lines.append("")
        lines.append("// Events/Actions block")
        lines.extend(s.render() for s in self.subscriptions)
        lines.append("")
        for entry in self.entry_points:
            lines.append(f"// Entry point: {entry.event.label()} -> {entry.handler}()")
        return "\n".join(lines)

    def resolve_event_attribute(
        self, handle: str, name: str, db: CapabilityDatabase
    ) -> tuple[str, str | None]:
        """Split a subscription string like ``"water.wet"`` into
        (attribute, value), validating against the device's capability."""
        perm = self.device(handle)
        if "." in name:
            attribute, value = name.split(".", 1)
            # ``subscribe(dev, "handle.attr", h)`` appears in some apps;
            # strip the redundant handle prefix.
            if attribute == handle:
                attribute, value = value, None
                if "." in attribute:
                    attribute, value = attribute.split(".", 1)
        else:
            attribute, value = name, None
        if perm is not None:
            cap = db.get(perm.capability)
            if cap is not None and attribute not in cap.attributes:
                primary = cap.primary_attribute
                if primary is not None:
                    if value is None and name in primary.values:
                        # ``subscribe(dev, "on", h)`` — a bare value of the
                        # primary attribute.
                        return primary.name, name
                    if attribute == perm.capability:
                        # ``subscribe(dev, "powerMeter", h)`` — capability
                        # name used for the primary attribute.
                        return primary.name, value
        return attribute, value
