"""AST -> IR construction (Soteria Sec. 4.1).

Visits the ``preferences`` block to recover permissions, then interprets the
app's lifecycle methods (``installed``/``updated``/``initialize``) to find
event subscriptions and schedules, creating one entry point per subscribed
event — the paper's "dummy main method for each entry point".
"""

from __future__ import annotations

from repro.lang import ast
from repro.platform.capabilities import CapabilityDatabase, default_database
from repro.platform.events import Event, EventKind
from repro.platform.smartapp import SmartApp
from repro.ir.ir import AppIR, EntryPoint, Permission, PermissionKind, Subscription

#: ``input`` types that denote user-entered values rather than devices.
_USER_INPUT_TYPES = {
    "number",
    "decimal",
    "text",
    "string",
    "time",
    "enum",
    "bool",
    "boolean",
    "password",
    "phone",
    "contact",
    "email",
    "mode",
    "hub",
    "icon",
}

#: Calls that transmit data off the hub (used for scope reporting only).
_SINK_CALLS = {
    "sendSms",
    "sendSmsMessage",
    "sendNotificationToContacts",
    "sendPush",
    "sendPushMessage",
    "sendNotification",
    "httpPost",
    "httpPostJson",
    "httpPut",
}

#: ``runEvery*`` periodic scheduling interfaces.
_RUN_EVERY = {
    "runEvery1Minute",
    "runEvery5Minutes",
    "runEvery10Minutes",
    "runEvery15Minutes",
    "runEvery30Minutes",
    "runEvery1Hour",
    "runEvery3Hours",
}

#: Location (solar/position) pseudo-events.
_SOLAR_EVENTS = {"sunrise", "sunset", "sunriseTime", "sunsetTime"}


class IRBuilder:
    """Builds an :class:`AppIR` from a parsed :class:`SmartApp`."""

    def __init__(self, app: SmartApp, db: CapabilityDatabase | None = None) -> None:
        self.app = app
        self.db = db or default_database()
        self.ir = AppIR(app=app)

    # ------------------------------------------------------------------
    def build(self) -> AppIR:
        self._collect_permissions()
        self._collect_subscriptions()
        self._collect_sinks()
        return self.ir

    # ------------------------------------------------------------------
    # Permissions
    # ------------------------------------------------------------------
    def _collect_permissions(self) -> None:
        for stmt in self.app.module.statements:
            call = _top_call(stmt)
            if call is None:
                continue
            if call.name == "preferences" and call.closure is not None:
                self._walk_preferences(call.closure.body)

    def _walk_preferences(self, block: ast.Block | None) -> None:
        if block is None:
            return
        for stmt in block.statements:
            call = _top_call(stmt)
            if call is None:
                continue
            if call.name in ("section", "page"):
                self._walk_preferences(call.closure.body if call.closure else None)
            elif call.name in ("dynamicPage", "href"):
                self.ir.has_dynamic_preferences = True
                self._walk_preferences(call.closure.body if call.closure else None)
            elif call.name == "input":
                self._record_input(call)
                # Nested fallback inputs: input("recipients", "contact") {...}
                if call.closure is not None:
                    self._walk_preferences(call.closure.body)

    def _record_input(self, call: ast.MethodCall) -> None:
        handle = _string_arg(call, 0) or _named_string(call, "name")
        type_name = _string_arg(call, 1) or _named_string(call, "type")
        if handle is None or type_name is None:
            return
        if type_name.startswith("capability."):
            capability = type_name[len("capability.") :]
            kind = PermissionKind.DEVICE
        elif type_name in _USER_INPUT_TYPES or type_name.startswith("device."):
            capability = type_name
            kind = PermissionKind.USER_DEFINED
            if type_name.startswith("device."):
                capability = type_name[len("device.") :]
                kind = PermissionKind.DEVICE
        else:
            capability = type_name
            kind = PermissionKind.USER_DEFINED
        title = _named_string(call, "title") or ""
        required = _named_bool(call, "required")
        multiple = _named_bool(call, "multiple")
        self.ir.permissions.append(
            Permission(
                handle=handle,
                capability=capability,
                kind=kind,
                title=title,
                required=required,
                multiple=multiple,
                line=call.line,
            )
        )

    # ------------------------------------------------------------------
    # Subscriptions / schedules
    # ------------------------------------------------------------------
    def _lifecycle_roots(self) -> list[str]:
        roots = [
            name
            for name in ("installed", "updated", "initialize")
            if name in self.app.module.methods
        ]
        return roots or list(self.app.module.methods)

    def _reachable_methods(self, roots: list[str]) -> list[str]:
        """Methods transitively called from the lifecycle roots."""
        seen: list[str] = []
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.append(name)
            method = self.app.module.methods.get(name)
            if method is None or method.body is None:
                continue
            for call in ast.find_calls(method.body):
                if (
                    isinstance(call.name, str)
                    and call.receiver is None
                    and call.name in self.app.module.methods
                ):
                    stack.append(call.name)
        return seen

    def _collect_subscriptions(self) -> None:
        lifecycle = set(self._reachable_methods(self._lifecycle_roots()))
        # ``subscribe`` only takes effect from the lifecycle methods;
        # scheduling calls (runIn/schedule) also register entry points when
        # invoked from handlers, so those are collected from every method.
        for name, method in self.app.module.methods.items():
            if method.body is None:
                continue
            for call in ast.find_calls(method.body):
                if not isinstance(call.name, str) or call.receiver is not None:
                    continue
                if call.name == "subscribe" and name in lifecycle:
                    self._record_subscribe(call)
                elif call.name in ("schedule", "runIn", "runOnce"):
                    self._record_schedule(call)
                elif call.name in _RUN_EVERY:
                    self._record_run_every(call)
        for sub in self.ir.subscriptions:
            entry = EntryPoint(event=sub.event, handler=sub.handler)
            if entry not in self.ir.entry_points:
                self.ir.entry_points.append(entry)

    def _record_subscribe(self, call: ast.MethodCall) -> None:
        if len(call.args) < 3:
            return
        target = call.args[0]
        event_name = _expr_string(call.args[1])
        handler = _handler_name(call.args[2])
        if handler is None:
            return
        if isinstance(target, ast.Name) and target.id == "location":
            if event_name is None:
                return
            if event_name in _SOLAR_EVENTS:
                event = Event(EventKind.SOLAR, "location", event_name)
            elif event_name.startswith("mode"):
                value = event_name.split(".", 1)[1] if "." in event_name else None
                event = Event(EventKind.MODE, "location", "mode", value)
            elif event_name == "position":
                event = Event(EventKind.DEVICE, "location", "position")
            else:
                # subscribe(location, "home") — a specific mode name.
                event = Event(EventKind.MODE, "location", "mode", event_name)
        elif isinstance(target, ast.Name) and target.id == "app":
            event = Event(EventKind.APP_TOUCH, "app", "appTouch")
        elif isinstance(target, ast.Name):
            if event_name is None:
                return
            attribute, value = self.ir.resolve_event_attribute(
                target.id, event_name, self.db
            )
            event = Event(EventKind.DEVICE, target.id, attribute, value)
        else:
            return
        self._add_subscription(Subscription(event=event, handler=handler, line=call.line))

    def _add_subscription(self, subscription: Subscription) -> None:
        """Record a subscription once (installed() and updated() typically
        both subscribe the same events)."""
        for existing in self.ir.subscriptions:
            if (existing.event, existing.handler) == (
                subscription.event,
                subscription.handler,
            ):
                return
        self.ir.subscriptions.append(subscription)

    def _record_schedule(self, call: ast.MethodCall) -> None:
        if len(call.args) < 2:
            return
        handler = _handler_name(call.args[1])
        if handler is None:
            return
        spec = _expr_string(call.args[0])
        label = spec if spec is not None else f"line{call.line}"
        # A user-entered time (schedule(startTime, handler)) is a TIME event;
        # constant cron strings and runIn delays are TIMER events.
        if call.name == "schedule" and isinstance(call.args[0], ast.Name):
            event = Event(EventKind.TIME, "timer", call.args[0].id)
        else:
            event = Event(EventKind.TIMER, "timer", label)
        self._add_subscription(Subscription(event=event, handler=handler, line=call.line))

    def _record_run_every(self, call: ast.MethodCall) -> None:
        if not call.args:
            return
        handler = _handler_name(call.args[0])
        if handler is None:
            return
        event = Event(EventKind.TIMER, "timer", call.name)
        self._add_subscription(Subscription(event=event, handler=handler, line=call.line))

    # ------------------------------------------------------------------
    # Sinks (scope reporting)
    # ------------------------------------------------------------------
    def _collect_sinks(self) -> None:
        for name, method in self.app.module.methods.items():
            if method.body is None:
                continue
            for call in ast.find_calls(method.body):
                if isinstance(call.name, str) and call.name in _SINK_CALLS:
                    self.ir.sink_calls.append((call.name, call.line))


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------
def _top_call(stmt: ast.Stmt) -> ast.MethodCall | None:
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.MethodCall):
        call = stmt.expr
        if isinstance(call.name, str):
            return call
    return None


def _expr_string(expr: ast.Expr) -> str | None:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.GString):
        return expr.static_text()
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.PropertyAccess):
        # e.g. subscribe(dev, switch.on, handler) written without quotes
        base = _expr_string(expr.obj) if expr.obj is not None else None
        if base is not None:
            return f"{base}.{expr.name}"
    return None


def _handler_name(expr: ast.Expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
        return expr.value
    return None


def _string_arg(call: ast.MethodCall, index: int) -> str | None:
    if index < len(call.args):
        arg = call.args[index]
        if isinstance(arg, ast.Literal) and isinstance(arg.value, str):
            return arg.value
    return None


def _named_string(call: ast.MethodCall, key: str) -> str | None:
    value = call.named_args.get(key)
    if isinstance(value, ast.Literal) and isinstance(value.value, str):
        return value.value
    return None


def _named_bool(call: ast.MethodCall, key: str) -> bool:
    value = call.named_args.get(key)
    return isinstance(value, ast.Literal) and value.value is True


def build_ir(app: SmartApp, db: CapabilityDatabase | None = None) -> AppIR:
    """Build the IR of ``app`` (Fig. 5 of the paper)."""
    return IRBuilder(app, db).build()
