"""Per-entry-point call graphs with reflection over-approximation.

The paper (Sec. 4.1): *"We create a call graph for each entry point that
defines an event handler method."*  And (Sec. 4.2.3): *"To handle calls by
reflection, Soteria's call graph construction adds all methods in an app as
possible call targets, as a safe over-approximation."*
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast


@dataclass
class CallEdge:
    caller: str
    callee: str
    line: int
    #: True when the edge exists only because of a reflective call
    #: (``"$name"()``) — downstream analyses use this to flag potential
    #: false positives (MalIoT App5).
    reflective: bool = False


@dataclass
class CallGraph:
    """Call graph rooted at one entry-point handler."""

    root: str
    nodes: set[str] = field(default_factory=set)
    edges: list[CallEdge] = field(default_factory=list)
    uses_reflection: bool = False

    def callees(self, name: str) -> list[CallEdge]:
        return [e for e in self.edges if e.caller == name]

    def reachable(self) -> set[str]:
        return set(self.nodes)


#: Lifecycle methods never treated as reflective-call targets: calling
#: ``installed()`` reflectively would re-run setup, which the platform
#: forbids.  Everything else is a candidate (safe over-approximation).
_LIFECYCLE = {"installed", "updated", "initialize", "uninstalled"}


def build_call_graph(
    methods: dict[str, ast.MethodDecl], root: str
) -> CallGraph:
    """DFS from ``root`` following direct calls; reflective calls fan out."""
    graph = CallGraph(root=root)
    if root not in methods:
        return graph
    stack = [root]
    while stack:
        name = stack.pop()
        if name in graph.nodes:
            continue
        graph.nodes.add(name)
        decl = methods.get(name)
        if decl is None or decl.body is None:
            continue
        for call in ast.find_calls(decl.body):
            if call.receiver is not None:
                continue
            if isinstance(call.name, str):
                if call.name in methods:
                    graph.edges.append(
                        CallEdge(caller=name, callee=call.name, line=call.line)
                    )
                    stack.append(call.name)
            else:
                # Reflection: "$m"() — add every method as a possible target.
                graph.uses_reflection = True
                for target in methods:
                    if target in _LIFECYCLE or target == name:
                        continue
                    graph.edges.append(
                        CallEdge(
                            caller=name,
                            callee=target,
                            line=call.line,
                            reflective=True,
                        )
                    )
                    stack.append(target)
    return graph
