"""Path-condition atoms (Soteria Sec. 4.2.2).

A transition guard is a conjunction of :class:`Atom` comparisons.  The paper
found IoT predicates to be "extremely simple in the form of comparisons
between variables and constants (such as x = c and x > c)"; atoms mirror
that: a symbolic left-hand side, a comparison operator, and a right-hand
side that is usually a constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.values import Const, SymValue, source_label

#: Comparison operators and their negations.
NEGATIONS = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    ">=": "<",
    ">": "<=",
    "<=": ">",
    "truthy": "falsy",
    "falsy": "truthy",
}

#: Operator with swapped operand order (for normalising const-on-left atoms).
SWAPPED = {"==": "==", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


@dataclass(frozen=True)
class Atom:
    """One comparison: ``lhs op rhs`` (or ``truthy(lhs)``/``falsy(lhs)``)."""

    lhs: SymValue
    op: str
    rhs: SymValue = Const(True)

    def __post_init__(self) -> None:
        if self.op not in NEGATIONS:
            raise ValueError(f"unsupported atom operator {self.op!r}")

    def render(self) -> str:
        if self.op in ("truthy", "falsy"):
            text = self.lhs.key()
            return text if self.op == "truthy" else f"!{text}"
        return f"{self.lhs.key()} {self.op} {self.rhs.key()}"

    def sources(self) -> set[str]:
        """Predicate-source labels of both operands (Sec. 4.2.2)."""
        labels = {source_label(self.lhs)}
        if self.op not in ("truthy", "falsy"):
            labels.add(source_label(self.rhs))
        return labels


#: A path condition: a conjunction of atoms (empty = true).
PathCondition = tuple[Atom, ...]


def negate_atom(atom: Atom) -> Atom:
    """``!(lhs op rhs)`` as an atom."""
    return Atom(lhs=atom.lhs, op=NEGATIONS[atom.op], rhs=atom.rhs)


def normalize_atom(atom: Atom) -> Atom:
    """Put the constant on the right-hand side when possible."""
    if isinstance(atom.lhs, Const) and not isinstance(atom.rhs, Const):
        swapped = SWAPPED.get(atom.op)
        if swapped is not None:
            return Atom(lhs=atom.rhs, op=swapped, rhs=atom.lhs)
    return atom


def render_condition(condition: PathCondition) -> str:
    """Human-readable guard text, e.g. for DOT edge labels."""
    if not condition:
        return ""
    return " && ".join(atom.render() for atom in condition)


def condition_sources(condition: PathCondition) -> set[str]:
    labels: set[str] = set()
    for atom in condition:
        labels |= atom.sources()
    return labels
