"""Static analyses behind state-model extraction (Soteria Sec. 4.2).

* :mod:`.values` — the symbolic value domain (constants, user inputs, device
  reads, state variables, event values) with source labels,
* :mod:`.predicates` — path-condition atoms and conditions,
* :mod:`.feasibility` — the paper's "simple custom checker" for path
  conditions (comparisons between variables and constants; no SMT solver),
* :mod:`.dependence` — Algorithm 1: worklist backward dependence on the ICFG,
* :mod:`.abstraction` — property abstraction of numeric attributes,
* :mod:`.symexec` — forward path-sensitive symbolic execution with ESP-style
  path merging, producing transition rules.
"""

from repro.analysis.values import (
    Arith,
    Const,
    DeviceRead,
    EventAttr,
    EventValue,
    StateVar,
    SymValue,
    Unknown,
    UserInput,
    source_label,
)
from repro.analysis.predicates import Atom, PathCondition, negate_atom
from repro.analysis.feasibility import is_feasible
from repro.analysis.dependence import DependenceAnalysis, DependenceResult
from repro.analysis.abstraction import (
    AbstractDomain,
    AbstractRegion,
    build_numeric_domain,
)
from repro.analysis.symexec import Action, PathSummary, SymbolicExecutor

__all__ = [
    "Arith",
    "Const",
    "DeviceRead",
    "EventAttr",
    "EventValue",
    "StateVar",
    "SymValue",
    "Unknown",
    "UserInput",
    "source_label",
    "Atom",
    "PathCondition",
    "negate_atom",
    "is_feasible",
    "DependenceAnalysis",
    "DependenceResult",
    "AbstractDomain",
    "AbstractRegion",
    "build_numeric_domain",
    "Action",
    "PathSummary",
    "SymbolicExecutor",
]
