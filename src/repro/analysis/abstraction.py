"""Property abstraction of numeric attributes (Soteria Sec. 4.2.1).

A thermostat with 45 temperature values and a power meter with 100 energy
levels would yield ~4.5K raw states.  Soteria collapses numeric domains to
the *sources* that can actually flow into the attribute (Algorithm 1) plus
one region for "everything else", and — for attributes only *read* in
predicates — to the interval partition induced by the comparison constants.

The abstract domain built here is what the state-model extractor enumerates,
and the before/after counts feed Fig. 11 (top).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.predicates import Atom
from repro.analysis.values import Const, DeviceRead, SymValue, UserInput
from repro.platform.capabilities import Attribute


@dataclass(frozen=True)
class AbstractRegion:
    """One abstract value of a numeric attribute.

    Three shapes:

    * point       — exactly one concrete value (a written constant),
    * interval    — ``(lo, hi)`` with open/closed endpoints,
    * symbolic    — position relative to a user input (``below:thrshld``).
    """

    label: str
    kind: str                  # "point" | "interval" | "symbolic" | "any"
    point: float | None = None
    lo: float = -math.inf
    hi: float = math.inf
    lo_open: bool = True
    hi_open: bool = True
    user_handle: str | None = None
    user_side: str | None = None   # "below" | "at-or-above"

    # ------------------------------------------------------------------
    def decide(self, op: str, rhs: SymValue) -> bool | None:
        """Does ``value op rhs`` hold for every concrete value in this
        region?  True / False when decidable, None when mixed or unknown."""
        if isinstance(rhs, Const) and isinstance(rhs.value, (int, float)):
            return self._decide_const(op, float(rhs.value))
        if isinstance(rhs, UserInput) and self.kind == "symbolic":
            if rhs.handle != self.user_handle:
                return None
            if self.user_side == "below":
                return {"<": True, ">=": False, ">": False, "<=": True,
                        "==": False, "!=": True}.get(op)
            if self.user_side == "at-or-above":
                return {"<": False, ">=": True, "==": None, "!=": None,
                        ">": None, "<=": None}.get(op)
            if self.user_side == "equal":
                return {"==": True, "!=": False, "<": False, ">": False,
                        "<=": True, ">=": True}.get(op)
            if self.user_side == "not-equal":
                return {"==": False, "!=": True}.get(op)
        return None

    def _decide_const(self, op: str, value: float) -> bool | None:
        if self.kind == "point":
            assert self.point is not None
            return _compare(self.point, op, value)
        if self.kind == "interval":
            return self._decide_interval(op, value)
        return None

    def _decide_interval(self, op: str, value: float) -> bool | None:
        """Exact endpoint arithmetic: does ``x op value`` hold for every
        (True) / no (False) member x of the interval, else None."""
        lo, hi = self.lo, self.hi
        lo_open, hi_open = self.lo_open, self.hi_open
        if lo == hi and not lo_open and not hi_open:
            return _compare(lo, op, value)  # degenerate single point
        contains = (value > lo or (value == lo and not lo_open)) and (
            value < hi or (value == hi and not hi_open)
        )
        if op == "<":
            if hi < value or (hi == value and hi_open):
                return True
            if lo >= value:
                return False
            return None
        if op == "<=":
            if hi <= value:
                return True
            if lo > value or (lo == value and lo_open):
                return False
            return None
        if op == ">":
            if lo > value or (lo == value and lo_open):
                return True
            if hi <= value:
                return False
            return None
        if op == ">=":
            if lo >= value:
                return True
            if hi < value or (hi == value and hi_open):
                return False
            return None
        if op == "==":
            if not contains:
                return False
            return None  # a non-degenerate interval is never all-equal
        if op == "!=":
            if not contains:
                return True
            return None
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.label


@dataclass(frozen=True)
class AbstractDomain:
    """The abstract value set of one numeric device attribute."""

    device: str
    attribute: str
    regions: tuple[AbstractRegion, ...]
    raw_size: int          # pre-reduction state count (Fig. 11 top)

    def size(self) -> int:
        return len(self.regions)

    def labels(self) -> list[str]:
        return [region.label for region in self.regions]

    def region(self, label: str) -> AbstractRegion:
        for item in self.regions:
            if item.label == label:
                return item
        raise KeyError(label)


def _compare(lhs: float, op: str, rhs: float) -> bool:
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ValueError(f"unsupported comparison {op!r}")


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def build_numeric_domain(
    device: str,
    attribute: Attribute,
    written_constants: set[float],
    read_constants: set[float],
    user_handles: set[str],
    written_user_inputs: set[str] = frozenset(),
) -> AbstractDomain:
    """Construct the abstract domain for one numeric attribute.

    * ``written_constants`` — constants flowing into action calls
      (Algorithm 1 sources), each becoming a *point* region;
    * ``read_constants`` — comparison constants from predicates, acting as
      interval boundaries;
    * ``user_handles`` — user inputs compared against the attribute; when
      they are the only cut points the domain is the two symbolic regions;
    * ``written_user_inputs`` — user inputs written into the attribute
      (``setLevel(userLevel)``), each a symbolic point.
    """
    raw = attribute.domain_size()
    name = attribute.name

    boundaries = sorted(set(written_constants) | set(read_constants))
    regions: list[AbstractRegion] = []

    if not boundaries and not user_handles and not written_user_inputs:
        region = AbstractRegion(label=f"{name}:any", kind="any")
        return AbstractDomain(device, name, (region,), raw)

    if not boundaries and user_handles:
        # Threshold comparisons against a user input: two symbolic regions
        # (the paper's P.22-style "battery below threshold" states).
        handle = sorted(user_handles)[0]
        below = AbstractRegion(
            label=f"{name}<{handle}",
            kind="symbolic",
            user_handle=handle,
            user_side="below",
        )
        above = AbstractRegion(
            label=f"{name}>={handle}",
            kind="symbolic",
            user_handle=handle,
            user_side="at-or-above",
        )
        return AbstractDomain(device, name, (below, above), raw)

    if not boundaries and written_user_inputs:
        # The attribute is *written* with a user input (thermostat setpoint
        # from preferences): states "equal to the setting" / "anything else",
        # mirroring the paper's =68 / !=68 example with a symbolic constant.
        handle = sorted(written_user_inputs)[0]
        equal = AbstractRegion(
            label=f"{name}={handle}",
            kind="symbolic",
            user_handle=handle,
            user_side="equal",
        )
        other = AbstractRegion(
            label=f"{name}!={handle}",
            kind="symbolic",
            user_handle=handle,
            user_side="not-equal",
        )
        return AbstractDomain(device, name, (equal, other), raw)

    # Interval partition with point regions at every boundary:
    #   (-inf, b0), [b0], (b0, b1), [b1], ..., (bk, +inf)
    previous = -math.inf
    for boundary in boundaries:
        regions.append(
            AbstractRegion(
                label=f"{_fmt(previous)}<{name}<{_fmt(boundary)}"
                if not math.isinf(previous)
                else f"{name}<{_fmt(boundary)}",
                kind="interval",
                lo=previous,
                hi=boundary,
            )
        )
        regions.append(
            AbstractRegion(
                label=f"{name}={_fmt(boundary)}", kind="point", point=boundary
            )
        )
        previous = boundary
    regions.append(
        AbstractRegion(
            label=f"{name}>{_fmt(previous)}", kind="interval", lo=previous
        )
    )
    return AbstractDomain(device, name, tuple(regions), raw)


def collect_read_cutpoints(
    atoms: list[Atom], device: str, attribute: str
) -> tuple[set[float], set[str]]:
    """Comparison constants / user handles guarding ``device.attribute``."""
    constants: set[float] = set()
    users: set[str] = set()
    for atom in atoms:
        lhs, rhs = atom.lhs, atom.rhs
        if isinstance(rhs, DeviceRead) and not isinstance(lhs, DeviceRead):
            lhs, rhs = rhs, lhs
        if not isinstance(lhs, DeviceRead):
            continue
        if lhs.device != device or lhs.attribute != attribute:
            continue
        if isinstance(rhs, Const) and isinstance(rhs.value, (int, float)):
            if not isinstance(rhs.value, bool):
                constants.add(float(rhs.value))
        elif isinstance(rhs, UserInput):
            users.add(rhs.handle)
    return constants, users
