"""Symbolic value domain for Soteria's analyses.

Every expression in a handler body evaluates to one of these values.  The
paper labels predicate components with their *source* — "device-state",
"developer-defined", "user-defined", or "state-variable" (Sec. 4.2.2); here
the source falls out of the value's type via :func:`source_label`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SymValue:
    """Base class for symbolic values."""

    def key(self) -> str:
        """Stable canonical text, used to group atoms in the feasibility
        checker and to render transition-guard labels."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(SymValue):
    """A compile-time constant (developer-defined)."""

    value: object

    def key(self) -> str:
        return f"const:{self.value!r}"


@dataclass(frozen=True)
class UserInput(SymValue):
    """The value of an install-time user input (``input "thrshld", "number"``)."""

    handle: str

    def key(self) -> str:
        return f"user:{self.handle}"


@dataclass(frozen=True)
class DeviceRead(SymValue):
    """A device attribute read: ``dev.currentValue("power")`` and friends."""

    device: str
    attribute: str

    def key(self) -> str:
        return f"device:{self.device}.{self.attribute}"


@dataclass(frozen=True)
class StateVar(SymValue):
    """A persistent state-object field: ``state.counter`` (field-sensitive)."""

    name: str  # e.g. "state.counter" / "atomicState.mode"

    def key(self) -> str:
        return f"state:{self.name}"


@dataclass(frozen=True)
class EventValue(SymValue):
    """``evt.value`` — the value carried by the triggering event."""

    def key(self) -> str:
        return "event:value"


@dataclass(frozen=True)
class EventAttr(SymValue):
    """Opaque event metadata: ``evt.displayName``, ``evt.date``, ..."""

    name: str

    def key(self) -> str:
        return f"event:{self.name}"


@dataclass(frozen=True)
class Arith(SymValue):
    """Arithmetic over symbolic values (``y + 10``)."""

    op: str
    left: SymValue
    right: SymValue

    def key(self) -> str:
        return f"({self.left.key()} {self.op} {self.right.key()})"


@dataclass(frozen=True)
class Unknown(SymValue):
    """A value the analysis cannot track (platform call, missing var...)."""

    tag: str = ""

    def key(self) -> str:
        return f"unknown:{self.tag}"


def source_label(value: SymValue) -> str:
    """The paper's predicate-source label for a symbolic value."""
    if isinstance(value, Const):
        return "developer-defined"
    if isinstance(value, UserInput):
        return "user-defined"
    if isinstance(value, DeviceRead):
        return "device-state"
    if isinstance(value, StateVar):
        return "state-variable"
    if isinstance(value, (EventValue, EventAttr)):
        return "event"
    if isinstance(value, Arith):
        left = source_label(value.left)
        right = source_label(value.right)
        if left == right:
            return left
        non_dev = [s for s in (left, right) if s != "developer-defined"]
        return non_dev[0] if non_dev else "developer-defined"
    return "unknown"


def fold_arith(op: str, left: SymValue, right: SymValue) -> SymValue:
    """Constant-fold arithmetic when both sides are numeric constants."""
    if (
        isinstance(left, Const)
        and isinstance(right, Const)
        and isinstance(left.value, (int, float))
        and isinstance(right.value, (int, float))
    ):
        lhs, rhs = left.value, right.value
        try:
            if op == "+":
                return Const(lhs + rhs)
            if op == "-":
                return Const(lhs - rhs)
            if op == "*":
                return Const(lhs * rhs)
            if op == "/":
                return Const(lhs / rhs) if rhs != 0 else Unknown("div0")
            if op == "%":
                return Const(lhs % rhs) if rhs != 0 else Unknown("mod0")
            if op == "**":
                return Const(lhs**rhs)
        except (OverflowError, ValueError):
            return Unknown("overflow")
    if isinstance(left, Const) and isinstance(right, Const):
        if op == "+" and isinstance(left.value, str):
            return Const(f"{left.value}{right.value}")
    return Arith(op=op, left=left, right=right)
