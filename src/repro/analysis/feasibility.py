"""Path-condition feasibility: the paper's "simple custom checker".

Soteria Sec. 4.2.1: *"Soteria does not use a general SMT solver to check
path conditions.  We found that the predicates used in IoT apps are
extremely simple in the form of comparisons between variables and constants
(such as x = c and x > c); thus, Soteria implemented its simple custom
checker for path conditions."*

The checker groups atoms by their left-hand side, intersects the numeric
interval / allowed-value constraints per group, and reports infeasibility
when any group's constraint set is empty.  Atoms whose right-hand side is
not a constant are treated conservatively as satisfiable, except for
direct contradictions on identical symbolic operands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.predicates import Atom, PathCondition, normalize_atom
from repro.analysis.values import Const, SymValue


@dataclass
class _GroupConstraints:
    """Accumulated constraints on one symbolic expression."""

    lo: float = -math.inf
    hi: float = math.inf
    lo_strict: bool = False
    hi_strict: bool = False
    required: object | None = None       # == c
    has_required: bool = False
    excluded: set[object] = field(default_factory=set)   # != c
    must_truthy: bool = False
    must_falsy: bool = False

    def add_eq(self, value: object) -> bool:
        if self.has_required and self.required != value:
            return False
        if value in self.excluded:
            return False
        self.required = value
        self.has_required = True
        return self._check_required_in_range()

    def add_neq(self, value: object) -> bool:
        if self.has_required and self.required == value:
            return False
        self.excluded.add(value)
        return self._check_pinch()

    def add_bound(self, op: str, value: float) -> bool:
        if op == "<":
            if value < self.hi or (value == self.hi and not self.hi_strict):
                self.hi, self.hi_strict = value, True
        elif op == "<=":
            if value < self.hi:
                self.hi, self.hi_strict = value, False
        elif op == ">":
            if value > self.lo or (value == self.lo and not self.lo_strict):
                self.lo, self.lo_strict = value, True
        elif op == ">=":
            if value > self.lo:
                self.lo, self.lo_strict = value, False
        if self.lo > self.hi:
            return False
        if self.lo == self.hi and (self.lo_strict or self.hi_strict):
            return False
        if not self._check_pinch():
            return False
        return self._check_required_in_range()

    def _check_pinch(self) -> bool:
        """An interval pinched to one value conflicts with excluding it."""
        if self.lo == self.hi and not self.lo_strict and not self.hi_strict:
            if any(
                isinstance(x, (int, float)) and float(x) == self.lo
                for x in self.excluded
            ):
                return False
        return True

    def _check_required_in_range(self) -> bool:
        if not self.has_required or not isinstance(self.required, (int, float)):
            return True
        value = float(self.required)
        if value < self.lo or (value == self.lo and self.lo_strict):
            return False
        if value > self.hi or (value == self.hi and self.hi_strict):
            return False
        return True

    def add_truthy(self) -> bool:
        self.must_truthy = True
        if self.has_required and not self.required:
            return False
        return not self.must_falsy

    def add_falsy(self) -> bool:
        self.must_falsy = True
        if self.has_required and self.required:
            return False
        return not self.must_truthy


def is_feasible(condition: PathCondition) -> bool:
    """Can all atoms of ``condition`` hold simultaneously?

    Sound for the constant-comparison fragment; conservative (returns True)
    for anything richer.
    """
    groups: dict[str, _GroupConstraints] = {}
    symbolic_eq: dict[tuple[str, str], str] = {}  # (lhs, rhs) -> op seen

    for raw in condition:
        atom = normalize_atom(raw)
        key = atom.lhs.key()
        group = groups.setdefault(key, _GroupConstraints())

        if atom.op == "truthy":
            if not group.add_truthy():
                return False
            continue
        if atom.op == "falsy":
            if not group.add_falsy():
                return False
            continue

        if isinstance(atom.rhs, Const):
            value = atom.rhs.value
            if atom.op == "==":
                if not group.add_eq(value):
                    return False
            elif atom.op == "!=":
                if not group.add_neq(value):
                    return False
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                if not group.add_bound(atom.op, float(value)):
                    return False
            # Ordered comparisons against non-numeric constants: conservative.
            continue

        # Symbolic rhs: detect direct contradictions on the same pair.
        # Canonicalise operand order so "a < b" and "b > a" agree.
        left_key, right_key = atom.lhs.key(), atom.rhs.key()
        op = atom.op
        if left_key > right_key:
            left_key, right_key = right_key, left_key
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        if left_key == right_key:
            # x op x: reflexive contradiction for <, >, !=
            if op in ("<", ">", "!="):
                return False
            continue
        pair = (left_key, right_key)
        seen = symbolic_eq.get(pair)
        if seen is not None and _contradicts(seen, op):
            return False
        symbolic_eq[pair] = op

    return True


_CONTRADICTORY = {
    ("==", "!="),
    ("!=", "=="),
    ("<", ">"),
    (">", "<"),
    ("<", ">="),
    (">=", "<"),
    ("<=", ">"),
    (">", "<="),
    ("<", "=="),
    ("==", "<"),
    (">", "=="),
    ("==", ">"),
}


def _contradicts(op_a: str, op_b: str) -> bool:
    return (op_a, op_b) in _CONTRADICTORY
