"""Forward path-sensitive symbolic execution (Soteria Sec. 4.2.2).

For each entry point, the executor explores all paths through the handler's
call graph, accumulating path conditions at branches, recording device
actions, and merging paths ESP-style (paths whose symbolic end states are
identical are merged, dropping the distinguishing branch condition — the
paper's anti-path-explosion measure).  Infeasible paths are pruned with the
custom path-condition checker, and calls by reflection fork to every app
method (safe over-approximation, Sec. 4.2.3).

The output is a set of :class:`PathSummary` *transition rules*: (event,
path condition, ordered device actions).  The state-model extractor expands
them into concrete labelled transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.lang import ast
from repro.analysis.feasibility import is_feasible
from repro.analysis.predicates import Atom, PathCondition, negate_atom
from repro.analysis.values import (
    Arith,
    Const,
    DeviceRead,
    EventAttr,
    EventValue,
    StateVar,
    SymValue,
    Unknown,
    UserInput,
    fold_arith,
)
from repro.ir.ir import AppIR, EntryPoint
from repro.platform.capabilities import PARAM, CapabilityDatabase, default_database

#: Platform calls that are pure logging / notification noise for the model.
_NOOP_CALLS = {
    "log",
    "unsubscribe",
    "unschedule",
    "pause",
    "now",
    "getSunriseAndSunset",
    "timeToday",
    "timeOfDayIsBetween",
}

_SEND_CALLS = {
    "sendSms",
    "sendSmsMessage",
    "sendPush",
    "sendPushMessage",
    "sendNotification",
    "sendNotificationToContacts",
    "sendNotificationEvent",
    "httpPost",
    "httpPostJson",
}

#: Methods reflective calls never target (platform lifecycle).
_LIFECYCLE = {"installed", "updated", "initialize", "uninstalled"}

#: evt.* properties that carry the event value (possibly converted).
_EVENT_VALUE_PROPS = {
    "value",
    "doubleValue",
    "floatValue",
    "integerValue",
    "longValue",
    "numberValue",
    "numericValue",
    "stringValue",
}

#: Pass-through conversions: ``x.integerValue``, ``x.toInteger()`` ...
_CONVERSIONS = {
    "toInteger",
    "toDouble",
    "toFloat",
    "toString",
    "integerValue",
    "doubleValue",
    "floatValue",
    "value",
    "trim",
    "toLowerCase",
    "toUpperCase",
}


@dataclass(frozen=True)
class Action:
    """One attribute effect of a device action call on some path."""

    device: str
    command: str
    attribute: str | None      # None for effect-free commands (take(), beep())
    value: object              # enum value str, or SymValue for numeric writes
    line: int = 0
    via_reflection: bool = False

    def render(self) -> str:
        if self.attribute is None:
            return f"{self.device}.{self.command}()"
        value = self.value.key() if isinstance(self.value, SymValue) else self.value
        return f"{self.device}.{self.attribute}={value}"


@dataclass(frozen=True)
class PathSummary:
    """A transition rule: when ``entry.event`` fires and ``condition``
    holds, the handler performs ``actions`` in order."""

    entry: EntryPoint
    condition: PathCondition
    actions: tuple[Action, ...]
    state_writes: tuple[tuple[str, str], ...] = ()
    sends: tuple[str, ...] = ()
    uses_reflection: bool = False

    def writes(self) -> list[Action]:
        return [a for a in self.actions if a.attribute is not None]


@dataclass
class _Ctx:
    """Mutable execution context for one explored path."""

    env: dict[str, SymValue] = field(default_factory=dict)
    condition: list[Atom] = field(default_factory=list)
    actions: list[Action] = field(default_factory=list)
    state_writes: dict[str, SymValue] = field(default_factory=dict)
    sends: list[str] = field(default_factory=list)
    returned: bool = False
    return_value: SymValue = field(default_factory=lambda: Const(None))
    reflection_depth: int = 0
    uses_reflection: bool = False

    def clone(self) -> "_Ctx":
        twin = _Ctx(
            env=dict(self.env),
            condition=list(self.condition),
            actions=list(self.actions),
            state_writes=dict(self.state_writes),
            sends=list(self.sends),
            returned=self.returned,
            return_value=self.return_value,
            reflection_depth=self.reflection_depth,
            uses_reflection=self.uses_reflection,
        )
        return twin

    def effect_key(self) -> tuple:
        """Symbolic end state, used for ESP-style merging."""
        return (
            tuple(sorted((k, v.key()) for k, v in self.env.items())),
            tuple(self.actions),
            tuple(sorted((k, v.key()) for k, v in self.state_writes.items())),
            self.returned,
            self.return_value.key(),
        )


class SymbolicExecutor:
    """Path-sensitive executor over one app's IR."""

    def __init__(
        self,
        ir: AppIR,
        db: CapabilityDatabase | None = None,
        max_paths: int = 256,
        call_depth: int = 4,
        merge_paths: bool = True,
        prune_infeasible: bool = True,
        refine_reflection: bool = True,
    ) -> None:
        self.ir = ir
        self.db = db or default_database()
        self.max_paths = max_paths
        self.call_depth = call_depth
        self.merge_paths = merge_paths
        self.prune_infeasible = prune_infeasible
        #: Sec. 7 extension: resolve reflective call targets by string
        #: analysis when the name is a path constant.
        self.refine_reflection = refine_reflection
        self.truncated = False
        #: Every atom ever forked on, per entry point — kept even when ESP
        #: merging later drops the branch condition, because property
        #: abstraction still needs the comparison cut points (an app that
        #: merely *logs* per threshold still partitions the domain).
        self.observed_atoms: list[tuple[EntryPoint, Atom]] = []
        self._current_entry: EntryPoint | None = None

    # ==================================================================
    # Public API
    # ==================================================================
    def run_entry(self, entry: EntryPoint) -> list[PathSummary]:
        """Execute the handler of ``entry`` and return its transition rules."""
        method = self.ir.method(entry.handler)
        if method is None or method.body is None:
            return []
        self._current_entry = entry
        ctx = _Ctx()
        for param in method.params:
            ctx.env[param.name] = EventAttr("event-object")
        contexts = self._exec_block(method.body, [ctx], depth=0)
        summaries: list[PathSummary] = []
        seen: set[tuple] = set()
        for done in contexts:
            summary = PathSummary(
                entry=entry,
                condition=tuple(done.condition),
                actions=tuple(done.actions),
                state_writes=tuple(
                    sorted((k, v.key()) for k, v in done.state_writes.items())
                ),
                sends=tuple(done.sends),
                uses_reflection=done.uses_reflection,
            )
            key = (summary.condition, summary.actions, summary.state_writes)
            if key not in seen:
                seen.add(key)
                summaries.append(summary)
        return summaries

    def run_all(self) -> dict[EntryPoint, list[PathSummary]]:
        return {entry: self.run_entry(entry) for entry in self.ir.entry_points}

    # ==================================================================
    # Statements
    # ==================================================================
    def _exec_block(
        self, block: ast.Block | None, contexts: list[_Ctx], depth: int
    ) -> list[_Ctx]:
        if block is None:
            return contexts
        for stmt in block.statements:
            next_contexts: list[_Ctx] = []
            for ctx in contexts:
                if ctx.returned:
                    next_contexts.append(ctx)
                else:
                    next_contexts.extend(self._exec_stmt(stmt, ctx, depth))
            contexts = self._merge(next_contexts)
            if len(contexts) > self.max_paths:
                contexts = contexts[: self.max_paths]
                self.truncated = True
        return contexts

    def _exec_stmt(self, stmt: ast.Stmt, ctx: _Ctx, depth: int) -> list[_Ctx]:
        if isinstance(stmt, ast.Assign):
            return self._exec_assign(stmt, ctx, depth)
        if isinstance(stmt, ast.ExprStmt):
            if stmt.expr is None:
                return [ctx]
            return [c for _v, c in self._eval(stmt.expr, ctx, depth)]
        if isinstance(stmt, ast.IfStmt):
            return self._exec_if(stmt, ctx, depth)
        if isinstance(stmt, ast.WhileStmt):
            true_ctxs, false_ctxs = self._branch(stmt.cond, ctx, depth)
            results = list(false_ctxs)
            for body_ctx in true_ctxs:
                results.extend(self._exec_block(stmt.body, [body_ctx], depth))
            return results
        if isinstance(stmt, ast.ForInStmt):
            skip = ctx.clone()
            once = ctx
            once.env[stmt.var] = Unknown("loop-item")
            results = [skip]
            results.extend(self._exec_block(stmt.body, [once], depth))
            return results
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                ctx.returned = True
                return [ctx]
            results = []
            for value, out in self._eval(stmt.value, ctx, depth):
                out.return_value = value
                out.returned = True
                results.append(out)
            return results
        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            ctx.returned = False
            return [ctx]
        return [ctx]

    def _exec_assign(self, stmt: ast.Assign, ctx: _Ctx, depth: int) -> list[_Ctx]:
        results: list[_Ctx] = []
        value_expr = stmt.value
        if value_expr is None:
            evaluated = [(Const(None), ctx)]
        else:
            evaluated = self._eval(value_expr, ctx, depth)
        for value, out in evaluated:
            target = stmt.target
            if stmt.op in ("+=", "-="):
                current = self._read_target(target, out)
                value = fold_arith(stmt.op[0], current, value)
            if isinstance(target, ast.Name):
                out.env[target.id] = value
            elif isinstance(target, ast.PropertyAccess) and isinstance(
                target.obj, ast.Name
            ):
                owner = target.obj.id
                if owner in ("state", "atomicState"):
                    key = f"{owner}.{target.name}"
                    out.env[key] = value
                    out.state_writes[key] = value
                elif owner == "location" and target.name == "mode":
                    out.actions.append(
                        Action(
                            device="location",
                            command="setMode",
                            attribute="mode",
                            value=_value_or_sym(value),
                            line=stmt.line,
                            via_reflection=out.reflection_depth > 0,
                        )
                    )
                    if out.reflection_depth > 0:
                        out.uses_reflection = True
            results.append(out)
        return results

    def _read_target(self, target: ast.Expr | None, ctx: _Ctx) -> SymValue:
        if isinstance(target, ast.Name):
            return ctx.env.get(target.id, Unknown(target.id))
        if isinstance(target, ast.PropertyAccess) and isinstance(
            target.obj, ast.Name
        ):
            if target.obj.id in ("state", "atomicState"):
                key = f"{target.obj.id}.{target.name}"
                return ctx.env.get(key, StateVar(key))
        return Unknown("target")

    def _exec_if(self, stmt: ast.IfStmt, ctx: _Ctx, depth: int) -> list[_Ctx]:
        true_ctxs, false_ctxs = self._branch(stmt.cond, ctx, depth)
        results: list[_Ctx] = []
        for true_ctx in true_ctxs:
            results.extend(self._exec_block(stmt.then, [true_ctx], depth))
        for false_ctx in false_ctxs:
            if stmt.otherwise is None:
                results.append(false_ctx)
            elif isinstance(stmt.otherwise, ast.IfStmt):
                results.extend(self._exec_stmt(stmt.otherwise, false_ctx, depth))
            else:
                results.extend(self._exec_block(stmt.otherwise, [false_ctx], depth))
        return self._merge(results)

    # ==================================================================
    # ESP-style merging
    # ==================================================================
    def _merge(self, contexts: list[_Ctx]) -> list[_Ctx]:
        """Merge contexts with identical symbolic end states (ESP).

        The merged path keeps only the atoms common to all merged paths —
        the distinguishing branch conditions vanish, exactly as in the
        paper: "if the end states for the true and false branches are the
        same, then the two paths are merged."
        """
        if not self.merge_paths or len(contexts) <= 1:
            return contexts
        grouped: dict[tuple, _Ctx] = {}
        order: list[tuple] = []
        for ctx in contexts:
            key = ctx.effect_key()
            if key in grouped:
                kept = grouped[key]
                common = [a for a in kept.condition if a in ctx.condition]
                kept.condition = common
                kept.uses_reflection = kept.uses_reflection or ctx.uses_reflection
            else:
                grouped[key] = ctx
                order.append(key)
        return [grouped[key] for key in order]

    # ==================================================================
    # Branch conditions
    # ==================================================================
    def _branch(
        self, cond: ast.Expr | None, ctx: _Ctx, depth: int
    ) -> tuple[list[_Ctx], list[_Ctx]]:
        """Split ``ctx`` into true-contexts and false-contexts for ``cond``."""
        if cond is None:
            return [ctx], []
        if isinstance(cond, ast.UnaryOp) and cond.op == "!":
            false_side, true_side = self._branch(cond.operand, ctx, depth)
            return true_side, false_side
        if isinstance(cond, ast.BinaryOp) and cond.op == "&&":
            left_true, left_false = self._branch(cond.left, ctx, depth)
            true_out: list[_Ctx] = []
            false_out = left_false
            for sub in left_true:
                sub_true, sub_false = self._branch(cond.right, sub, depth)
                true_out.extend(sub_true)
                false_out.extend(sub_false)
            return true_out, false_out
        if isinstance(cond, ast.BinaryOp) and cond.op == "||":
            left_true, left_false = self._branch(cond.left, ctx, depth)
            true_out = left_true
            false_out: list[_Ctx] = []
            for sub in left_false:
                sub_true, sub_false = self._branch(cond.right, sub, depth)
                true_out.extend(sub_true)
                false_out.extend(sub_false)
            return true_out, false_out
        if isinstance(cond, ast.BinaryOp) and cond.op in (
            "==",
            "!=",
            "<",
            ">",
            "<=",
            ">=",
        ):
            true_out, false_out = [], []
            for lhs, ctx1 in self._eval(cond.left, ctx, depth):
                for rhs, ctx2 in self._eval(cond.right, ctx1, depth):
                    self._apply_comparison(
                        lhs, cond.op, rhs, ctx2, true_out, false_out
                    )
            return true_out, false_out
        # Generic truthiness.
        true_out, false_out = [], []
        for value, out in self._eval(cond, ctx, depth):
            if isinstance(value, Const):
                (true_out if value.value else false_out).append(out)
                continue
            self._fork_atom(
                out, Atom(lhs=value, op="truthy"), true_out, false_out
            )
        return true_out, false_out

    def _apply_comparison(
        self,
        lhs: SymValue,
        op: str,
        rhs: SymValue,
        ctx: _Ctx,
        true_out: list[_Ctx],
        false_out: list[_Ctx],
    ) -> None:
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            outcome = _compare_consts(lhs.value, op, rhs.value)
            if outcome is not None:
                (true_out if outcome else false_out).append(ctx)
                return
        self._fork_atom(ctx, Atom(lhs=lhs, op=op, rhs=rhs), true_out, false_out)

    def _fork_atom(
        self, ctx: _Ctx, atom: Atom, true_out: list[_Ctx], false_out: list[_Ctx]
    ) -> None:
        if self._current_entry is not None:
            self.observed_atoms.append((self._current_entry, atom))
        false_ctx = ctx.clone()
        ctx.condition.append(atom)
        false_ctx.condition.append(negate_atom(atom))
        if not self.prune_infeasible or is_feasible(tuple(ctx.condition)):
            true_out.append(ctx)
        if not self.prune_infeasible or is_feasible(tuple(false_ctx.condition)):
            false_out.append(false_ctx)

    # ==================================================================
    # Expressions
    # ==================================================================
    def _eval(
        self, expr: ast.Expr | None, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        if expr is None:
            return [(Const(None), ctx)]
        if isinstance(expr, ast.Literal):
            return [(Const(expr.value), ctx)]
        if isinstance(expr, ast.Name):
            return [(self._eval_name(expr.id, ctx), ctx)]
        if isinstance(expr, ast.GString):
            return self._eval_gstring(expr, ctx, depth)
        if isinstance(expr, ast.PropertyAccess):
            return self._eval_property(expr, ctx, depth)
        if isinstance(expr, ast.MethodCall):
            return self._eval_call(expr, ctx, depth)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, ctx, depth)
        if isinstance(expr, ast.UnaryOp):
            results = []
            for value, out in self._eval(expr.operand, ctx, depth):
                if expr.op == "!" and isinstance(value, Const):
                    results.append((Const(not value.value), out))
                elif (
                    expr.op == "-"
                    and isinstance(value, Const)
                    and isinstance(value.value, (int, float))
                ):
                    results.append((Const(-value.value), out))
                else:
                    results.append((Unknown(f"unary{expr.op}"), out))
            return results
        if isinstance(expr, ast.Ternary):
            true_ctxs, false_ctxs = self._branch(expr.cond, ctx, depth)
            results = []
            for out in true_ctxs:
                results.extend(self._eval(expr.then, out, depth))
            for out in false_ctxs:
                results.extend(self._eval(expr.otherwise, out, depth))
            return results
        if isinstance(expr, ast.Elvis):
            results = []
            for value, out in self._eval(expr.value, ctx, depth):
                if isinstance(value, Const) and not value.value:
                    results.extend(self._eval(expr.default, out, depth))
                else:
                    results.append((value, out))
            return results
        if isinstance(expr, ast.CastExpr):
            return self._eval(expr.value, ctx, depth)
        if isinstance(expr, ast.Index):
            return [(Unknown("index"), ctx)]
        if isinstance(expr, (ast.ListLiteral, ast.MapLiteral, ast.RangeLiteral)):
            return [(Unknown("collection"), ctx)]
        if isinstance(expr, ast.NewExpr):
            return [(Unknown(f"new-{expr.type_name}"), ctx)]
        if isinstance(expr, ast.ClosureExpr):
            return [(Unknown("closure"), ctx)]
        return [(Unknown(type(expr).__name__), ctx)]

    def _eval_name(self, name: str, ctx: _Ctx) -> SymValue:
        if name in ctx.env:
            return ctx.env[name]
        if self.ir.user_input(name) is not None:
            return UserInput(name)
        if self.ir.device(name) is not None:
            return Unknown(f"device:{name}")
        if name == "location":
            return Unknown("location")
        return Unknown(name)

    def _eval_gstring(
        self, expr: ast.GString, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        static = expr.static_text()
        if static is not None:
            return [(Const(static), ctx)]
        # Single-hole GStrings of a known constant fold to that text.
        contexts = [(ctx, [])]  # (ctx, parts)
        for part in expr.parts:
            next_contexts = []
            if isinstance(part, str):
                for out, parts in contexts:
                    next_contexts.append((out, parts + [Const(part)]))
            else:
                for out, parts in contexts:
                    for value, out2 in self._eval(part, out, depth):
                        next_contexts.append((out2, parts + [value]))
            contexts = next_contexts
        results: list[tuple[SymValue, _Ctx]] = []
        for out, parts in contexts:
            if all(isinstance(p, Const) for p in parts):
                text = "".join(str(p.value) for p in parts)  # type: ignore[union-attr]
                results.append((Const(text), out))
            else:
                results.append((Unknown("gstring"), out))
        return results

    def _eval_property(
        self, expr: ast.PropertyAccess, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        obj = expr.obj
        name = expr.name
        if isinstance(obj, ast.Name):
            owner = obj.id
            if ctx.env.get(owner) is not None and isinstance(
                ctx.env[owner], EventAttr
            ):
                # Handler parameter: the event object.
                if name in _EVENT_VALUE_PROPS:
                    return [(EventValue(), ctx)]
                return [(EventAttr(name), ctx)]
            if owner == "evt":
                if name in _EVENT_VALUE_PROPS:
                    return [(EventValue(), ctx)]
                return [(EventAttr(name), ctx)]
            if owner in ("state", "atomicState"):
                key = f"{owner}.{name}"
                return [(ctx.env.get(key, StateVar(key)), ctx)]
            if owner == "location":
                if name in ("mode", "currentMode"):
                    return [(DeviceRead("location", "mode"), ctx)]
                return [(Unknown(f"location.{name}"), ctx)]
            if owner == "settings":
                if self.ir.user_input(name) is not None:
                    return [(UserInput(name), ctx)]
                return [(Unknown(f"settings.{name}"), ctx)]
            perm = self.ir.device(owner)
            if perm is not None:
                attribute = self._current_attribute(perm.capability, name)
                if attribute is not None:
                    return [(DeviceRead(owner, attribute), ctx)]
                return [(Unknown(f"{owner}.{name}"), ctx)]
        # Conversion properties pass the underlying value through.
        results: list[tuple[SymValue, _Ctx]] = []
        if obj is not None:
            for value, out in self._eval(obj, ctx, depth):
                if name in _CONVERSIONS:
                    results.append((value, out))
                elif isinstance(value, (EventValue, EventAttr)):
                    if name in _EVENT_VALUE_PROPS:
                        results.append((EventValue(), out))
                    else:
                        results.append((EventAttr(name), out))
                else:
                    results.append((Unknown(f".{name}"), out))
            return results
        return [(Unknown(name), ctx)]

    def _current_attribute(self, capability: str, prop: str) -> str | None:
        """``currentTemperature`` -> ``temperature`` etc."""
        if prop.startswith("current") and len(prop) > len("current"):
            attr = prop[len("current") :]
            attr = attr[0].lower() + attr[1:]
            cap = self.db.get(capability)
            if cap is not None and attr in cap.attributes:
                return attr
            if self.db.attribute_anywhere(attr) is not None:
                return attr
        if prop.startswith("latest") and len(prop) > len("latest"):
            attr = prop[len("latest") :]
            attr = attr[0].lower() + attr[1:]
            if self.db.attribute_anywhere(attr) is not None:
                return attr
        cap = self.db.get(capability)
        if cap is not None and prop in cap.attributes:
            return prop
        return None

    def _eval_binary(
        self, expr: ast.BinaryOp, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        if expr.op in ("&&", "||"):
            true_ctxs, false_ctxs = self._branch(expr, ctx, depth)
            results: list[tuple[SymValue, _Ctx]] = []
            results.extend((Const(True), out) for out in true_ctxs)
            results.extend((Const(False), out) for out in false_ctxs)
            return results
        results = []
        for lhs, ctx1 in self._eval(expr.left, ctx, depth):
            for rhs, ctx2 in self._eval(expr.right, ctx1, depth):
                if expr.op in ("+", "-", "*", "/", "%", "**"):
                    results.append((fold_arith(expr.op, lhs, rhs), ctx2))
                elif expr.op in ("==", "!=", "<", ">", "<=", ">="):
                    if isinstance(lhs, Const) and isinstance(rhs, Const):
                        outcome = _compare_consts(lhs.value, expr.op, rhs.value)
                        if outcome is not None:
                            results.append((Const(outcome), ctx2))
                            continue
                    results.append((Unknown("comparison"), ctx2))
                else:
                    results.append((Unknown(expr.op), ctx2))
        return results

    # ==================================================================
    # Calls
    # ==================================================================
    def _eval_call(
        self, call: ast.MethodCall, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        # Reflective call: "$name"(...)
        if call.is_reflective():
            return self._eval_reflective(call, ctx, depth)

        name = call.name
        assert isinstance(name, str)

        if call.receiver is None:
            return self._eval_bare_call(call, name, ctx, depth)

        # Receiver calls -------------------------------------------------
        if isinstance(call.receiver, ast.Name):
            owner = call.receiver.id
            perm = self.ir.device(owner)
            if perm is not None:
                return self._eval_device_call(call, owner, perm.capability, ctx, depth)
            if owner == "location":
                if name in ("setMode", "mode"):
                    return self._record_mode_set(call, ctx, depth)
                return [(Unknown(f"location.{name}"), ctx)]
            if owner == "log":
                # Evaluate args for side effects in GStrings only; ignore.
                return [(Const(None), ctx)]
        # Conversions / unknown receiver methods.
        results: list[tuple[SymValue, _Ctx]] = []
        receiver_vals = (
            self._eval(call.receiver, ctx, depth)
            if call.receiver is not None
            else [(Unknown("none"), ctx)]
        )
        for value, out in receiver_vals:
            if name in _CONVERSIONS:
                results.append((value, out))
            else:
                out2_list = [(Unknown(f".{name}()"), out)]
                # Execute trailing closures (Groovy iteration helpers).
                if call.closure is not None:
                    out2_list = self._exec_closure(call.closure, out, depth)
                results.extend(out2_list)
        return results

    def _eval_bare_call(
        self, call: ast.MethodCall, name: str, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        # App-defined method: inline.
        if name in self.ir.methods():
            if depth >= self.call_depth:
                return [(Unknown(f"deep-call:{name}"), ctx)]
            return self._inline_call(call, name, ctx, depth)
        if name == "setLocationMode" or name == "sendLocationEvent":
            return self._record_mode_set(call, ctx, depth)
        if name in _SEND_CALLS:
            ctx.sends.append(name)
            return [(Const(None), ctx)]
        if name in _NOOP_CALLS:
            return [(Unknown(name), ctx)]
        if name in ("runIn", "runOnce", "schedule") or name.startswith("runEvery"):
            # Scheduling from a handler: the timer entry point is recorded
            # by the IR builder; the call itself has no immediate effect.
            return [(Const(None), ctx)]
        if call.closure is not None:
            # httpGet("...") { resp -> ... } and friends: run the closure
            # with opaque parameters (the response is runtime data).
            contexts = self._exec_closure(call.closure, ctx, depth)
            return contexts
        return [(Unknown(name), ctx)]

    def _exec_closure(
        self, closure: ast.ClosureExpr, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        for param in closure.params or ["it"]:
            ctx.env[param] = Unknown(f"closure:{param}")
        outs = self._exec_block(closure.body, [ctx], depth)
        for out in outs:
            out.returned = False
        return [(Unknown("closure-result"), out) for out in outs]

    def _inline_call(
        self, call: ast.MethodCall, name: str, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        decl = self.ir.methods()[name]
        # Evaluate arguments in the caller's scope.
        arg_sets: list[tuple[list[SymValue], _Ctx]] = [([], ctx)]
        for arg in call.args:
            next_sets = []
            for values, out in arg_sets:
                for value, out2 in self._eval(arg, out, depth):
                    next_sets.append((values + [value], out2))
            arg_sets = next_sets
        results: list[tuple[SymValue, _Ctx]] = []
        for values, out in arg_sets:
            caller_env = dict(out.env)
            callee_env: dict[str, SymValue] = {
                key: value
                for key, value in out.env.items()
                if key.startswith("state.") or key.startswith("atomicState.")
            }
            for index, param in enumerate(decl.params):
                if index < len(values):
                    callee_env[param.name] = values[index]
                elif param.default is not None:
                    default_vals = self._eval(param.default, out, depth)
                    callee_env[param.name] = default_vals[0][0]
                else:
                    callee_env[param.name] = Const(None)
            out.env = callee_env
            finished = self._exec_block(decl.body, [out], depth + 1)
            for done in finished:
                retval = done.return_value if done.returned else Const(None)
                restored = dict(caller_env)
                for key, value in done.env.items():
                    if key.startswith("state.") or key.startswith("atomicState."):
                        restored[key] = value
                done.env = restored
                done.returned = False
                done.return_value = Const(None)
                results.append((retval, done))
        return results

    def _eval_reflective(
        self, call: ast.MethodCall, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        """``"$name"()``: resolve the name by string analysis when possible,
        otherwise over-approximate to every app method.

        String refinement is the paper's Sec. 7 future work: when the
        GString's holes evaluate to compile-time constants on this path
        (``def m = "foo"; "$m"()``), the call targets exactly that method —
        no over-approximation, no false-positive risk.  Values from state
        objects or HTTP responses stay unknown and fall back to the safe
        fan-out (which is what produces MalIoT App5's false positive).
        """
        if depth >= self.call_depth:
            ctx.uses_reflection = True
            return [(Unknown("deep-reflective"), ctx)]
        results: list[tuple[SymValue, _Ctx]] = []
        name_expr = call.name
        resolved: list[tuple[str | None, _Ctx]] = []
        if self.refine_reflection and isinstance(name_expr, ast.GString):
            for value, out in self._eval(name_expr, ctx, depth):
                if isinstance(value, Const) and isinstance(value.value, str):
                    resolved.append((value.value, out))
                else:
                    resolved.append((None, out))
        else:
            resolved.append((None, ctx))

        for name, out in resolved:
            if name is not None and name in self.ir.methods():
                # Statically-known target: a plain direct call.
                direct = ast.MethodCall(
                    receiver=None, name=name, args=call.args, line=call.line
                )
                results.extend(self._inline_call(direct, name, out, depth))
                continue
            if name is not None:
                # Known name, but no such method: the call fails at runtime.
                results.append((Unknown(f"no-such-method:{name}"), out))
                continue
            results.extend(self._fan_out_reflective(call, out, depth))
        return results

    def _fan_out_reflective(
        self, call: ast.MethodCall, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        """Safe over-approximation: every non-lifecycle method is a target."""
        ctx.uses_reflection = True
        results: list[tuple[SymValue, _Ctx]] = []
        targets = [name for name in self.ir.methods() if name not in _LIFECYCLE]
        if not targets:
            return [(Unknown("reflective"), ctx)]
        for target in targets:
            branch_ctx = ctx.clone()
            branch_ctx.reflection_depth += 1
            fake_call = ast.MethodCall(
                receiver=None, name=target, args=call.args, line=call.line
            )
            for value, out in self._inline_call(fake_call, target, branch_ctx, depth):
                out.reflection_depth -= 1
                results.append((value, out))
        return results

    def _record_mode_set(
        self, call: ast.MethodCall, ctx: _Ctx, depth: int
    ) -> list[tuple[SymValue, _Ctx]]:
        results: list[tuple[SymValue, _Ctx]] = []
        arg = call.args[0] if call.args else None
        evaluated = (
            self._eval(arg, ctx, depth) if arg is not None else [(Unknown("mode"), ctx)]
        )
        for value, out in evaluated:
            out.actions.append(
                Action(
                    device="location",
                    command="setMode",
                    attribute="mode",
                    value=_value_or_sym(value),
                    line=call.line,
                    via_reflection=out.reflection_depth > 0,
                )
            )
            if out.reflection_depth > 0:
                out.uses_reflection = True
            results.append((Const(None), out))
        return results

    def _eval_device_call(
        self,
        call: ast.MethodCall,
        device: str,
        capability: str,
        ctx: _Ctx,
        depth: int,
    ) -> list[tuple[SymValue, _Ctx]]:
        name = call.name
        assert isinstance(name, str)
        # Attribute reads.
        if name in ("currentValue", "latestValue", "currentState", "latestState"):
            if call.args:
                results = []
                for value, out in self._eval(call.args[0], ctx, depth):
                    if isinstance(value, Const) and isinstance(value.value, str):
                        results.append((DeviceRead(device, value.value), out))
                    else:
                        results.append((Unknown("dynamic-read"), out))
                return results
            return [(Unknown("read"), ctx)]
        # Commands from the capability reference.
        command = self.db.command(capability, name)
        if command is not None:
            return self._record_command(call, device, command, ctx, depth)
        # Unknown device method (eventsSince etc.).
        return [(Unknown(f"{device}.{name}()"), ctx)]

    def _record_command(self, call, device, command, ctx: _Ctx, depth: int):
        contexts: list[tuple[SymValue | None, _Ctx]] = [(None, ctx)]
        if any(effect is PARAM for _a, effect in command.sets) and call.args:
            contexts = [
                (value, out) for value, out in self._eval(call.args[0], ctx, depth)
            ]
        results: list[tuple[SymValue, _Ctx]] = []
        for arg_value, out in contexts:
            reflective = out.reflection_depth > 0
            if reflective:
                out.uses_reflection = True
            if not command.sets:
                out.actions.append(
                    Action(
                        device=device,
                        command=command.name,
                        attribute=None,
                        value=None,
                        line=call.line,
                        via_reflection=reflective,
                    )
                )
            for attribute, effect in command.sets:
                if effect is PARAM:
                    value: object = (
                        _value_or_sym(arg_value)
                        if arg_value is not None
                        else Unknown("arg")
                    )
                else:
                    value = effect
                out.actions.append(
                    Action(
                        device=device,
                        command=command.name,
                        attribute=attribute,
                        value=value,
                        line=call.line,
                        via_reflection=reflective,
                    )
                )
            results.append((Const(None), out))
        return results


def _value_or_sym(value: SymValue) -> object:
    """Concrete string for constant writes, the SymValue otherwise."""
    if isinstance(value, Const) and isinstance(value.value, str):
        return value.value
    return value


def _compare_consts(lhs: object, op: str, rhs: object) -> bool | None:
    try:
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if not isinstance(lhs, (int, float)) or not isinstance(rhs, (int, float)):
            return None
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
    except TypeError:
        return None
    return None
