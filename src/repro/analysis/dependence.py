"""Algorithm 1: backward dependence for property abstraction.

Faithful implementation of the paper's worklist algorithm (Sec. 4.2.1):

    Input:  ICFG, a numerical-valued attribute
    Output: dependence relation ``dep``

    worklist <- {(n: id) | id is used in a device-action call that sets
                 the attribute at node n}
    while worklist not empty:
        (n: id) <- pop
        for each def of (n: id) at node n' of form  id = e  where e has a
        single identifier id':
            worklist += (n': id');  dep += ((n: id), (n': id'))

Definitions are found with reaching definitions on the ICFG; parameter
passing is treated as inter-procedural definitions (a call node defines the
callee's parameters).  The analysis is "a form of backward taint analysis"
producing the *sources* that can flow into a numeric attribute: developer
constants, user inputs, and device reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.ir.cfg import ICFG, ReachingDefinitions
from repro.platform.capabilities import PARAM, CapabilityDatabase, default_database
from repro.ir.ir import AppIR


@dataclass(frozen=True)
class Source:
    """A terminal source flowing into a numeric attribute write."""

    kind: str          # "constant" | "user-input" | "device-read" | "unknown"
    value: object      # the constant, input handle, or (device, attribute)
    node_id: int
    line: int


@dataclass
class DependenceResult:
    """Output of Algorithm 1 for one (device, attribute) pair."""

    device: str
    attribute: str
    #: dep relation: ((use_node, id) -> (def_node, id')) edges
    dep: list[tuple[tuple[int, str], tuple[int, str]]] = field(default_factory=list)
    sources: list[Source] = field(default_factory=list)

    def constant_values(self) -> set[object]:
        return {s.value for s in self.sources if s.kind == "constant"}

    def user_inputs(self) -> set[str]:
        return {str(s.value) for s in self.sources if s.kind == "user-input"}

    def paths_to_sources(self) -> list[list[int]]:
        """Def-use chains from initialisation points to the action call
        (the paper's example path 3 -> 2 -> 1 in Fig. 6), as node-id lists
        from source to sink."""
        children: dict[tuple[int, str], list[tuple[int, str]]] = {}
        for use, definition in self.dep:
            children.setdefault(definition, []).append(use)
        roots = {(s.node_id, "") for s in self.sources}
        paths: list[list[int]] = []
        source_nodes = {s.node_id for s in self.sources}
        sinks = {use for use, _d in self.dep}
        sinks -= {d for _u, d in self.dep}
        # Walk from each definition that is a source toward the sinks.
        def_nodes = {d for _u, d in self.dep}
        for definition in def_nodes:
            if definition[0] not in source_nodes:
                continue
            stack = [[definition]]
            while stack:
                path = stack.pop()
                nexts = children.get(path[-1], [])
                if not nexts:
                    paths.append([step[0] for step in path])
                    continue
                for nxt in nexts:
                    if nxt in path:
                        continue
                    stack.append(path + [nxt])
        del roots, sinks
        return paths


class DependenceAnalysis:
    """Runs Algorithm 1 over an app for every written numeric attribute."""

    def __init__(
        self,
        ir: AppIR,
        icfg: ICFG | None = None,
        db: CapabilityDatabase | None = None,
    ) -> None:
        self.ir = ir
        self.db = db or default_database()
        self.icfg = icfg or ICFG(ir.methods())
        self.rd = ReachingDefinitions(self.icfg)

    # ------------------------------------------------------------------
    def numeric_action_calls(self) -> list[tuple[int, str, str, ast.Expr]]:
        """(node, device-handle, attribute, arg-expr) for every device action
        call whose command writes a numeric attribute (``setLevel(x)``...)."""
        found: list[tuple[int, str, str, ast.Expr]] = []
        for node in self.icfg.nodes.values():
            root: ast.Node | None = node.stmt if node.stmt is not None else node.cond
            if root is None:
                continue
            for call in ast.find_calls(root):
                if not isinstance(call.receiver, ast.Name):
                    continue
                if not isinstance(call.name, str) or not call.args:
                    continue
                perm = self.ir.device(call.receiver.id)
                if perm is None:
                    continue
                command = self.db.command(perm.capability, call.name)
                if command is None:
                    continue
                for attr_name, effect in command.sets:
                    if effect is PARAM:
                        found.append((node.id, perm.handle, attr_name, call.args[0]))
        return found

    # ------------------------------------------------------------------
    def analyze(self, device: str, attribute: str) -> DependenceResult:
        """Run the worklist for one numeric attribute of one device."""
        result = DependenceResult(device=device, attribute=attribute)
        worklist: list[tuple[int, str]] = []
        done: set[tuple[int, str]] = set()

        for node_id, handle, attr_name, arg in self.numeric_action_calls():
            if handle != device or attr_name != attribute:
                continue
            identifiers = _identifiers(arg)
            if not identifiers:
                self._record_terminal(result, node_id, arg)
            for ident in identifiers:
                worklist.append((node_id, ident))

        while worklist:
            entry = worklist.pop()
            if entry in done:
                continue
            done.add(entry)
            node_id, ident = entry
            for def_node, rhs in self.rd.reaching(node_id, ident):
                if rhs is None:
                    continue
                rhs_resolved = self._resolve_call_rhs(rhs)
                identifiers = _identifiers(rhs_resolved)
                if len(identifiers) == 1:
                    ident2 = identifiers[0]
                    dep_edge = ((node_id, ident), (def_node, ident2))
                    if dep_edge not in result.dep:
                        result.dep.append(dep_edge)
                    if (def_node, ident2) not in done:
                        worklist.append((def_node, ident2))
                    # The identifier may itself be terminal (a user input).
                    self._maybe_identifier_source(result, def_node, ident2)
                elif not identifiers:
                    dep_edge = ((node_id, ident), (def_node, ident))
                    if dep_edge not in result.dep:
                        result.dep.append(dep_edge)
                    self._record_terminal(result, def_node, rhs_resolved)
                else:
                    # e = f(id1, id2, ...) — the paper notes IoT apps do not
                    # combine two tracked identifiers; follow all, soundly.
                    for ident2 in identifiers:
                        dep_edge = ((node_id, ident), (def_node, ident2))
                        if dep_edge not in result.dep:
                            result.dep.append(dep_edge)
                        if (def_node, ident2) not in done:
                            worklist.append((def_node, ident2))
                        self._maybe_identifier_source(result, def_node, ident2)
            # Identifiers with no reaching definition: user inputs / reads.
            if not self.rd.reaching(node_id, ident):
                self._maybe_identifier_source(result, node_id, ident, force=True)
        return result

    # ------------------------------------------------------------------
    def _resolve_call_rhs(self, rhs: ast.Expr) -> ast.Expr:
        """``x = p()`` — substitute the callee's return expression."""
        if (
            isinstance(rhs, ast.MethodCall)
            and rhs.receiver is None
            and isinstance(rhs.name, str)
            and rhs.name in self.icfg.methods
        ):
            decl = self.icfg.methods[rhs.name]
            if decl.body is None:
                return rhs
            returns = [
                stmt.value
                for stmt in ast.walk(decl.body)
                if isinstance(stmt, ast.ReturnStmt) and stmt.value is not None
            ]
            if len(returns) == 1:
                return returns[0]
        return rhs

    def _maybe_identifier_source(
        self, result: DependenceResult, node_id: int, ident: str, force: bool = False
    ) -> None:
        perm = self.ir.user_input(ident)
        if perm is not None:
            source = Source("user-input", perm.handle, node_id, 0)
            if source not in result.sources:
                result.sources.append(source)
            return
        if force and self.ir.device(ident) is None:
            source = Source("unknown", ident, node_id, 0)
            if source not in result.sources:
                result.sources.append(source)

    def _record_terminal(
        self, result: DependenceResult, node_id: int, expr: ast.Expr
    ) -> None:
        line = getattr(expr, "line", 0)
        if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)):
            source = Source("constant", expr.value, node_id, line)
        elif isinstance(expr, ast.MethodCall) and isinstance(
            expr.receiver, ast.Name
        ):
            read = _device_read(expr)
            if read is not None:
                source = Source("device-read", read, node_id, line)
            else:
                source = Source("unknown", None, node_id, line)
        else:
            source = Source("unknown", None, node_id, line)
        if source not in result.sources:
            result.sources.append(source)

    # ------------------------------------------------------------------
    def analyze_all(self) -> dict[tuple[str, str], DependenceResult]:
        """Algorithm 1 for every numeric attribute the app writes."""
        targets = {
            (handle, attr) for _n, handle, attr, _a in self.numeric_action_calls()
        }
        return {
            (handle, attr): self.analyze(handle, attr) for handle, attr in targets
        }


def _identifiers(expr: ast.Expr | None) -> list[str]:
    """Free identifiers of an expression (paper: "e has only a single
    identifier id'").

    Call receivers (device handles), event metadata (``evt.value``), and
    platform calls are *not* identifiers — they are terminal sources handled
    separately.  ``state.f``/``atomicState.f`` count as field-sensitive
    pseudo-identifiers.
    """
    if expr is None:
        return []
    names: list[str] = []

    def visit(node: ast.Node) -> None:
        if isinstance(node, ast.Name):
            names.append(node.id)
            return
        if isinstance(node, ast.PropertyAccess):
            if isinstance(node.obj, ast.Name):
                if node.obj.id in ("state", "atomicState"):
                    names.append(f"{node.obj.id}.{node.name}")
                # evt.value / device.property: not plain identifiers.
                return
            if node.obj is not None:
                visit(node.obj)
            return
        if isinstance(node, ast.MethodCall):
            for arg in node.args:
                visit(arg)
            for value in node.named_args.values():
                visit(value)
            return
        for child in ast.children(node):
            visit(child)

    visit(expr)
    seen: list[str] = []
    for name in names:
        if name not in seen:
            seen.append(name)
    return seen


def _device_read(call: ast.MethodCall) -> tuple[str, str] | None:
    if not isinstance(call.receiver, ast.Name) or not isinstance(call.name, str):
        return None
    if call.name in ("currentValue", "latestValue", "currentState") and call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Literal) and isinstance(arg.value, str):
            return (call.receiver.id, arg.value)
    return None
