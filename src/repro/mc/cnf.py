"""CNF encoding of the symbolic union transition relation (for BMC/IC3).

The SAT backend's analogue of :class:`repro.model.encoder.SymbolicUnionModel`:
the same fragment descriptors and firing tables (shared via
:func:`repro.model.encoder.enumerate_fragments` /
:func:`~repro.model.encoder.fire_requirements`) are compiled to clauses
over the encoder's attribute-block bit variables instead of BDDs — the
Kripke product is never materialized, and the transition relations of
the two symbolic backends are identical by construction.

Layout per unrolled step: one block of ``ceil(log2 |domain|)`` boolean
variables per union attribute (the value's binary code) plus one block
encoding the *incoming fragment* (which symbolic transition produced the
state; 0 = initial).  A transition step adds, per fragment, a selector
variable implying the fragment's firing requirements over step ``t``,
its writes and fragment id over step ``t+1``, and bit-equality frames
for untouched blocks.  A *stall* selector adds the totalising identity
self-loop, gated on "no fragment enabled" so it exists exactly where the
BDD encodings add their deadlock self-loops.  Each step's "some selector
fires" clause hides behind a progress literal, so one growing solver
serves every depth (and every formula) through
``Solver.solve(assumptions=...)`` — clause counts grow linearly in the
unrolled depth.

:func:`invariant_shape` classifies the catalog's ``AG`` properties into
the bad-state shapes the unroller can query: purely propositional bad
states, or one positive ``EX`` conjunct (the ``AG !(gate & EX act)``
family) — anything else falls back to the BDD checker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mc import ctl
from repro.mc.sat import Solver
from repro.model.encoder import Fragment, enumerate_fragments, fire_requirements
from repro.model.kripke import KripkeState, attr_prop
from repro.model.statemodel import StateModel


@dataclass(frozen=True)
class _Rule:
    """One fragment that can fire, with its compiled firing table."""

    fragment: Fragment
    requirements: tuple


class CnfUnionSystem:
    """The state-independent compilation: fragments, firing tables,
    variable-block shapes, and the proposition map.  Shared by every
    unroller over the same union model."""

    def __init__(
        self,
        model: StateModel,
        written: frozenset[tuple[str, str, str]] | None = None,
    ) -> None:
        # ``written`` has SymbolicUnionModel's meaning: the app-written
        # value set exempt from the fire-on-change rule (None derives the
        # multi-app cascade set; the single-app path passes frozenset()).
        self.model = model
        from repro.model.union import union_written_values

        self.written = (
            union_written_values(model.rule_origins) if written is None else written
        )
        descriptors = enumerate_fragments(model)
        self.fragments: dict[int, Fragment] = {f.fid: f for f, _s in descriptors}
        self.rules: list[_Rule] = []
        for fragment, summary in descriptors:
            requirements = fire_requirements(model, self.written, fragment, summary)
            if requirements is not None:
                self.rules.append(_Rule(fragment, tuple(requirements)))
        self.frag_bits = max(1, len(self.fragments).bit_length())
        self.block_bits = [
            max(1, (len(attr.domain) - 1).bit_length()) for attr in model.attributes
        ]
        self.domain_code = [
            {value: code for code, value in enumerate(attr.domain)}
            for attr in model.attributes
        ]
        # Proposition -> disjunction of cubes, mirroring the encoder's
        # prop map: attribute-value codes and incoming-fragment ids.
        self.prop_cubes: dict[str, list[tuple[str, int, int]]] = {}
        for index, attr in enumerate(model.attributes):
            for code, value in enumerate(attr.domain):
                name = attr_prop(attr.device, attr.attribute, value)
                self.prop_cubes.setdefault(name, []).append(("attr", index, code))
        for fragment in self.fragments.values():
            for prop in fragment.props:
                self.prop_cubes.setdefault(prop, []).append(
                    ("frag", fragment.fid, 0)
                )


class BmcUnroller:
    """Incremental unrolling of a :class:`CnfUnionSystem` into one solver.

    With ``guard_initial=False`` (BMC) the initial-state constraint
    (fragment block = 0) is asserted outright; with ``True`` (IC3) it
    rides on :attr:`init_act` so frame queries can range over arbitrary
    valid states.  Domain-validity clauses are asserted at every step in
    both modes (all reachable states are valid, and the constraint is
    independently satisfiable at unqueried depths).
    """

    def __init__(
        self,
        system: CnfUnionSystem,
        solver: Solver | None = None,
        guard_initial: bool = False,
    ) -> None:
        self.system = system
        self.solver = solver or Solver()
        #: Per step: (attribute-block bit vars, fragment-block bit vars).
        self.steps: list[tuple[list[list[int]], list[int]]] = []
        #: Per transition step, the "some selector fires" activation.
        self.progress: list[int] = []
        self._false: int | None = None
        self._cache: dict[tuple, int] = {}
        self._add_step()
        self.init_act: int | None = None
        frag0 = self.steps[0][1]
        if guard_initial:
            self.init_act = self.solver.new_var()
            for bit in frag0:
                self.solver.add_clause([-self.init_act, -bit])
        else:
            for bit in frag0:
                self.solver.add_clause([-bit])

    # -- bookkeeping ---------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self.steps) - 1

    @property
    def clause_count(self) -> int:
        return len(self.solver.clauses)

    def _add_step(self) -> None:
        blocks = [
            [self.solver.new_var() for _ in range(bits)]
            for bits in self.system.block_bits
        ]
        frag = [self.solver.new_var() for _ in range(self.system.frag_bits)]
        self.steps.append((blocks, frag))
        self._assert_validity(len(self.steps) - 1)

    def _assert_validity(self, step: int) -> None:
        blocks = self.steps[step][0]
        for index, bits in enumerate(blocks):
            size = max(1, len(self.system.model.attributes[index].domain))
            for code in range(size, 1 << len(bits)):
                self.solver.add_clause(
                    [
                        (-bit if (code >> i) & 1 else bit)
                        for i, bit in enumerate(bits)
                    ]
                )

    # -- Tseitin primitives --------------------------------------------
    def false_lit(self) -> int:
        if self._false is None:
            self._false = self.solver.new_var()
            self.solver.add_clause([-self._false])
        return self._false

    def true_lit(self) -> int:
        return -self.false_lit()

    def and_lit(self, lits: list[int]) -> int:
        if not lits:
            return self.true_lit()
        if len(lits) == 1:
            return lits[0]
        key = ("and", tuple(sorted(lits)))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        aux = self.solver.new_var()
        for lit in lits:
            self.solver.add_clause([-aux, lit])
        self.solver.add_clause([aux, *(-lit for lit in lits)])
        self._cache[key] = aux
        return aux

    def or_lit(self, lits: list[int]) -> int:
        if not lits:
            return self.false_lit()
        if len(lits) == 1:
            return lits[0]
        key = ("or", tuple(sorted(lits)))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        aux = self.solver.new_var()
        for lit in lits:
            self.solver.add_clause([aux, -lit])
        self.solver.add_clause([-aux, *lits])
        self._cache[key] = aux
        return aux

    def block_eq(self, step: int, index: int, code: int) -> int:
        """Literal for "attribute block ``index`` at ``step`` == code"."""
        key = ("beq", step, index, code)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        bits = self.steps[step][0][index]
        lit = self.and_lit(
            [bit if (code >> i) & 1 else -bit for i, bit in enumerate(bits)]
        )
        self._cache[key] = lit
        return lit

    def frag_eq(self, step: int, fid: int) -> int:
        key = ("feq", step, fid)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        bits = self.steps[step][1]
        lit = self.and_lit(
            [bit if (fid >> i) & 1 else -bit for i, bit in enumerate(bits)]
        )
        self._cache[key] = lit
        return lit

    # -- transition unrolling ------------------------------------------
    def ensure_depth(self, depth: int) -> None:
        while self.depth < depth:
            self._add_transition()

    def _add_transition(self) -> None:
        t = self.depth
        self._add_step()
        solver = self.solver
        system = self.system
        nattrs = len(system.block_bits)
        selectors: list[int] = []
        enabled: list[int] = []
        for rule in system.rules:
            req_lits: list[int] = []
            for requirement in rule.requirements:
                if requirement[0] == "change":
                    _, index, label = requirement
                    req_lits.append(
                        -self.block_eq(t, index, system.domain_code[index][label])
                    )
                else:
                    _, refs, combos = requirement
                    req_lits.append(
                        self.or_lit(
                            [
                                self.and_lit(
                                    [
                                        self.block_eq(
                                            t, index, system.domain_code[index][value]
                                        )
                                        for index, value in zip(refs, combo)
                                    ]
                                )
                                for combo in combos
                            ]
                        )
                    )
            fire = self.and_lit(req_lits)
            enabled.append(fire)
            sel = solver.new_var()
            selectors.append(sel)
            solver.add_clause([-sel, fire])
            written = dict(rule.fragment.writes)
            for index, label in rule.fragment.writes:
                code = system.domain_code[index][label]
                for i, bit in enumerate(self.steps[t + 1][0][index]):
                    solver.add_clause([-sel, bit if (code >> i) & 1 else -bit])
            for i, bit in enumerate(self.steps[t + 1][1]):
                solver.add_clause(
                    [-sel, bit if (rule.fragment.fid >> i) & 1 else -bit]
                )
            for index in range(nattrs):
                if index in written:
                    continue
                for xbit, ybit in zip(
                    self.steps[t][0][index], self.steps[t + 1][0][index]
                ):
                    solver.add_clause([-sel, -xbit, ybit])
                    solver.add_clause([-sel, xbit, -ybit])
        # Totalising stall: identity self-loop (incoming label kept),
        # allowed exactly where no fragment is enabled — the deadlock
        # self-loops of the BDD encodings.
        stall = solver.new_var()
        selectors.append(stall)
        for fire in enabled:
            solver.add_clause([-stall, -fire])
        for index in range(nattrs):
            for xbit, ybit in zip(
                self.steps[t][0][index], self.steps[t + 1][0][index]
            ):
                solver.add_clause([-stall, -xbit, ybit])
                solver.add_clause([-stall, xbit, -ybit])
        for xbit, ybit in zip(self.steps[t][1], self.steps[t + 1][1]):
            solver.add_clause([-stall, -xbit, ybit])
            solver.add_clause([-stall, xbit, -ybit])
        progress = solver.new_var()
        self.progress.append(progress)
        solver.add_clause([-progress, *selectors])

    # -- propositions and propositional formulas -----------------------
    def prop_lit(self, step: int, name: str) -> int:
        key = ("prop", step, name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cubes = self.system.prop_cubes.get(name)
        if not cubes:
            lit = self.false_lit()  # unknown props never hold
        else:
            lit = self.or_lit(
                [
                    self.block_eq(step, a, b)
                    if kind == "attr"
                    else self.frag_eq(step, a)
                    for kind, a, b in cubes
                ]
            )
        self._cache[key] = lit
        return lit

    def formula_lit(self, step: int, formula: ctl.Formula) -> int:
        """Tseitin literal of a propositional formula at ``step``."""
        key = ("formula", step, formula)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if isinstance(formula, ctl.Bool):
            lit = self.true_lit() if formula.value else self.false_lit()
        elif isinstance(formula, ctl.Prop):
            lit = self.prop_lit(step, formula.name)
        elif isinstance(formula, ctl.Not):
            lit = -self.formula_lit(step, formula.operand)
        elif isinstance(formula, ctl.And):
            lit = self.and_lit(
                [
                    self.formula_lit(step, formula.left),
                    self.formula_lit(step, formula.right),
                ]
            )
        elif isinstance(formula, ctl.Or):
            lit = self.or_lit(
                [
                    self.formula_lit(step, formula.left),
                    self.formula_lit(step, formula.right),
                ]
            )
        elif isinstance(formula, ctl.Implies):
            lit = self.or_lit(
                [
                    -self.formula_lit(step, formula.left),
                    self.formula_lit(step, formula.right),
                ]
            )
        else:
            raise TypeError(f"not propositional: {type(formula).__name__}")
        self._cache[key] = lit
        return lit

    # -- queries -------------------------------------------------------
    def bad_assumptions(self, shape: InvariantShape, depth: int) -> list[int]:
        """Assumption literals for "a bad state is reached at ``depth``".

        Ensures the unrolling is deep enough; progress literals force a
        real (or deadlock-stall) transition at every step up to the bad
        state — and one step beyond it for the ``EX`` shape, whose
        witness constrains the successor.
        """
        if shape.ex_target is None:
            self.ensure_depth(depth)
            lits = [-self.formula_lit(depth, shape.formula.operand)]
            steps = depth
        else:
            self.ensure_depth(depth + 1)
            lits = [
                self.formula_lit(depth, shape.context),
                self.formula_lit(depth + 1, shape.ex_target),
            ]
            steps = depth + 1
        assumptions = [*self.progress[:steps], *lits]
        if self.init_act is not None:
            assumptions.append(self.init_act)
        return assumptions

    # -- decoding ------------------------------------------------------
    def state_at(
        self, model: dict[int, bool], step: int
    ) -> tuple[KripkeState, frozenset[str]]:
        """Decode one step of a satisfying assignment into the explicit
        Kripke node it denotes, plus that node's label set (mirrors
        :meth:`SymbolicUnionModel.decode`)."""
        blocks, fragbits = self.steps[step]
        attrs = self.system.model.attributes
        values = []
        for index, attr in enumerate(attrs):
            code = 0
            for i, bit in enumerate(blocks[index]):
                if model.get(bit, False):
                    code |= 1 << i
            domain = attr.domain or ("?",)
            values.append(domain[min(code, len(domain) - 1)])
        fid = 0
        for i, bit in enumerate(fragbits):
            if model.get(bit, False):
                fid |= 1 << i
        fragment = self.system.fragments.get(fid)
        incoming = fragment.props if fragment is not None else ()
        labels = {
            attr_prop(attr.device, attr.attribute, value)
            for attr, value in zip(attrs, values)
        } | set(incoming)
        return KripkeState(state=tuple(values), incoming=incoming), frozenset(labels)

    def decode_trace(
        self, model: dict[int, bool], depth: int
    ) -> list[tuple[KripkeState, frozenset[str]]]:
        return [self.state_at(model, t) for t in range(depth + 1)]

    def state_literals(self, model: dict[int, bool], step: int = 0) -> list[int]:
        """The full state cube of ``model`` at ``step``, as literals."""
        blocks, fragbits = self.steps[step]
        lits = []
        for block in blocks:
            for bit in block:
                lits.append(bit if model.get(bit, False) else -bit)
        for bit in fragbits:
            lits.append(bit if model.get(bit, False) else -bit)
        return lits

    def prime_literal(self, lit: int) -> int:
        """Map a step-0 state literal to its step-1 twin (for IC3)."""
        mapping = self._cache.get(("prime-map",))
        if mapping is None:
            self.ensure_depth(1)
            mapping = {}
            for b0, b1 in zip(self.steps[0][0], self.steps[1][0]):
                mapping.update(zip(b0, b1))
            mapping.update(zip(self.steps[0][1], self.steps[1][1]))
            self._cache[("prime-map",)] = mapping
        var = mapping[abs(lit)]
        return var if lit > 0 else -var


# ======================================================================
# Invariant-shape classification
# ======================================================================
@dataclass(frozen=True)
class InvariantShape:
    """A BMC-checkable ``AG`` property.

    ``context``/``ex_target`` are None for the plain shape (bad state =
    ``!operand``); for the EX shape the bad states are
    ``context & EX ex_target`` (both propositional).
    """

    formula: ctl.AG
    context: ctl.Formula | None
    ex_target: ctl.Formula | None


def propositional(formula: ctl.Formula) -> bool:
    if isinstance(formula, (ctl.Bool, ctl.Prop)):
        return True
    if isinstance(formula, ctl.Not):
        return propositional(formula.operand)
    if isinstance(formula, (ctl.And, ctl.Or, ctl.Implies)):
        return propositional(formula.left) and propositional(formula.right)
    return False


def _bad_conjuncts(formula: ctl.Formula) -> list[ctl.Formula] | None:
    """Decompose a bad-state formula into conjuncts, pushing negation
    through the temporal skeleton only (propositional parts stay whole);
    None when the shape is not a conjunction of propositional parts and
    ``EX`` of propositional parts."""
    if propositional(formula):
        return [formula]
    if isinstance(formula, ctl.EX):
        return [formula] if propositional(formula.operand) else None
    if isinstance(formula, ctl.And):
        left = _bad_conjuncts(formula.left)
        right = _bad_conjuncts(formula.right)
        return None if left is None or right is None else left + right
    if isinstance(formula, ctl.Not):
        inner = formula.operand
        if isinstance(inner, ctl.Not):
            return _bad_conjuncts(inner.operand)
        if isinstance(inner, ctl.Or):
            left = _bad_conjuncts(ctl.Not(inner.left))
            right = _bad_conjuncts(ctl.Not(inner.right))
            return None if left is None or right is None else left + right
        if isinstance(inner, ctl.Implies):
            left = _bad_conjuncts(inner.left)
            right = _bad_conjuncts(ctl.Not(inner.right))
            return None if left is None or right is None else left + right
        if isinstance(inner, ctl.AX):
            return _bad_conjuncts(ctl.EX(ctl.Not(inner.operand)))
    return None


def invariant_shape(formula: ctl.Formula | str) -> InvariantShape | None:
    """Classify ``formula`` as a BMC-checkable invariant, or None."""
    if isinstance(formula, str):
        formula = ctl.parse_ctl(formula)
    if not isinstance(formula, ctl.AG):
        return None
    operand = formula.operand
    if propositional(operand):
        return InvariantShape(formula, None, None)
    parts = _bad_conjuncts(ctl.Not(operand))
    if parts is None:
        return None
    ex_parts = [p for p in parts if isinstance(p, ctl.EX)]
    rest = [p for p in parts if not isinstance(p, ctl.EX)]
    if len(ex_parts) != 1:
        return None
    context: ctl.Formula = ctl.Bool(True)
    for part in rest:
        context = ctl.And(context, part)
    return InvariantShape(formula, context, ex_parts[0].operand)
