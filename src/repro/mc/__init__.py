"""Model-checking substrate — the reproduction's NuSMV replacement.

Three engines over the same :class:`repro.model.kripke.KripkeStructure`:

* :mod:`.explicit` — explicit-state CTL labelling with counterexamples,
* :mod:`.symbolic` — BDD-based symbolic CTL (on :mod:`.bdd`, a from-scratch
  ROBDD package), both over an explicit Kripke structure
  (:class:`~repro.mc.symbolic.SymbolicChecker`) and over a compiled
  symbolic union model that never enumerates the product
  (:class:`~repro.mc.symbolic.SymbolicModelChecker`),
* :mod:`.bmc` — SAT-based bounded model checking of invariants (on
  :mod:`.sat`, a from-scratch CDCL solver), plus :mod:`.cnf` (the union
  transition relation compiled to clauses, checked without materializing
  states), :mod:`.ic3` (IC3/PDR unbounded proofs over that encoding),
  and :mod:`.portfolio` (the raced SAT/BDD backend),

mirroring NuSMV's combined BDD/SAT modes that the paper relies on (Sec. 5).
"""

from repro.mc.ctl import (
    AG,
    AF,
    AX,
    AU,
    EG,
    EF,
    EX,
    EU,
    And,
    Formula,
    Implies,
    Not,
    Or,
    Prop,
    FALSE,
    TRUE,
    parse_ctl,
)
from repro.mc.explicit import CheckResult, ExplicitChecker, check
from repro.mc.bdd import BDD, ReferenceKernel
from repro.mc.fastbdd import FastKernel
from repro.mc.kernel import (
    DEFAULT_KERNEL,
    KERNEL_CHOICES,
    BddKernel,
    aggregate_kernel_stats,
    available_kernels,
    make_kernel,
    record_kernel_stats,
    reset_kernel_stats,
    resolve_kernel,
)
from repro.mc.symbolic import SymbolicChecker, SymbolicModelChecker
from repro.mc.sat import ReferenceSolver, Solver, solve
from repro.mc.bmc import BoundedChecker, Verdict
from repro.mc.cnf import BmcUnroller, CnfUnionSystem, invariant_shape
from repro.mc.ic3 import IC3Prover
from repro.mc.portfolio import PortfolioChecker

__all__ = [
    "AG",
    "AF",
    "AX",
    "AU",
    "EG",
    "EF",
    "EX",
    "EU",
    "And",
    "Formula",
    "Implies",
    "Not",
    "Or",
    "Prop",
    "FALSE",
    "TRUE",
    "parse_ctl",
    "CheckResult",
    "ExplicitChecker",
    "check",
    "BDD",
    "ReferenceKernel",
    "FastKernel",
    "BddKernel",
    "DEFAULT_KERNEL",
    "KERNEL_CHOICES",
    "available_kernels",
    "resolve_kernel",
    "make_kernel",
    "record_kernel_stats",
    "aggregate_kernel_stats",
    "reset_kernel_stats",
    "SymbolicChecker",
    "SymbolicModelChecker",
    "Solver",
    "ReferenceSolver",
    "solve",
    "BoundedChecker",
    "Verdict",
    "BmcUnroller",
    "CnfUnionSystem",
    "invariant_shape",
    "IC3Prover",
    "PortfolioChecker",
]
