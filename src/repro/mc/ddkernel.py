"""Optional ``dd``-backed kernel (adapter over ``dd.autoref`` / CUDD).

Registered only when the ``dd`` package is importable (see
:func:`repro.mc.kernel.available_kernels`); ``auto`` never resolves to
it, so it is strictly opt-in via ``kernel=dd``.  The adapter maps this
codebase's integer-id protocol onto ``dd``'s ``Function`` handles:

* every distinct ``Function`` this kernel hands out gets a process-stable
  small integer id (``FALSE == 0`` / ``TRUE == 1``), and the handle is
  retained for the lifetime of the kernel — ids can therefore never
  dangle, ``protect``/``collect`` are trivially safe no-ops, and memory
  is reclaimed only when the whole kernel is dropped;
* :meth:`sift` and :meth:`maybe_reorder` are no-ops: ``dd``/CUDD runs
  its own dynamic reordering under the hood, and exposing it through the
  grouped, id-stable sifting contract of :class:`KernelBase` would
  require mirroring its level maps.  ``var_order`` reports the
  *declaration* order, which is the order every other kernel starts
  from;
* :meth:`node_triple` returns ``None`` — ``dd`` uses complement edges,
  so its structural triples are not comparable with the canonical
  (level, low, high) form the native kernels expose.

Semantics (truth tables, quantification, counting) are identical; the
cross-kernel differential suite can therefore include ``dd`` wherever it
is installed, but CI only vouches for ``reference`` and ``fast``.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where dd is installed
    import dd.autoref as _dd_autoref
except ImportError as exc:  # pragma: no cover
    raise ImportError(
        "repro.mc.ddkernel requires the optional 'dd' package; "
        "install it or pick kernel='fast'/'reference'"
    ) from exc

from repro.mc.kernel import KernelBase

__all__ = ["DdKernel"]


class DdKernel(KernelBase):
    """Integer-id facade over a ``dd.autoref.BDD`` manager."""

    KERNEL_NAME = "dd"

    def __init__(self) -> None:
        super().__init__()
        self._dd = _dd_autoref.BDD()
        self._funcs = [self._dd.false, self._dd.true]
        self._func_ids = {self._dd.false: 0, self._dd.true: 1}

    # ------------------------------------------------------------------
    # Handle table
    # ------------------------------------------------------------------
    def _register(self, func) -> int:
        node_id = self._func_ids.get(func)
        if node_id is None:
            node_id = len(self._funcs)
            self._funcs.append(func)
            self._func_ids[func] = node_id
        return node_id

    def _func(self, node_id: int):
        return self._funcs[node_id]

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        if name not in self._var_ids:
            self._dd.declare(name)
        return super().add_var(name)

    def var(self, name: str) -> int:
        self._var_ids[name]  # raise KeyError for undeclared names
        return self._register(self._dd.var(name))

    def nvar(self, name: str) -> int:
        self._var_ids[name]
        return self._register(~self._dd.var(name))

    def _mk(self, level: int, low: int, high: int) -> int:
        return self.ite(self.var(self._var_names[level]), high, low)

    # ------------------------------------------------------------------
    # Connectives
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        return self._register(
            self._dd.ite(self._func(f), self._func(g), self._func(h))
        )

    def and_(self, f: int, g: int) -> int:
        return self._register(self._func(f) & self._func(g))

    def or_(self, f: int, g: int) -> int:
        return self._register(self._func(f) | self._func(g))

    def not_(self, f: int) -> int:
        return self._register(~self._func(f))

    # ------------------------------------------------------------------
    # Quantification / substitution
    # ------------------------------------------------------------------
    def _exists(self, levels: frozenset[int], f: int, cache: dict) -> int:
        if not levels:
            return f
        names = [self._var_names[level] for level in levels]
        return self._register(self._dd.exist(names, self._func(f)))

    def _and_exists(
        self, levels: frozenset[int], f: int, g: int, cache: dict
    ) -> int:
        # dd.autoref has no fused relational product; CUDD's (via
        # dd.cudd.and_exists) is not exposed here to keep one adapter
        # for both backends.  Semantics are identical either way.
        return self._exists(levels, self.and_(f, g), cache)

    def _support_levels(self, f: int) -> frozenset[int]:
        return frozenset(
            self._var_ids[name] for name in self._dd.support(self._func(f))
        )

    def rename(self, f: int, mapping: dict[str, str]) -> int:
        if not mapping:
            return f
        return self._register(self._dd.let(dict(mapping), self._func(f)))

    def restrict(self, f: int, assignment: dict[str, bool]) -> int:
        if not assignment:
            return f
        values = {name: bool(value) for name, value in assignment.items()}
        return self._register(self._dd.let(values, self._func(f)))

    # ------------------------------------------------------------------
    # Evaluation / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool:
        return self.restrict(f, assignment) == self.TRUE

    def count_sat(self, f: int, nvars: int | None = None) -> int:
        if f == self.FALSE:
            return 0
        width = self.var_count() if nvars is None else nvars
        return int(self._dd.count(self._func(f), nvars=width))

    def any_sat(self, f: int) -> dict[str, bool] | None:
        if f == self.FALSE:
            return None
        model = self._dd.pick(self._func(f))
        return {name: bool(value) for name, value in (model or {}).items()}

    def size(self, f: int) -> int:
        if f in (self.FALSE, self.TRUE):
            return 0
        return len(self._func(f))

    # ------------------------------------------------------------------
    # Lifecycle / reordering (dd manages its own tables)
    # ------------------------------------------------------------------
    def collect(self, roots: tuple[int, ...] | list[int] = ()) -> int:
        return 0

    def live_size(self) -> int:
        return len(self._dd)

    def allocated_nodes(self) -> int:
        return len(self._dd)

    def node_triple(self, node_id: int) -> tuple[int, int, int] | None:
        return None

    def sift(
        self,
        groups: list[list[str]] | None = None,
        roots: tuple[int, ...] | list[int] = (),
        max_groups: int | None = None,
        max_growth: float = 2.0,
    ) -> None:
        return None

    def maybe_reorder(self, extra_roots: tuple[int, ...] | list[int] = ()) -> bool:
        return False

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _unique_entries(self) -> int:
        return len(self._dd)

    def _computed_entries(self) -> int:
        return 0

    def _drop_op_caches(self) -> None:
        return None
