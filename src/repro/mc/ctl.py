"""CTL formulas (Clarke-Emerson branching-time logic) and a parser.

Soteria expresses properties "with temporal logic formulas" checked by
NuSMV; this module is the formula layer of the reproduction's checker.
Formulas are immutable dataclass trees; :func:`parse_ctl` accepts the usual
textual syntax::

    AG (attr:door.lock=locked | !"attr:presence=not present")
    AG (ev:smoke.detected -> AF attr:alarm.alarm=siren)
    E [ attr:valve.valve=open U attr:water.water=wet ]

Propositions are bare tokens (no whitespace) or double-quoted strings.
"""

from __future__ import annotations

from dataclasses import dataclass


class Formula:
    """Base class; subclasses are the CTL connectives."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def atoms(self) -> set[str]:
        found: set[str] = set()
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Prop):
                found.add(node.name)
            for child in _children(node):
                stack.append(child)
        return found


@dataclass(frozen=True)
class Bool(Formula):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Bool(True)
FALSE = Bool(False)


@dataclass(frozen=True)
class Prop(Formula):
    name: str

    def __str__(self) -> str:
        if any(ch.isspace() for ch in self.name):
            return f'"{self.name}"'
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class EX(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"EX ({self.operand})"


@dataclass(frozen=True)
class AX(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"AX ({self.operand})"


@dataclass(frozen=True)
class EF(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"EF ({self.operand})"


@dataclass(frozen=True)
class AF(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"AF ({self.operand})"


@dataclass(frozen=True)
class EG(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"EG ({self.operand})"


@dataclass(frozen=True)
class AG(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"AG ({self.operand})"


@dataclass(frozen=True)
class EU(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"E [{self.left} U {self.right}]"


@dataclass(frozen=True)
class AU(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"A [{self.left} U {self.right}]"


def _children(node: Formula) -> list[Formula]:
    if isinstance(node, (Not, EX, AX, EF, AF, EG, AG)):
        return [node.operand]
    if isinstance(node, (And, Or, Implies, EU, AU)):
        return [node.left, node.right]
    return []


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class CTLParseError(Exception):
    pass


_UNARY_TEMPORAL = {"AG", "AF", "AX", "EG", "EF", "EX"}
_STOP_CHARS = set("()[]!&|\"' \t\n")


class _Lexer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.tokens: list[str] = []
        self._run()

    def _run(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif ch in "()[]!":
                self.tokens.append(ch)
                self.pos += 1
            elif ch == "&":
                self.pos += 2 if text.startswith("&&", self.pos) else 1
                self.tokens.append("&")
            elif ch == "|":
                self.pos += 2 if text.startswith("||", self.pos) else 1
                self.tokens.append("|")
            elif text.startswith("->", self.pos):
                self.tokens.append("->")
                self.pos += 2
            elif ch == '"':
                end = text.find('"', self.pos + 1)
                if end < 0:
                    raise CTLParseError("unterminated quoted proposition")
                self.tokens.append("\0" + text[self.pos + 1 : end])
                self.pos = end + 1
            else:
                start = self.pos
                while self.pos < len(text) and text[self.pos] not in _STOP_CHARS:
                    if text.startswith("->", self.pos):
                        break
                    self.pos += 1
                self.tokens.append(text[start : self.pos])
        self.tokens.append("<eof>")


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos]

    def advance(self) -> str:
        token = self.tokens[self.pos]
        if token != "<eof>":
            self.pos += 1
        return token

    def expect(self, token: str) -> None:
        if self.peek() != token:
            raise CTLParseError(f"expected {token!r}, found {self.peek()!r}")
        self.advance()

    def parse(self) -> Formula:
        formula = self.implies()
        if self.peek() != "<eof>":
            raise CTLParseError(f"trailing input: {self.peek()!r}")
        return formula

    def implies(self) -> Formula:
        left = self.disjunction()
        if self.peek() == "->":
            self.advance()
            return Implies(left, self.implies())
        return left

    def disjunction(self) -> Formula:
        left = self.conjunction()
        while self.peek() == "|":
            self.advance()
            left = Or(left, self.conjunction())
        return left

    def conjunction(self) -> Formula:
        left = self.unary()
        while self.peek() == "&":
            self.advance()
            left = And(left, self.unary())
        return left

    def unary(self) -> Formula:
        token = self.peek()
        if token == "!":
            self.advance()
            return Not(self.unary())
        if token in _UNARY_TEMPORAL:
            self.advance()
            operand = self.unary()
            return {"AG": AG, "AF": AF, "AX": AX, "EG": EG, "EF": EF, "EX": EX}[
                token
            ](operand)
        if token in ("A", "E"):
            self.advance()
            self.expect("[")
            left = self.implies()
            self.expect("U")
            right = self.implies()
            self.expect("]")
            return AU(left, right) if token == "A" else EU(left, right)
        return self.atom()

    def atom(self) -> Formula:
        token = self.advance()
        if token == "(":
            inner = self.implies()
            self.expect(")")
            return inner
        if token == "true":
            return TRUE
        if token == "false":
            return FALSE
        if token == "<eof>":
            raise CTLParseError("unexpected end of formula")
        if token.startswith("\0"):
            return Prop(token[1:])
        return Prop(token)


def parse_ctl(text: str) -> Formula:
    """Parse a textual CTL formula."""
    return _Parser(_Lexer(text).tokens).parse()
