"""IC3/PDR-style unbounded invariant proving over the CNF union encoding.

Where BMC can only *refute* an ``AG`` property (or prove it by reaching
the completeness bound, hopeless for union models), property-directed
reachability proves it without unrolling: a growing sequence of frames
``F_0 = I, F_1, ..., F_N`` (each an over-approximation of the states
reachable in at most that many steps) is strengthened by blocking
predecessors of bad states until some ``F_i = F_{i+1}``, i.e. an
inductive invariant excluding all bad states — or a chain of concrete
predecessor cubes reaches the initial states, which is a real
counterexample trace.

The implementation reuses one two-step :class:`~repro.mc.cnf.BmcUnroller`
(``x`` = step 0, ``x'`` = step 1) built with ``guard_initial=True``:
frame membership, ``init``, and cube negations are all switched per
query through assumption literals, so the single incremental solver
serves every query.  Budgets (frames, SAT queries) bound the worst case;
exhausting them yields :data:`~repro.mc.bmc.Verdict.UNKNOWN`, which the
portfolio backend treats as "fall back to the BDD checker".
"""

from __future__ import annotations

import heapq
import itertools

from repro.mc.bmc import HOLDS, UNKNOWN, VIOLATED, Verdict
from repro.mc.cnf import BmcUnroller, CnfUnionSystem, InvariantShape
from repro.model.kripke import KripkeState

#: Decoded trace entry: (state, labels) as produced by BmcUnroller.state_at.
TraceStep = tuple[KripkeState, frozenset[str]]


class _Budget(Exception):
    """Raised internally when the query budget runs out."""


class IC3Prover:
    def __init__(
        self,
        system: CnfUnionSystem,
        unroller: BmcUnroller | None = None,
        max_frames: int = 50,
        max_queries: int = 5000,
    ) -> None:
        if unroller is None:
            unroller = BmcUnroller(system, guard_initial=True)
        elif unroller.init_act is None:
            raise ValueError("IC3 needs a guard_initial unroller")
        unroller.ensure_depth(1)
        self.unroller = unroller
        self.max_frames = max_frames
        self.max_queries = max_queries
        self.queries = 0
        # frame_acts[i] activates the clauses learned at level i (i >= 1);
        # slot 0 is a placeholder — F_0 queries assume init_act instead.
        self._frame_acts: list[int] = [0]
        self._frame_clauses: list[list[tuple[int, ...]]] = [[]]
        self._neg_acts: dict[frozenset[int], int] = {}

    # -- solver plumbing -----------------------------------------------
    def _solve(self, assumptions: list[int]) -> dict[int, bool] | None:
        self.queries += 1
        if self.queries > self.max_queries:
            raise _Budget()
        return self.unroller.solver.solve(assumptions=assumptions)

    def _frame_assumptions(self, level: int) -> list[int]:
        """Assumptions making the solver's state constraint equal F_level."""
        if level == 0:
            return [self.unroller.init_act]
        return self._frame_acts[level:]

    def _new_frame(self) -> None:
        self._frame_acts.append(self.unroller.solver.new_var())
        self._frame_clauses.append([])

    def _add_blocked(self, cube: tuple[int, ...], level: int) -> None:
        """Learn the clause ¬cube at frame ``level`` (and below, by the
        suffix-activation scheme)."""
        self._frame_clauses[level].append(cube)
        act = self._frame_acts[level]
        self.unroller.solver.add_clause([-act, *(-lit for lit in cube)])

    def _negated_cube_assumption(self, cube: tuple[int, ...]) -> int:
        """Activation literal enforcing ¬cube while assumed."""
        key = frozenset(cube)
        act = self._neg_acts.get(key)
        if act is None:
            act = self.unroller.solver.new_var()
            self.unroller.solver.add_clause([-act, *(-lit for lit in cube)])
            self._neg_acts[key] = act
        return act

    def _bad_assumptions(self, shape: InvariantShape) -> list[int]:
        unroller = self.unroller
        if shape.ex_target is None:
            return [-unroller.formula_lit(0, shape.formula.operand)]
        return [
            unroller.formula_lit(0, shape.context),
            unroller.formula_lit(1, shape.ex_target),
        ]

    # -- main loop -----------------------------------------------------
    def prove(self, shape: InvariantShape) -> tuple[Verdict, list[TraceStep]]:
        try:
            return self._prove(shape)
        except _Budget:
            return UNKNOWN, []

    def _prove(self, shape: InvariantShape) -> tuple[Verdict, list[TraceStep]]:
        unroller = self.unroller
        progress = unroller.progress[0]
        bad = self._bad_assumptions(shape)
        ex_witness = shape.ex_target is not None

        # Depth 0: a bad state among the initial states.
        model = self._solve([unroller.init_act, progress, *bad])
        if model is not None:
            trace = [unroller.state_at(model, 0)]
            if ex_witness:
                trace.append(unroller.state_at(model, 1))
            return VIOLATED, trace

        self._new_frame()
        while len(self._frame_acts) - 1 <= self.max_frames:
            top = len(self._frame_acts) - 1
            # Strengthen until no bad state is left in F_top.
            while True:
                model = self._solve(
                    [*self._frame_assumptions(top), progress, *bad]
                )
                if model is None:
                    break
                cube = tuple(unroller.state_literals(model, 0))
                witness = unroller.state_at(model, 1) if ex_witness else None
                counterexample = self._block(cube, top, witness)
                if counterexample is not None:
                    return VIOLATED, counterexample
            # Push learned clauses forward; F_i == F_{i+1} is a fixpoint.
            self._new_frame()
            for level in range(1, top + 1):
                for cube in list(self._frame_clauses[level]):
                    assumptions = [
                        *self._frame_assumptions(level),
                        progress,
                        *(unroller.prime_literal(lit) for lit in cube),
                    ]
                    if self._solve(assumptions) is None:
                        self._frame_clauses[level].remove(cube)
                        self._add_blocked(cube, level + 1)
                if not self._frame_clauses[level]:
                    # Every clause of F_level pushed: F_level == F_{level+1}
                    # is inductive, and F_level ∧ bad was refuted when
                    # level was the top frame — the property holds.
                    return HOLDS, []
        return UNKNOWN, []

    # -- blocking ------------------------------------------------------
    def _block(
        self,
        cube: tuple[int, ...],
        level: int,
        witness: TraceStep | None,
    ) -> list[TraceStep] | None:
        """Block ``cube`` at ``level``; a concrete counterexample trace if
        the obligation chain reaches the initial states, else None."""
        unroller = self.unroller
        progress = unroller.progress[0]
        counter = itertools.count()
        # Obligations: (frame, tiebreak, cube, chain-of-cubes up to bad).
        heap: list[tuple[int, int, tuple[int, ...], tuple]] = [
            (level, next(counter), cube, (cube,))
        ]
        while heap:
            frame, _, s, chain = heapq.heappop(heap)
            assumptions = [
                *self._frame_assumptions(frame - 1),
                progress,
                self._negated_cube_assumption(s),
                *(unroller.prime_literal(lit) for lit in s),
            ]
            model = self._solve(assumptions)
            if model is not None:
                predecessor = tuple(unroller.state_literals(model, 0))
                if self._solve([unroller.init_act, *predecessor]) is not None:
                    trace = [
                        self._decode_cube(c) for c in (predecessor, *chain)
                    ]
                    if witness is not None:
                        trace.append(witness)
                    return trace
                heapq.heappush(
                    heap,
                    (frame - 1, next(counter), predecessor, (predecessor, *chain)),
                )
                heapq.heappush(heap, (frame, next(counter), s, chain))
            else:
                self._add_blocked(self._generalize(s, frame), frame)
        return None

    def _generalize(self, cube: tuple[int, ...], frame: int) -> tuple[int, ...]:
        """Drop literals from ``cube`` while ¬cube stays inductive
        relative to F_{frame-1} and disjoint from the initial states."""
        unroller = self.unroller
        progress = unroller.progress[0]
        kept = list(cube)
        for lit in cube:
            if len(kept) <= 1:
                break
            trial = [l for l in kept if l != lit]
            if self._solve([unroller.init_act, *trial]) is not None:
                continue
            assumptions = [
                *self._frame_assumptions(frame - 1),
                progress,
                self._negated_cube_assumption(tuple(trial)),
                *(unroller.prime_literal(l) for l in trial),
            ]
            if self._solve(assumptions) is None:
                kept = trial
        return tuple(kept)

    def _decode_cube(self, cube: tuple[int, ...]) -> TraceStep:
        assignment = {abs(lit): lit > 0 for lit in cube}
        return self.unroller.state_at(assignment, 0)
