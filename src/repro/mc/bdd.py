"""A from-scratch ROBDD (reduced ordered binary decision diagram) package.

Implements the classic Bryant construction: a unique table guaranteeing
canonicity, ``ite`` as the universal connective with memoisation,
existential quantification, variable renaming, and satisfying-assignment
counting.  This is the substrate for the symbolic CTL checker
(:mod:`repro.mc.symbolic`) — the reproduction's analogue of NuSMV's
BDD engine.

Nodes are integers: 0 (false terminal), 1 (true terminal), and >= 2 for
internal nodes stored as (level, low, high) triples.  Variable order is the
order of :meth:`BDD.add_var` calls.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class _Node:
    level: int
    low: int
    high: int


class BDD:
    """A BDD manager: all nodes live in one shared, reduced graph."""

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        self._nodes: list[_Node] = [
            _Node(level=1 << 30, low=0, high=0),   # 0: false terminal
            _Node(level=1 << 30, low=1, high=1),   # 1: true terminal
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._var_names: list[str] = []
        self._var_ids: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Register a variable (order = registration order); returns the
        BDD node for the positive literal."""
        if name in self._var_ids:
            return self.var(name)
        self._var_ids[name] = len(self._var_names)
        self._var_names.append(name)
        return self.var(name)

    def var(self, name: str) -> int:
        level = self._var_ids[name]
        return self._mk(level, self.FALSE, self.TRUE)

    def nvar(self, name: str) -> int:
        level = self._var_ids[name]
        return self._mk(level, self.TRUE, self.FALSE)

    def var_count(self) -> int:
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        return self._var_ids[name]

    def name_of(self, level: int) -> str:
        return self._var_names[level]

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node_id = self._unique.get(key)
        if node_id is None:
            node_id = len(self._nodes)
            self._nodes.append(_Node(level=level, low=low, high=high))
            self._unique[key] = node_id
        return node_id

    def node(self, node_id: int) -> _Node:
        return self._nodes[node_id]

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else: f ? g : h — the universal boolean connective."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._nodes[f].level, self._nodes[g].level, self._nodes[h].level)
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node_id: int, level: int) -> tuple[int, int]:
        node = self._nodes[node_id]
        if node.level != level:
            return node_id, node_id
        return node.low, node.high

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def not_(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.TRUE)

    def iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def conj(self, items: list[int]) -> int:
        result = self.TRUE
        for item in items:
            result = self.and_(result, item)
        return result

    def disj(self, items: list[int]) -> int:
        result = self.FALSE
        for item in items:
            result = self.or_(result, item)
        return result

    # ------------------------------------------------------------------
    # Quantification and substitution
    # ------------------------------------------------------------------
    def exists(self, names: list[str], f: int) -> int:
        levels = sorted(self._var_ids[name] for name in names)
        return self._exists(frozenset(levels), f, {})

    def _exists(self, levels: frozenset[int], f: int, cache: dict[int, int]) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        low = self._exists(levels, node.low, cache)
        high = self._exists(levels, node.high, cache)
        if node.level in levels:
            result = self.or_(low, high)
        else:
            result = self._mk(node.level, low, high)
        cache[f] = result
        return result

    def forall(self, names: list[str], f: int) -> int:
        return self.not_(self.exists(names, self.not_(f)))

    def and_exists(self, names: list[str], f: int, g: int) -> int:
        """The relational product ``exists names . f & g`` in one pass.

        The workhorse of symbolic image computation (``names`` is one
        variable block, e.g. all next-state variables): fusing the
        conjunction with the quantification never materializes ``f & g``,
        whose BDD can be far larger than the quantified result.
        """
        levels = frozenset(self._var_ids[name] for name in names)
        return self._and_exists(levels, f, g, {})

    def _and_exists(
        self,
        levels: frozenset[int],
        f: int,
        g: int,
        cache: dict[tuple[int, int], int],
    ) -> int:
        if f == self.FALSE or g == self.FALSE:
            return self.FALSE
        if f == self.TRUE and g == self.TRUE:
            return self.TRUE
        if f > g:
            f, g = g, f  # and/exists are symmetric: canonicalize the key
        key = (f, g)
        cached = cache.get(key)
        if cached is not None:
            return cached
        level = min(self._nodes[f].level, self._nodes[g].level)
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        low = self._and_exists(levels, f0, g0, cache)
        if level in levels:
            if low == self.TRUE:
                result = self.TRUE  # short-circuit: the OR is saturated
            else:
                high = self._and_exists(levels, f1, g1, cache)
                result = self.or_(low, high)
        else:
            high = self._and_exists(levels, f1, g1, cache)
            result = self._mk(level, low, high)
        cache[key] = result
        return result

    def rename(self, f: int, mapping: dict[str, str]) -> int:
        """Substitute variables (e.g. next-state x' -> x).

        Implemented by composition: safe for arbitrary mappings, including
        non-order-preserving ones.
        """
        level_map = {
            self._var_ids[old]: self._var_ids[new] for old, new in mapping.items()
        }
        return self._rename(f, level_map, {})

    def _rename(self, f: int, level_map: dict[int, int], cache: dict[int, int]) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        low = self._rename(node.low, level_map, cache)
        high = self._rename(node.high, level_map, cache)
        target = level_map.get(node.level, node.level)
        variable = self._mk(target, self.FALSE, self.TRUE)
        result = self.ite(variable, high, low)
        cache[f] = result
        return result

    def restrict(self, f: int, assignment: dict[str, bool]) -> int:
        levels = {self._var_ids[n]: v for n, v in assignment.items()}
        return self._restrict(f, levels, {})

    def _restrict(
        self, f: int, levels: dict[int, bool], cache: dict[int, int]
    ) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        if node.level in levels:
            branch = node.high if levels[node.level] else node.low
            result = self._restrict(branch, levels, cache)
        else:
            low = self._restrict(node.low, levels, cache)
            high = self._restrict(node.high, levels, cache)
            result = self._mk(node.level, low, high)
        cache[f] = result
        return result

    # ------------------------------------------------------------------
    # Evaluation / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool:
        node_id = f
        while node_id not in (self.TRUE, self.FALSE):
            node = self._nodes[node_id]
            name = self._var_names[node.level]
            node_id = node.high if assignment.get(name, False) else node.low
        return node_id == self.TRUE

    def count_sat(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        total_vars = nvars if nvars is not None else len(self._var_names)
        cache: dict[int, int] = {}

        def walk(node_id: int) -> tuple[int, int]:
            """Returns (count, level) where count assumes the node's level."""
            if node_id == self.FALSE:
                return 0, total_vars
            if node_id == self.TRUE:
                return 1, total_vars
            node = self._nodes[node_id]
            if node_id in cache:
                return cache[node_id], node.level
            low_count, low_level = walk(node.low)
            high_count, high_level = walk(node.high)
            count = low_count * (1 << (low_level - node.level - 1)) + high_count * (
                1 << (high_level - node.level - 1)
            )
            cache[node_id] = count
            return count, node.level

        count, level = walk(f)
        return count * (1 << level)

    def any_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment, or None."""
        if f == self.FALSE:
            return None
        assignment: dict[str, bool] = {}
        node_id = f
        while node_id != self.TRUE:
            node = self._nodes[node_id]
            name = self._var_names[node.level]
            if node.high != self.FALSE:
                assignment[name] = True
                node_id = node.high
            else:
                assignment[name] = False
                node_id = node.low
        return assignment

    def size(self, f: int) -> int:
        """Number of distinct nodes in the BDD rooted at ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node_id = stack.pop()
            if node_id in seen or node_id in (self.TRUE, self.FALSE):
                continue
            seen.add(node_id)
            node = self._nodes[node_id]
            stack.append(node.low)
            stack.append(node.high)
        return len(seen) + 2
