"""The reference ROBDD kernel: a from-scratch dict-of-node manager.

Implements the classic Bryant construction: a unique table guaranteeing
canonicity, ``ite`` as the universal connective with memoisation,
existential quantification, variable renaming, and satisfying-assignment
counting.  This was the substrate for the symbolic CTL checker
(:mod:`repro.mc.symbolic`) — the reproduction's analogue of NuSMV's BDD
engine — and is now the *reference kernel* of the pluggable-kernel layer
(:mod:`repro.mc.kernel`): the readable recursive implementation every
other kernel is differentially tested against.  The production default
is the array-backed :class:`repro.mc.fastbdd.FastKernel`.

Nodes are integers: 0 (false terminal), 1 (true terminal), and >= 2 for
internal nodes stored as (level, low, high) triples.  Variable order is the
order of :meth:`BDD.add_var` calls — *initially*: the order can later be
improved in place by sifting-based dynamic reordering (:meth:`sift`,
:meth:`maybe_reorder`).  Reordering is id-stable: every node keeps its
integer id and keeps denoting the same boolean function, so ids held by
callers (relations, reachable sets, frontier lists, formula caches) stay
valid across reorders.  Long-lived ids must be registered with
:meth:`protect` so the mark-and-sweep collector that runs around sifting
(:meth:`collect`) knows the live roots.

The variable bookkeeping, protect/collect policy, grouped sifting search,
auto-reorder trigger, and the early-quantification schedule live in
:class:`repro.mc.kernel.KernelBase`; this module implements only the
node table and the recursive traversals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mc.kernel import TERMINAL_LEVEL, KernelBase


@dataclass(frozen=True)
class _Node:
    level: int
    low: int
    high: int


#: Sentinel level of the two terminals — below every real variable.
_TERMINAL_LEVEL = TERMINAL_LEVEL


class BDD(KernelBase):
    """A BDD manager: all nodes live in one shared, reduced graph."""

    KERNEL_NAME = "reference"

    def __init__(self) -> None:
        super().__init__()
        self._nodes: list[_Node | None] = [
            _Node(level=_TERMINAL_LEVEL, low=0, high=0),   # 0: false terminal
            _Node(level=_TERMINAL_LEVEL, low=1, high=1),   # 1: true terminal
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node_id = self._unique.get(key)
        if node_id is None:
            node_id = len(self._nodes)
            self._nodes.append(_Node(level=level, low=low, high=high))
            self._unique[key] = node_id
            self._level_nodes.setdefault(level, set()).add(node_id)
        return node_id

    def node(self, node_id: int) -> _Node:
        return self._nodes[node_id]

    def node_triple(self, node_id: int) -> tuple[int, int, int] | None:
        """The (level, low, high) triple of a node, or None when the slot
        was collected — the kernel-portable introspection hook."""
        node = self._nodes[node_id]
        if node is None:
            return None
        return (node.level, node.low, node.high)

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else: f ? g : h — the universal boolean connective."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._nodes[f].level, self._nodes[g].level, self._nodes[h].level)
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node_id: int, level: int) -> tuple[int, int]:
        node = self._nodes[node_id]
        if node.level != level:
            return node_id, node_id
        return node.low, node.high

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def not_(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    # ------------------------------------------------------------------
    # Quantification and substitution
    # ------------------------------------------------------------------
    def _exists(self, levels: frozenset[int], f: int, cache: dict[int, int]) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        low = self._exists(levels, node.low, cache)
        high = self._exists(levels, node.high, cache)
        if node.level in levels:
            result = self.or_(low, high)
        else:
            result = self._mk(node.level, low, high)
        cache[f] = result
        return result

    def _and_exists(
        self,
        levels: frozenset[int],
        f: int,
        g: int,
        cache: dict[tuple[int, int], int],
    ) -> int:
        if f == self.FALSE or g == self.FALSE:
            return self.FALSE
        if f == self.TRUE and g == self.TRUE:
            return self.TRUE
        if f > g:
            f, g = g, f  # and/exists are symmetric: canonicalize the key
        key = (f, g)
        cached = cache.get(key)
        if cached is not None:
            return cached
        level = min(self._nodes[f].level, self._nodes[g].level)
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        low = self._and_exists(levels, f0, g0, cache)
        if level in levels:
            if low == self.TRUE:
                result = self.TRUE  # short-circuit: the OR is saturated
            else:
                high = self._and_exists(levels, f1, g1, cache)
                result = self.or_(low, high)
        else:
            high = self._and_exists(levels, f1, g1, cache)
            result = self._mk(level, low, high)
        cache[key] = result
        return result

    def _support_levels(self, f: int) -> frozenset[int]:
        if f in (self.TRUE, self.FALSE):
            return frozenset()
        cached = self._support_cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        result = (
            self._support_levels(node.low)
            | self._support_levels(node.high)
            | {node.level}
        )
        self._support_cache[f] = result
        return result

    def rename(self, f: int, mapping: dict[str, str]) -> int:
        """Substitute variables (e.g. next-state x' -> x).

        Implemented by composition: safe for arbitrary mappings, including
        non-order-preserving ones.
        """
        level_map = {
            self._var_ids[old]: self._var_ids[new] for old, new in mapping.items()
        }
        return self._rename(f, level_map, {})

    def _rename(self, f: int, level_map: dict[int, int], cache: dict[int, int]) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        low = self._rename(node.low, level_map, cache)
        high = self._rename(node.high, level_map, cache)
        target = level_map.get(node.level, node.level)
        variable = self._mk(target, self.FALSE, self.TRUE)
        result = self.ite(variable, high, low)
        cache[f] = result
        return result

    def restrict(self, f: int, assignment: dict[str, bool]) -> int:
        levels = {self._var_ids[n]: v for n, v in assignment.items()}
        return self._restrict(f, levels, {})

    def _restrict(
        self, f: int, levels: dict[int, bool], cache: dict[int, int]
    ) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        if node.level in levels:
            branch = node.high if levels[node.level] else node.low
            result = self._restrict(branch, levels, cache)
        else:
            low = self._restrict(node.low, levels, cache)
            high = self._restrict(node.high, levels, cache)
            result = self._mk(node.level, low, high)
        cache[f] = result
        return result

    # ------------------------------------------------------------------
    # Evaluation / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool:
        node_id = f
        while node_id not in (self.TRUE, self.FALSE):
            node = self._nodes[node_id]
            name = self._var_names[node.level]
            node_id = node.high if assignment.get(name, False) else node.low
        return node_id == self.TRUE

    def count_sat(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        total_vars = nvars if nvars is not None else len(self._var_names)
        cache: dict[int, int] = {}

        def walk(node_id: int) -> tuple[int, int]:
            """Returns (count, level) where count assumes the node's level."""
            if node_id == self.FALSE:
                return 0, total_vars
            if node_id == self.TRUE:
                return 1, total_vars
            node = self._nodes[node_id]
            if node_id in cache:
                return cache[node_id], node.level
            low_count, low_level = walk(node.low)
            high_count, high_level = walk(node.high)
            count = low_count * (1 << (low_level - node.level - 1)) + high_count * (
                1 << (high_level - node.level - 1)
            )
            cache[node_id] = count
            return count, node.level

        count, level = walk(f)
        return count * (1 << level)

    def any_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment, or None."""
        if f == self.FALSE:
            return None
        assignment: dict[str, bool] = {}
        node_id = f
        while node_id != self.TRUE:
            node = self._nodes[node_id]
            name = self._var_names[node.level]
            if node.high != self.FALSE:
                assignment[name] = True
                node_id = node.high
            else:
                assignment[name] = False
                node_id = node.low
        return assignment

    def size(self, f: int) -> int:
        """Number of distinct nodes in the BDD rooted at ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node_id = stack.pop()
            if node_id in seen or node_id in (self.TRUE, self.FALSE):
                continue
            seen.add(node_id)
            node = self._nodes[node_id]
            stack.append(node.low)
            stack.append(node.high)
        return len(seen) + 2

    # ------------------------------------------------------------------
    # Garbage collection (roots must be registered or passed explicitly)
    # ------------------------------------------------------------------
    def allocated_nodes(self) -> int:
        """Total nodes ever allocated (the peak table size: slots are
        never reused, so this is monotone — benchmarks report it as the
        peak node count)."""
        return len(self._nodes)

    def collect(self, roots: tuple[int, ...] | list[int] = ()) -> int:
        """Mark-and-sweep from ``roots`` + every protected id.

        Dead nodes leave the unique table and the level index and their
        slots are cleared (ids are never reused, so a dangling reference
        fails loudly instead of silently aliasing another function).
        Returns the number of collected nodes.  All memo caches are
        dropped: they may reference dead ids.
        """
        marked: set[int] = set()
        stack = [*roots, *self._protected]
        while stack:
            node_id = stack.pop()
            if node_id in (self.TRUE, self.FALSE) or node_id in marked:
                continue
            marked.add(node_id)
            node = self._nodes[node_id]
            stack.append(node.low)
            stack.append(node.high)
        collected = 0
        for node_id in range(2, len(self._nodes)):
            node = self._nodes[node_id]
            if node is None or node_id in marked:
                continue
            del self._unique[(node.level, node.low, node.high)]
            self._level_nodes[node.level].discard(node_id)
            self._nodes[node_id] = None
            collected += 1
        self._ite_cache.clear()
        self._support_cache.clear()
        self._gc_runs += 1
        self._nodes_collected += collected
        return collected

    # ------------------------------------------------------------------
    # Reordering primitive (the search strategy lives in KernelBase)
    # ------------------------------------------------------------------
    def swap_adjacent(self, level: int) -> None:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Every node id keeps denoting the same boolean function: nodes at
        the two levels are re-expressed over the swapped order (the classic
        variable-swap), nodes elsewhere are untouched.  Canonicity is
        preserved — the unique-table entries of both levels are rebuilt.
        """
        if not 0 <= level < len(self._var_names) - 1:
            raise ValueError(f"cannot swap level {level} of {len(self._var_names)}")
        lower_level = level + 1
        upper = list(self._level_nodes.get(level, ()))
        lower = list(self._level_nodes.get(lower_level, ()))

        # Cofactor quadruples of the interacting upper nodes, computed
        # against the *original* structure before anything moves.
        quads: dict[int, tuple[int, int, int, int]] = {}
        for node_id in upper:
            node = self._nodes[node_id]
            low_node, high_node = self._nodes[node.low], self._nodes[node.high]
            touches_low = low_node.level == lower_level
            touches_high = high_node.level == lower_level
            if not (touches_low or touches_high):
                continue
            f00, f01 = (
                (low_node.low, low_node.high) if touches_low else (node.low, node.low)
            )
            f10, f11 = (
                (high_node.low, high_node.high)
                if touches_high
                else (node.high, node.high)
            )
            quads[node_id] = (f00, f01, f10, f11)

        for node_id in upper:
            node = self._nodes[node_id]
            del self._unique[(level, node.low, node.high)]
        for node_id in lower:
            node = self._nodes[node_id]
            del self._unique[(lower_level, node.low, node.high)]
        upper_set = self._level_nodes.setdefault(level, set())
        lower_set = self._level_nodes.setdefault(lower_level, set())

        # Lower nodes float up: their variable now sits at ``level`` and
        # their children (at deeper levels) are untouched.
        for node_id in lower:
            node = self._nodes[node_id]
            self._nodes[node_id] = _Node(level, node.low, node.high)
            self._unique[(level, node.low, node.high)] = node_id
            lower_set.discard(node_id)
            upper_set.add(node_id)
        # Solitary upper nodes sink unchanged below the swapped variable.
        for node_id in upper:
            if node_id in quads:
                continue
            node = self._nodes[node_id]
            self._nodes[node_id] = _Node(lower_level, node.low, node.high)
            self._unique[(lower_level, node.low, node.high)] = node_id
            upper_set.discard(node_id)
            lower_set.add(node_id)
        # Interacting nodes are rebuilt with the two variables exchanged:
        # f = u ? f1 : f0  becomes  v ? (u ? f11 : f01) : (u ? f10 : f00).
        # Both cofactors genuinely depend on u (an interacting node has a
        # reduced child over v), so the node stays at the upper level.
        for node_id, (f00, f01, f10, f11) in quads.items():
            low = self._mk(lower_level, f00, f10)
            high = self._mk(lower_level, f01, f11)
            self._nodes[node_id] = _Node(level, low, high)
            self._unique[(level, low, high)] = node_id
            # stays in upper_set

        name_a, name_b = self._var_names[level], self._var_names[lower_level]
        self._var_names[level], self._var_names[lower_level] = name_b, name_a
        self._var_ids[name_a], self._var_ids[name_b] = lower_level, level
        self._support_cache.clear()

    # ------------------------------------------------------------------
    # Observability hooks
    # ------------------------------------------------------------------
    def _unique_entries(self) -> int:
        return len(self._unique)

    def _computed_entries(self) -> int:
        return len(self._ite_cache)

    def _drop_op_caches(self) -> None:
        self._ite_cache.clear()


#: Registry alias: the dict-of-node manager is the *reference kernel* of
#: the pluggable-kernel layer — unchanged semantics, the differential
#: oracle every other kernel is proven against.
ReferenceKernel = BDD
