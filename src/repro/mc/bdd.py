"""A from-scratch ROBDD (reduced ordered binary decision diagram) package.

Implements the classic Bryant construction: a unique table guaranteeing
canonicity, ``ite`` as the universal connective with memoisation,
existential quantification, variable renaming, and satisfying-assignment
counting.  This is the substrate for the symbolic CTL checker
(:mod:`repro.mc.symbolic`) — the reproduction's analogue of NuSMV's
BDD engine.

Nodes are integers: 0 (false terminal), 1 (true terminal), and >= 2 for
internal nodes stored as (level, low, high) triples.  Variable order is the
order of :meth:`BDD.add_var` calls — *initially*: the order can later be
improved in place by sifting-based dynamic reordering (:meth:`sift`,
:meth:`maybe_reorder`).  Reordering is id-stable: every node keeps its
integer id and keeps denoting the same boolean function, so ids held by
callers (relations, reachable sets, frontier lists, formula caches) stay
valid across reorders.  Long-lived ids must be registered with
:meth:`protect` so the mark-and-sweep collector that runs around sifting
(:meth:`collect`) knows the live roots.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class _Node:
    level: int
    low: int
    high: int


#: Sentinel level of the two terminals — below every real variable.
_TERMINAL_LEVEL = 1 << 30


class BDD:
    """A BDD manager: all nodes live in one shared, reduced graph."""

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        self._nodes: list[_Node | None] = [
            _Node(level=_TERMINAL_LEVEL, low=0, high=0),   # 0: false terminal
            _Node(level=_TERMINAL_LEVEL, low=1, high=1),   # 1: true terminal
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        #: Memoized support sets (level frozensets per node id); dropped on
        #: reorder (levels shift) and collection (ids die).
        self._support_cache: dict[int, frozenset[int]] = {}
        self._var_names: list[str] = []
        self._var_ids: dict[str, int] = {}
        #: Live nodes per level (maintained by _mk / collect / swaps).
        self._level_nodes: dict[int, set[int]] = {}
        #: Refcounted GC roots: node id -> protect count.
        self._protected: dict[int, int] = {}
        #: Dynamic-reordering configuration (see set_auto_reorder).
        self._reorder_groups: list[list[str]] | None = None
        self._reorder_threshold: int | None = None
        #: Table size below which maybe_reorder won't even try a GC —
        #: bumped to 2x the live size after every collection so a table
        #: hovering at the threshold can't trigger a full mark-and-sweep
        #: on each call (the sweep must free at least half the table to
        #: pay for itself).
        self._gc_watermark: int = 0
        #: Number of completed sift passes (observability for tests/benchmarks).
        self.reorder_count = 0

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Register a variable (order = registration order); returns the
        BDD node for the positive literal."""
        if name in self._var_ids:
            return self.var(name)
        self._var_ids[name] = len(self._var_names)
        self._var_names.append(name)
        return self.var(name)

    def var(self, name: str) -> int:
        level = self._var_ids[name]
        return self._mk(level, self.FALSE, self.TRUE)

    def nvar(self, name: str) -> int:
        level = self._var_ids[name]
        return self._mk(level, self.TRUE, self.FALSE)

    def var_count(self) -> int:
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        return self._var_ids[name]

    def name_of(self, level: int) -> str:
        return self._var_names[level]

    def var_order(self) -> list[str]:
        """Variable names from the top of the order to the bottom."""
        return list(self._var_names)

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node_id = self._unique.get(key)
        if node_id is None:
            node_id = len(self._nodes)
            self._nodes.append(_Node(level=level, low=low, high=high))
            self._unique[key] = node_id
            self._level_nodes.setdefault(level, set()).add(node_id)
        return node_id

    def node(self, node_id: int) -> _Node:
        return self._nodes[node_id]

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else: f ? g : h — the universal boolean connective."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._nodes[f].level, self._nodes[g].level, self._nodes[h].level)
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node_id: int, level: int) -> tuple[int, int]:
        node = self._nodes[node_id]
        if node.level != level:
            return node_id, node_id
        return node.low, node.high

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def not_(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.TRUE)

    def iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def conj(self, items: list[int]) -> int:
        result = self.TRUE
        for item in items:
            result = self.and_(result, item)
        return result

    def disj(self, items: list[int]) -> int:
        result = self.FALSE
        for item in items:
            result = self.or_(result, item)
        return result

    # ------------------------------------------------------------------
    # Quantification and substitution
    # ------------------------------------------------------------------
    def exists(self, names: list[str], f: int) -> int:
        levels = sorted(self._var_ids[name] for name in names)
        return self._exists(frozenset(levels), f, {})

    def _exists(self, levels: frozenset[int], f: int, cache: dict[int, int]) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        low = self._exists(levels, node.low, cache)
        high = self._exists(levels, node.high, cache)
        if node.level in levels:
            result = self.or_(low, high)
        else:
            result = self._mk(node.level, low, high)
        cache[f] = result
        return result

    def forall(self, names: list[str], f: int) -> int:
        return self.not_(self.exists(names, self.not_(f)))

    def and_exists(self, names: list[str], f: int, g: int) -> int:
        """The relational product ``exists names . f & g`` in one pass.

        The workhorse of symbolic image computation (``names`` is one
        variable block, e.g. all next-state variables): fusing the
        conjunction with the quantification never materializes ``f & g``,
        whose BDD can be far larger than the quantified result.
        """
        levels = frozenset(self._var_ids[name] for name in names)
        return self._and_exists(levels, f, g, {})

    def _and_exists(
        self,
        levels: frozenset[int],
        f: int,
        g: int,
        cache: dict[tuple[int, int], int],
    ) -> int:
        if f == self.FALSE or g == self.FALSE:
            return self.FALSE
        if f == self.TRUE and g == self.TRUE:
            return self.TRUE
        if f > g:
            f, g = g, f  # and/exists are symmetric: canonicalize the key
        key = (f, g)
        cached = cache.get(key)
        if cached is not None:
            return cached
        level = min(self._nodes[f].level, self._nodes[g].level)
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        low = self._and_exists(levels, f0, g0, cache)
        if level in levels:
            if low == self.TRUE:
                result = self.TRUE  # short-circuit: the OR is saturated
            else:
                high = self._and_exists(levels, f1, g1, cache)
                result = self.or_(low, high)
        else:
            high = self._and_exists(levels, f1, g1, cache)
            result = self._mk(level, low, high)
        cache[key] = result
        return result

    def and_exists_list(self, names: list[str], conjuncts: list[int]) -> int:
        """``exists names . conjunct_1 & ... & conjunct_k`` with an early
        quantification schedule.

        The partitioned-transition-relation workhorse: a fragment of the
        relation is kept as a *list* of conjuncts (the frontier set, the
        guard atoms, the write cube), and each quantified variable is
        existentially eliminated as soon as no later conjunct mentions it —
        so the intermediate products never carry variables that are about
        to disappear.  Conjuncts are scheduled greedily: at every step the
        one releasing the most quantified variables is merged next.
        """
        levels = frozenset(
            self._var_ids[name] for name in names if name in self._var_ids
        )
        items = list(conjuncts)
        if not items:
            return self.TRUE
        supports = [self._support_levels(f) for f in items]
        remaining = list(range(len(items)))
        acc = self.TRUE
        live: set[int] = set()   # quantified levels already inside ``acc``
        while remaining:
            best = None
            best_key: tuple[int, int, int] | None = None
            for idx in remaining:
                others: set[int] = set()
                for j in remaining:
                    if j != idx:
                        others |= supports[j]
                releasable = (live | (supports[idx] & levels)) - others
                # Most released vars first; among ties prefer the smaller
                # conjunct support, then input order (determinism).
                key = (-len(releasable), len(supports[idx]), idx)
                if best_key is None or key < best_key:
                    best, best_key = idx, key
            assert best is not None
            others = set()
            for j in remaining:
                if j != best:
                    others |= supports[j]
            releasable = (live | (supports[best] & levels)) - others
            if releasable:
                acc = self._and_exists(frozenset(releasable), acc, items[best], {})
            else:
                acc = self.and_(acc, items[best])
            live = (live | (supports[best] & levels)) - releasable
            remaining.remove(best)
            if acc == self.FALSE:
                return self.FALSE
        return acc

    def support(self, f: int) -> frozenset[str]:
        """The set of variables ``f`` depends on."""
        return frozenset(
            self._var_names[level] for level in self._support_levels(f)
        )

    def _support_levels(self, f: int) -> frozenset[int]:
        if f in (self.TRUE, self.FALSE):
            return frozenset()
        cached = self._support_cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        result = (
            self._support_levels(node.low)
            | self._support_levels(node.high)
            | {node.level}
        )
        self._support_cache[f] = result
        return result

    def rename(self, f: int, mapping: dict[str, str]) -> int:
        """Substitute variables (e.g. next-state x' -> x).

        Implemented by composition: safe for arbitrary mappings, including
        non-order-preserving ones.
        """
        level_map = {
            self._var_ids[old]: self._var_ids[new] for old, new in mapping.items()
        }
        return self._rename(f, level_map, {})

    def _rename(self, f: int, level_map: dict[int, int], cache: dict[int, int]) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        low = self._rename(node.low, level_map, cache)
        high = self._rename(node.high, level_map, cache)
        target = level_map.get(node.level, node.level)
        variable = self._mk(target, self.FALSE, self.TRUE)
        result = self.ite(variable, high, low)
        cache[f] = result
        return result

    def restrict(self, f: int, assignment: dict[str, bool]) -> int:
        levels = {self._var_ids[n]: v for n, v in assignment.items()}
        return self._restrict(f, levels, {})

    def _restrict(
        self, f: int, levels: dict[int, bool], cache: dict[int, int]
    ) -> int:
        if f in (self.TRUE, self.FALSE):
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        node = self._nodes[f]
        if node.level in levels:
            branch = node.high if levels[node.level] else node.low
            result = self._restrict(branch, levels, cache)
        else:
            low = self._restrict(node.low, levels, cache)
            high = self._restrict(node.high, levels, cache)
            result = self._mk(node.level, low, high)
        cache[f] = result
        return result

    # ------------------------------------------------------------------
    # Evaluation / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool:
        node_id = f
        while node_id not in (self.TRUE, self.FALSE):
            node = self._nodes[node_id]
            name = self._var_names[node.level]
            node_id = node.high if assignment.get(name, False) else node.low
        return node_id == self.TRUE

    def count_sat(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        total_vars = nvars if nvars is not None else len(self._var_names)
        cache: dict[int, int] = {}

        def walk(node_id: int) -> tuple[int, int]:
            """Returns (count, level) where count assumes the node's level."""
            if node_id == self.FALSE:
                return 0, total_vars
            if node_id == self.TRUE:
                return 1, total_vars
            node = self._nodes[node_id]
            if node_id in cache:
                return cache[node_id], node.level
            low_count, low_level = walk(node.low)
            high_count, high_level = walk(node.high)
            count = low_count * (1 << (low_level - node.level - 1)) + high_count * (
                1 << (high_level - node.level - 1)
            )
            cache[node_id] = count
            return count, node.level

        count, level = walk(f)
        return count * (1 << level)

    def any_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment, or None."""
        if f == self.FALSE:
            return None
        assignment: dict[str, bool] = {}
        node_id = f
        while node_id != self.TRUE:
            node = self._nodes[node_id]
            name = self._var_names[node.level]
            if node.high != self.FALSE:
                assignment[name] = True
                node_id = node.high
            else:
                assignment[name] = False
                node_id = node.low
        return assignment

    def size(self, f: int) -> int:
        """Number of distinct nodes in the BDD rooted at ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node_id = stack.pop()
            if node_id in seen or node_id in (self.TRUE, self.FALSE):
                continue
            seen.add(node_id)
            node = self._nodes[node_id]
            stack.append(node.low)
            stack.append(node.high)
        return len(seen) + 2

    # ------------------------------------------------------------------
    # Garbage collection (roots must be registered or passed explicitly)
    # ------------------------------------------------------------------
    def protect(self, f: int) -> int:
        """Register ``f`` as a GC root (refcounted); returns ``f``."""
        self._protected[f] = self._protected.get(f, 0) + 1
        return f

    def unprotect(self, f: int) -> None:
        count = self._protected.get(f, 0)
        if count <= 1:
            self._protected.pop(f, None)
        else:
            self._protected[f] = count - 1

    def live_size(self) -> int:
        """Number of non-terminal nodes currently in the node table."""
        return sum(len(nodes) for nodes in self._level_nodes.values())

    def allocated_nodes(self) -> int:
        """Total nodes ever allocated (the peak table size: slots are
        never reused, so this is monotone — benchmarks report it as the
        peak node count)."""
        return len(self._nodes)

    def collect(self, roots: tuple[int, ...] | list[int] = ()) -> int:
        """Mark-and-sweep from ``roots`` + every protected id.

        Dead nodes leave the unique table and the level index and their
        slots are cleared (ids are never reused, so a dangling reference
        fails loudly instead of silently aliasing another function).
        Returns the number of collected nodes.  All memo caches are
        dropped: they may reference dead ids.
        """
        marked: set[int] = set()
        stack = [*roots, *self._protected]
        while stack:
            node_id = stack.pop()
            if node_id in (self.TRUE, self.FALSE) or node_id in marked:
                continue
            marked.add(node_id)
            node = self._nodes[node_id]
            stack.append(node.low)
            stack.append(node.high)
        collected = 0
        for node_id in range(2, len(self._nodes)):
            node = self._nodes[node_id]
            if node is None or node_id in marked:
                continue
            del self._unique[(node.level, node.low, node.high)]
            self._level_nodes[node.level].discard(node_id)
            self._nodes[node_id] = None
            collected += 1
        self._ite_cache.clear()
        self._support_cache.clear()
        return collected

    # ------------------------------------------------------------------
    # Dynamic variable reordering (Rudell-style sifting, in place)
    # ------------------------------------------------------------------
    def swap_adjacent(self, level: int) -> None:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Every node id keeps denoting the same boolean function: nodes at
        the two levels are re-expressed over the swapped order (the classic
        variable-swap), nodes elsewhere are untouched.  Canonicity is
        preserved — the unique-table entries of both levels are rebuilt.
        """
        if not 0 <= level < len(self._var_names) - 1:
            raise ValueError(f"cannot swap level {level} of {len(self._var_names)}")
        lower_level = level + 1
        upper = list(self._level_nodes.get(level, ()))
        lower = list(self._level_nodes.get(lower_level, ()))

        # Cofactor quadruples of the interacting upper nodes, computed
        # against the *original* structure before anything moves.
        quads: dict[int, tuple[int, int, int, int]] = {}
        for node_id in upper:
            node = self._nodes[node_id]
            low_node, high_node = self._nodes[node.low], self._nodes[node.high]
            touches_low = low_node.level == lower_level
            touches_high = high_node.level == lower_level
            if not (touches_low or touches_high):
                continue
            f00, f01 = (
                (low_node.low, low_node.high) if touches_low else (node.low, node.low)
            )
            f10, f11 = (
                (high_node.low, high_node.high)
                if touches_high
                else (node.high, node.high)
            )
            quads[node_id] = (f00, f01, f10, f11)

        for node_id in upper:
            node = self._nodes[node_id]
            del self._unique[(level, node.low, node.high)]
        for node_id in lower:
            node = self._nodes[node_id]
            del self._unique[(lower_level, node.low, node.high)]
        upper_set = self._level_nodes.setdefault(level, set())
        lower_set = self._level_nodes.setdefault(lower_level, set())

        # Lower nodes float up: their variable now sits at ``level`` and
        # their children (at deeper levels) are untouched.
        for node_id in lower:
            node = self._nodes[node_id]
            self._nodes[node_id] = _Node(level, node.low, node.high)
            self._unique[(level, node.low, node.high)] = node_id
            lower_set.discard(node_id)
            upper_set.add(node_id)
        # Solitary upper nodes sink unchanged below the swapped variable.
        for node_id in upper:
            if node_id in quads:
                continue
            node = self._nodes[node_id]
            self._nodes[node_id] = _Node(lower_level, node.low, node.high)
            self._unique[(lower_level, node.low, node.high)] = node_id
            upper_set.discard(node_id)
            lower_set.add(node_id)
        # Interacting nodes are rebuilt with the two variables exchanged:
        # f = u ? f1 : f0  becomes  v ? (u ? f11 : f01) : (u ? f10 : f00).
        # Both cofactors genuinely depend on u (an interacting node has a
        # reduced child over v), so the node stays at the upper level.
        for node_id, (f00, f01, f10, f11) in quads.items():
            low = self._mk(lower_level, f00, f10)
            high = self._mk(lower_level, f01, f11)
            self._nodes[node_id] = _Node(level, low, high)
            self._unique[(level, low, high)] = node_id
            # stays in upper_set

        name_a, name_b = self._var_names[level], self._var_names[lower_level]
        self._var_names[level], self._var_names[lower_level] = name_b, name_a
        self._var_ids[name_a], self._var_ids[name_b] = lower_level, level
        self._support_cache.clear()

    def _swap_blocks(self, start: int, size_a: int, size_b: int) -> None:
        """Exchange the adjacent variable blocks [start, start+size_a) and
        [start+size_a, start+size_a+size_b), preserving the internal order
        of both blocks (a sequence of adjacent swaps)."""
        for moved in range(size_a):
            position = start + size_a - 1 - moved
            for step in range(size_b):
                self.swap_adjacent(position + step)

    def sift(
        self,
        groups: list[list[str]] | None = None,
        roots: tuple[int, ...] | list[int] = (),
        max_groups: int | None = None,
        max_growth: float = 2.0,
    ) -> None:
        """Sifting-based dynamic reordering over variable *groups*.

        Each group (default: every variable on its own) is moved as one
        block through every position of the order; the position minimizing
        the node table is kept.  Grouping is how the encoder preserves its
        interleaved current/next pairing invariant: passing the (x, y)
        pairs as groups keeps each pair adjacent and in x-before-y order
        no matter where sifting parks it.

        ``roots`` (plus every :meth:`protect`-ed id) feed the collector:
        garbage is swept before sifting and between groups so the size
        metric tracks live nodes.  A direction of travel is abandoned once
        the table grows past ``max_growth`` times the best size seen.
        """
        if len(self._var_names) < 2:
            return
        if groups is None:
            blocks = [[name] for name in self._var_names]
        else:
            blocks = [list(group) for group in groups]
            covered = [name for block in blocks for name in block]
            if sorted(covered) != sorted(self._var_names):
                raise ValueError("groups must partition the variable set")
            for block in blocks:
                levels = sorted(self._var_ids[name] for name in block)
                if levels != list(range(levels[0], levels[0] + len(block))):
                    raise ValueError(f"group {block} is not contiguous in the order")
        self.collect(roots)

        def population(block: list[str]) -> int:
            return sum(
                len(self._level_nodes.get(self._var_ids[name], ()))
                for name in block
            )

        by_population = sorted(blocks, key=population, reverse=True)
        if max_groups is not None:
            by_population = by_population[:max_groups]
        for block in by_population:
            self._sift_block(blocks, block, max_growth)
            self.collect(roots)
        self._ite_cache.clear()
        self.reorder_count += 1

    def _sift_block(
        self, blocks: list[list[str]], block: list[str], max_growth: float
    ) -> None:
        """Move one block through every position; settle at the best."""
        layout = sorted(blocks, key=lambda b: self._var_ids[b[0]])
        position = layout.index(block)

        def swap_with_next(index: int) -> None:
            start = sum(len(layout[i]) for i in range(index))
            self._swap_blocks(start, len(layout[index]), len(layout[index + 1]))
            layout[index], layout[index + 1] = layout[index + 1], layout[index]

        best_size = self.live_size()
        best_position = position
        limit = int(best_size * max_growth) + 1

        current = position
        while current < len(layout) - 1:    # travel down
            swap_with_next(current)
            current += 1
            size = self.live_size()
            if size < best_size:
                best_size, best_position = size, current
                limit = int(best_size * max_growth) + 1
            if size > limit:
                break
        while current > 0:                  # travel back up, past the start
            swap_with_next(current - 1)
            current -= 1
            size = self.live_size()
            if size < best_size:
                best_size, best_position = size, current
                limit = int(best_size * max_growth) + 1
            if size > limit and current <= best_position:
                break
        while current < best_position:      # settle on the best position
            swap_with_next(current)
            current += 1
        while current > best_position:
            swap_with_next(current - 1)
            current -= 1

    # ------------------------------------------------------------------
    # Automatic reordering trigger
    # ------------------------------------------------------------------
    def set_auto_reorder(
        self, groups: list[list[str]] | None, threshold: int
    ) -> None:
        """Arm :meth:`maybe_reorder`: once the live node table outgrows
        ``threshold``, the next call sifts ``groups`` and doubles the
        threshold (CUDD's classic growth policy)."""
        self._reorder_groups = groups if groups is not None else None
        self._reorder_threshold = threshold
        self._gc_watermark = 0

    def disable_auto_reorder(self) -> None:
        """Disarm :meth:`maybe_reorder` (e.g. once the owner of the
        manager can no longer enumerate every live root)."""
        self._reorder_threshold = None

    def maybe_reorder(self, extra_roots: tuple[int, ...] | list[int] = ()) -> bool:
        """Sift if the node table outgrew the armed threshold.

        Only call at *safe points*: no BDD operation may be mid-recursion,
        and every live id must be protected or passed via ``extra_roots``.
        Garbage is collected first — if dead intermediates alone explain
        the growth, collection is the whole fix and the (far more
        expensive) sift is skipped; sifting runs only when *live* nodes
        outgrew the threshold, i.e. the order itself is the problem.
        Returns True when a reorder ran.
        """
        if self._reorder_threshold is None:
            return False
        size = self.live_size()
        if size <= self._reorder_threshold or size <= self._gc_watermark:
            return False
        self.collect(tuple(extra_roots))
        live = self.live_size()
        self._gc_watermark = 2 * live
        if live <= self._reorder_threshold:
            return False
        self.sift(self._reorder_groups, roots=tuple(extra_roots))
        live = self.live_size()
        self._gc_watermark = 2 * live
        self._reorder_threshold = max(self._reorder_threshold, 2 * live)
        return True
