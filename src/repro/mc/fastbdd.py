"""The fast BDD kernel: flat arrays, packed keys, iterative traversals.

Same contract as the reference kernel (:class:`repro.mc.bdd.BDD`) —
integer node ids with ``FALSE == 0`` / ``TRUE == 1``, id-stable grouped
sifting, refcounted :meth:`protect` roots, a mark-and-sweep
:meth:`collect` whose cleared slots are never reused — but engineered
for CPython throughput instead of readability:

* The node table is three flat parallel ``array('q')`` columns
  ``(level, low, high)`` indexed by node id.  A node access is two or
  three C-array reads instead of a list indirection plus dataclass
  attribute lookups, and the table is ~10x smaller in memory.
* The unique table and every computed table key on *packed machine
  integers* — one ``(level << 56) | (low << 28) | high`` int per triple
  — in CPython's open-addressed hash tables, skipping per-probe tuple
  allocation and triple hashing.
* ``and``/``or``/``not``/``ite``, quantification, renaming, restriction
  and counting run as iterative explicit-stack loops (no Python-level
  recursion): stack frames are packed ints too, and the hot loops bind
  every table to a local.
* :meth:`and_exists_list` keeps the exact greedy early-quantification
  schedule of the base class but runs it on integer bitmask supports.

The kernel is *proven* against the reference manager, not trusted: the
cross-kernel differential suite (``tests/test_backends_differential.py``
and the fuzz driver's ``--kernel both`` mode) checks that both kernels
produce identical violation sets and verdicts on every Table-4, MalIoT,
and fuzz-generated environment.

Node ids are limited to 28 bits (268M nodes — far beyond what fits in
memory) so three ids pack into one small-ish int.  Collected slots get
``level = -1`` and out-of-range children so a dangling reference blows
up with an ``IndexError`` instead of silently denoting another function.
"""

from __future__ import annotations

from array import array

from repro.mc.kernel import TERMINAL_LEVEL, KernelBase

#: Node-id field width used for key/frame packing.
_SH = 28
_ID_MASK = (1 << _SH) - 1
#: Child sentinel for collected slots: packs losslessly into a 28-bit
#: field yet always indexes out of range — dangling uses fail loudly.
_DEAD_CHILD = _ID_MASK
#: Level sentinel for collected slots (real levels are >= 0).
_DEAD_LEVEL = -1

#: Phase/ready bits for packed stack frames.
_READY1 = 1 << 60          # unary loops: frame = node (+ _READY1)
_READY2 = 1 << 56          # binary loops: frame = (a << 28) | b (+ _READY2)
_READY3 = 1 << 84          # ite: frame = (f << 56) | (g << 28) | h (+ _READY3)
_PH = 58                   # and_exists: frame = (phase << 58) | (a << 28) | b
_PH_MASK = (1 << _PH) - 1


class FastKernel(KernelBase):
    """Array-backed BDD manager implementing the kernel protocol."""

    KERNEL_NAME = "fast"

    def __init__(self) -> None:
        super().__init__()
        # Parallel node columns; slots 0/1 are the terminals.
        self._level = array("q", (TERMINAL_LEVEL, TERMINAL_LEVEL))
        self._low = array("q", (0, 1))
        self._high = array("q", (0, 1))
        #: (level, low, high) packed int -> node id.
        self._unique: dict[int, int] = {}
        # Per-operation computed tables (packed-int keyed, unbounded
        # until collect()).
        self._and_cache: dict[int, int] = {}
        self._or_cache: dict[int, int] = {}
        self._not_cache: dict[int, int] = {}
        self._andnot_cache: dict[int, int] = {}
        self._ite_cache: dict[int, int] = {}
        #: Persistent and-exists computed tables, one per quantifier
        #: mask.  Image fixpoints re-pose the same (qmask, f, g)
        #: subproblems across iterations, so keeping these across calls
        #: (the reference kernel starts fresh every call) is where the
        #: relational product stops dominating profiles.  A mask keys
        #: *levels*, so these go stale the moment levels move — every
        #: cache-dropping path (collect, sift) clears them.
        self._ae_caches: dict[int, dict[int, int]] = {}
        #: Same, for plain existential quantification.
        self._ex_caches: dict[int, dict[int, int]] = {}
        #: Whole-query memo for and_exists_list products.
        self._ael_cache: dict[tuple, int] = {}
        #: node id -> bitmask of support levels.
        self._support_mask_cache: dict[int, int] = {}
        #: Live (non-terminal, non-collected) node count — O(1) live_size.
        self._live = 0
        #: _level_nodes is rebuilt lazily: hot loops only mark it stale.
        self._index_dirty = False

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level << 56) | (low << _SH) | high
        node_id = self._unique.get(key)
        if node_id is None:
            node_id = len(self._level)
            if node_id >= _DEAD_CHILD:
                raise RuntimeError("fast kernel node-id space exhausted")
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node_id
            self._live += 1
            if not self._index_dirty:
                self._level_nodes.setdefault(level, set()).add(node_id)
        return node_id

    def node_triple(self, node_id: int) -> tuple[int, int, int] | None:
        """The (level, low, high) triple of a node, or None when the slot
        was collected — the kernel-portable introspection hook."""
        level = self._level[node_id]
        if level == _DEAD_LEVEL:
            return None
        return (level, self._low[node_id], self._high[node_id])

    def allocated_nodes(self) -> int:
        """Total nodes ever allocated (the peak table size: slots are
        never reused, so this is monotone)."""
        return len(self._level)

    def live_size(self) -> int:
        return self._live

    def _ensure_index(self) -> None:
        """Rebuild the per-level node index after hot loops staled it."""
        if not self._index_dirty:
            return
        level = self._level
        index: dict[int, set[int]] = {}
        for node_id in range(2, len(level)):
            lv = level[node_id]
            if lv == _DEAD_LEVEL:
                continue
            bucket = index.get(lv)
            if bucket is None:
                index[lv] = bucket = set()
            bucket.add(node_id)
        self._level_nodes = index
        self._index_dirty = False

    # ------------------------------------------------------------------
    # Binary connectives (iterative, specialized)
    # ------------------------------------------------------------------
    def and_(self, f: int, g: int) -> int:
        if f > g:
            f, g = g, f
        if f == 0:
            return 0
        if f == 1:
            return g
        if f == g:
            return f
        cache = self._and_cache
        root_key = (f << _SH) | g
        result = cache.get(root_key)
        if result is not None:
            self._cache_lookups += 1
            self._cache_hits += 1
            return result
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        lookups = hits = created = 0
        stack = [root_key]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY2:
                lookups += 1
                if frame in cache:
                    hits += 1
                    continue
                a = frame >> _SH
                b = frame & _ID_MASK
                la = level[a]
                lb = level[b]
                if la < lb:
                    a0 = low[a]; a1 = high[a]; b0 = b; b1 = b
                elif lb < la:
                    a0 = a; a1 = a; b0 = low[b]; b1 = high[b]
                else:
                    a0 = low[a]; a1 = high[a]; b0 = low[b]; b1 = high[b]
                push(frame | _READY2)
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 > 1 and a1 != b1:
                    push((a1 << _SH) | b1)
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 > 1 and a0 != b0:
                    push((a0 << _SH) | b0)
            else:
                key = frame ^ _READY2
                a = key >> _SH
                b = key & _ID_MASK
                la = level[a]
                lb = level[b]
                if la < lb:
                    lv = la; a0 = low[a]; a1 = high[a]; b0 = b; b1 = b
                elif lb < la:
                    lv = lb; a0 = a; a1 = a; b0 = low[b]; b1 = high[b]
                else:
                    lv = la; a0 = low[a]; a1 = high[a]; b0 = low[b]; b1 = high[b]
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 == 0:
                    r0 = 0
                elif a0 == 1 or a0 == b0:
                    r0 = b0
                else:
                    r0 = cache[(a0 << _SH) | b0]
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 == 0:
                    r1 = 0
                elif a1 == 1 or a1 == b1:
                    r1 = b1
                else:
                    r1 = cache[(a1 << _SH) | b1]
                if r0 == r1:
                    cache[key] = r0
                    continue
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[key] = res
        self._cache_lookups += lookups
        self._cache_hits += hits
        if created:
            self._live += created
            self._index_dirty = True
        return cache[root_key]

    def and_not(self, f: int, g: int) -> int:
        """Fused ``f & ~g`` — no canonicalization (not symmetric), its
        own computed table, ``not_`` only on the cofactor pairs whose
        left side collapsed to TRUE."""
        if f == 0 or g == 1 or f == g:
            return 0
        if g == 0:
            return f
        if f == 1:
            return self.not_(g)
        cache = self._andnot_cache
        root_key = (f << _SH) | g
        result = cache.get(root_key)
        if result is not None:
            self._cache_lookups += 1
            self._cache_hits += 1
            return result
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        not_ = self.not_
        lookups = hits = created = 0
        stack = [root_key]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY2:
                lookups += 1
                if frame in cache:
                    hits += 1
                    continue
                a = frame >> _SH
                b = frame & _ID_MASK
                la = level[a]
                lb = level[b]
                if la < lb:
                    a0 = low[a]; a1 = high[a]; b0 = b; b1 = b
                elif lb < la:
                    a0 = a; a1 = a; b0 = low[b]; b1 = high[b]
                else:
                    a0 = low[a]; a1 = high[a]; b0 = low[b]; b1 = high[b]
                push(frame | _READY2)
                if a1 > 1 and 1 < b1 != a1:
                    push((a1 << _SH) | b1)
                if a0 > 1 and 1 < b0 != a0:
                    push((a0 << _SH) | b0)
            else:
                key = frame ^ _READY2
                a = key >> _SH
                b = key & _ID_MASK
                la = level[a]
                lb = level[b]
                if la < lb:
                    lv = la; a0 = low[a]; a1 = high[a]; b0 = b; b1 = b
                elif lb < la:
                    lv = lb; a0 = a; a1 = a; b0 = low[b]; b1 = high[b]
                else:
                    lv = la; a0 = low[a]; a1 = high[a]; b0 = low[b]; b1 = high[b]
                if a0 == 0 or b0 == 1 or a0 == b0:
                    r0 = 0
                elif b0 == 0:
                    r0 = a0
                elif a0 == 1:
                    r0 = not_(b0)
                else:
                    r0 = cache[(a0 << _SH) | b0]
                if a1 == 0 or b1 == 1 or a1 == b1:
                    r1 = 0
                elif b1 == 0:
                    r1 = a1
                elif a1 == 1:
                    r1 = not_(b1)
                else:
                    r1 = cache[(a1 << _SH) | b1]
                if r0 == r1:
                    cache[key] = r0
                    continue
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[key] = res
        self._cache_lookups += lookups
        self._cache_hits += hits
        if created:
            self._live += created
            self._index_dirty = True
        return cache[root_key]

    def or_(self, f: int, g: int) -> int:
        if f > g:
            f, g = g, f
        if f == 1:
            return 1
        if f == 0 or f == g:
            return g
        cache = self._or_cache
        root_key = (f << _SH) | g
        result = cache.get(root_key)
        if result is not None:
            self._cache_lookups += 1
            self._cache_hits += 1
            return result
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        lookups = hits = created = 0
        stack = [root_key]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY2:
                lookups += 1
                if frame in cache:
                    hits += 1
                    continue
                a = frame >> _SH
                b = frame & _ID_MASK
                la = level[a]
                lb = level[b]
                if la < lb:
                    a0 = low[a]; a1 = high[a]; b0 = b; b1 = b
                elif lb < la:
                    a0 = a; a1 = a; b0 = low[b]; b1 = high[b]
                else:
                    a0 = low[a]; a1 = high[a]; b0 = low[b]; b1 = high[b]
                push(frame | _READY2)
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 > 1 and a1 != b1:
                    push((a1 << _SH) | b1)
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 > 1 and a0 != b0:
                    push((a0 << _SH) | b0)
            else:
                key = frame ^ _READY2
                a = key >> _SH
                b = key & _ID_MASK
                la = level[a]
                lb = level[b]
                if la < lb:
                    lv = la; a0 = low[a]; a1 = high[a]; b0 = b; b1 = b
                elif lb < la:
                    lv = lb; a0 = a; a1 = a; b0 = low[b]; b1 = high[b]
                else:
                    lv = la; a0 = low[a]; a1 = high[a]; b0 = low[b]; b1 = high[b]
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 == 1:
                    r0 = 1
                elif a0 == 0 or a0 == b0:
                    r0 = b0
                else:
                    r0 = cache[(a0 << _SH) | b0]
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 == 1:
                    r1 = 1
                elif a1 == 0 or a1 == b1:
                    r1 = b1
                else:
                    r1 = cache[(a1 << _SH) | b1]
                if r0 == r1:
                    cache[key] = r0
                    continue
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[key] = res
        self._cache_lookups += lookups
        self._cache_hits += hits
        if created:
            self._live += created
            self._index_dirty = True
        return cache[root_key]

    def not_(self, f: int) -> int:
        if f < 2:
            return 1 - f
        cache = self._not_cache
        result = cache.get(f)
        if result is not None:
            self._cache_lookups += 1
            self._cache_hits += 1
            return result
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        lookups = hits = created = 0
        stack = [f]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY1:
                lookups += 1
                if frame in cache:
                    hits += 1
                    continue
                push(frame | _READY1)
                c1 = high[frame]
                if c1 > 1:
                    push(c1)
                c0 = low[frame]
                if c0 > 1:
                    push(c0)
            else:
                node = frame ^ _READY1
                c0 = low[node]
                c1 = high[node]
                r0 = (1 - c0) if c0 < 2 else cache[c0]
                r1 = (1 - c1) if c1 < 2 else cache[c1]
                # A reduced node has c0 != c1, so r0 != r1 always.
                lv = level[node]
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[node] = res
        self._cache_lookups += lookups
        self._cache_hits += hits
        if created:
            self._live += created
            self._index_dirty = True
        return cache[f]

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else: f ? g : h — the universal boolean connective."""
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        cache = self._ite_cache
        root_key = (f << 56) | (g << _SH) | h
        result = cache.get(root_key)
        if result is not None:
            self._cache_lookups += 1
            self._cache_hits += 1
            return result
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        lookups = hits = created = 0
        stack = [root_key]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY3:
                lookups += 1
                if frame in cache:
                    hits += 1
                    continue
                a = frame >> 56
                b = (frame >> _SH) & _ID_MASK
                c = frame & _ID_MASK
                la = level[a]
                lb = level[b]
                lc = level[c]
                lv = la if la < lb else lb
                if lc < lv:
                    lv = lc
                if la == lv:
                    a0 = low[a]; a1 = high[a]
                else:
                    a0 = a; a1 = a
                if lb == lv:
                    b0 = low[b]; b1 = high[b]
                else:
                    b0 = b; b1 = b
                if lc == lv:
                    c0 = low[c]; c1 = high[c]
                else:
                    c0 = c; c1 = c
                push(frame | _READY3)
                if a1 > 1 and b1 != c1 and not (b1 == 1 and c1 == 0):
                    push((a1 << 56) | (b1 << _SH) | c1)
                if a0 > 1 and b0 != c0 and not (b0 == 1 and c0 == 0):
                    push((a0 << 56) | (b0 << _SH) | c0)
            else:
                key = frame ^ _READY3
                a = key >> 56
                b = (key >> _SH) & _ID_MASK
                c = key & _ID_MASK
                la = level[a]
                lb = level[b]
                lc = level[c]
                lv = la if la < lb else lb
                if lc < lv:
                    lv = lc
                if la == lv:
                    a0 = low[a]; a1 = high[a]
                else:
                    a0 = a; a1 = a
                if lb == lv:
                    b0 = low[b]; b1 = high[b]
                else:
                    b0 = b; b1 = b
                if lc == lv:
                    c0 = low[c]; c1 = high[c]
                else:
                    c0 = c; c1 = c
                if a0 == 1:
                    r0 = b0
                elif a0 == 0:
                    r0 = c0
                elif b0 == c0:
                    r0 = b0
                elif b0 == 1 and c0 == 0:
                    r0 = a0
                else:
                    r0 = cache[(a0 << 56) | (b0 << _SH) | c0]
                if a1 == 1:
                    r1 = b1
                elif a1 == 0:
                    r1 = c1
                elif b1 == c1:
                    r1 = b1
                elif b1 == 1 and c1 == 0:
                    r1 = a1
                else:
                    r1 = cache[(a1 << 56) | (b1 << _SH) | c1]
                if r0 == r1:
                    cache[key] = r0
                    continue
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[key] = res
        self._cache_lookups += lookups
        self._cache_hits += hits
        if created:
            self._live += created
            self._index_dirty = True
        return cache[root_key]

    # ------------------------------------------------------------------
    # Quantification and substitution
    # ------------------------------------------------------------------
    @staticmethod
    def _levels_mask(levels) -> int:
        mask = 0
        for lv in levels:
            mask |= 1 << lv
        return mask

    def _exists(self, levels: frozenset[int], f: int, cache: dict[int, int]) -> int:
        if f < 2:
            return f
        qmask = self._levels_mask(levels)
        # Same persistence story as _and_exists_mask: the node->result
        # table is only a function of (qmask, node), so it is kept
        # per-mask across calls and dropped whenever levels can move.
        cache = self._ex_caches.get(qmask)
        if cache is None:
            cache = self._ex_caches[qmask] = {}
        hit = cache.get(f)
        if hit is not None:
            return hit
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        or_ = self.or_
        created = 0
        stack = [f]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY1:
                if frame in cache:
                    continue
                push(frame | _READY1)
                c1 = high[frame]
                if c1 > 1:
                    push(c1)
                c0 = low[frame]
                if c0 > 1:
                    push(c0)
            else:
                node = frame ^ _READY1
                c0 = low[node]
                c1 = high[node]
                r0 = c0 if c0 < 2 else cache[c0]
                r1 = c1 if c1 < 2 else cache[c1]
                lv = level[node]
                if (qmask >> lv) & 1:
                    cache[node] = or_(r0, r1)
                    continue
                if r0 == r1:
                    cache[node] = r0
                    continue
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[node] = res
        if created:
            self._live += created
            self._index_dirty = True
        return cache[f]

    def _and_exists(self, levels, f: int, g: int, cache: dict) -> int:
        """``exists levels . f & g`` fused — sequential low-then-high
        evaluation preserving the reference kernel's TRUE short-circuit
        (the high subtree is never expanded once the OR is saturated).
        The per-call ``cache`` argument of the base contract is ignored
        in favor of the persistent per-mask table."""
        return self._and_exists_mask(self._levels_mask(levels), f, g)

    def _and_exists_mask(
        self, qmask: int, f: int, g: int, cache: dict[int, int] | None = None
    ) -> int:
        if f == 0 or g == 0:
            return 0
        if f == 1 and g == 1:
            return 1
        if cache is None:
            cache = self._ae_caches.get(qmask)
            if cache is None:
                cache = self._ae_caches[qmask] = {}
        if f > g:
            f, g = g, f  # and/exists are symmetric: canonicalize the key
        root_key = (f << _SH) | g
        result = cache.get(root_key)
        if result is not None:
            self._cache_lookups += 1
            self._cache_hits += 1
            return result
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        or_ = self.or_
        lookups = hits = created = 0
        # Frames: (phase << _PH) | (a << _SH) | b with canonical a <= b.
        # phase 0 = expand low child, 1 = low resolved (short-circuit
        # check, expand high), 2 = combine.
        stack = [root_key]
        push = stack.append
        while stack:
            frame = stack.pop()
            phase = frame >> _PH
            key = frame & _PH_MASK
            if phase == 0:
                lookups += 1
                if key in cache:
                    hits += 1
                    continue
            a = key >> _SH
            b = key & _ID_MASK
            la = level[a]
            lb = level[b]
            if la < lb:
                lv = la; a0 = low[a]; a1 = high[a]; b0 = b; b1 = b
            elif lb < la:
                lv = lb; a0 = a; a1 = a; b0 = low[b]; b1 = high[b]
            else:
                lv = la; a0 = low[a]; a1 = high[a]; b0 = low[b]; b1 = high[b]
            if phase == 0:
                push(key | (1 << _PH))
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 != 0 and not (a0 == 1 and b0 == 1):
                    child = (a0 << _SH) | b0
                    if child not in cache:
                        push(child)
            elif phase == 1:
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 == 0:
                    r0 = 0
                elif a0 == 1 and b0 == 1:
                    r0 = 1
                else:
                    r0 = cache[(a0 << _SH) | b0]
                if r0 == 1 and (qmask >> lv) & 1:
                    cache[key] = 1  # short-circuit: the OR is saturated
                    continue
                push(key | (2 << _PH))
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 != 0 and not (a1 == 1 and b1 == 1):
                    child = (a1 << _SH) | b1
                    if child not in cache:
                        push(child)
            else:
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 == 0:
                    r0 = 0
                elif a0 == 1 and b0 == 1:
                    r0 = 1
                else:
                    r0 = cache[(a0 << _SH) | b0]
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 == 0:
                    r1 = 0
                elif a1 == 1 and b1 == 1:
                    r1 = 1
                else:
                    r1 = cache[(a1 << _SH) | b1]
                if (qmask >> lv) & 1:
                    # Inline or_'s trivial rules; fall through to the
                    # full traversal only for two real operands.
                    if r0 == 1 or r1 == 1:
                        cache[key] = 1
                    elif r0 == r1 or r0 == 0:
                        cache[key] = r1
                    elif r1 == 0:
                        cache[key] = r0
                    else:
                        cache[key] = or_(r0, r1)
                    continue
                if r0 == r1:
                    cache[key] = r0
                    continue
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[key] = res
        self._cache_lookups += lookups
        self._cache_hits += hits
        if created:
            self._live += created
            self._index_dirty = True
        return cache[root_key]

    def conj(self, items: list[int]) -> int:
        """Balanced-tree conjunction.

        The left fold of the base class conjoins every operand into one
        ever-growing accumulator; pairing operands tournament-style keeps
        the intermediates small and the computed-table keys reusable.
        Same canonical result, measurably fewer expanded nodes.
        """
        work = [f for f in items if f != 1]
        if not work:
            return 1
        and_ = self.and_
        while len(work) > 1:
            if 0 in work:
                return 0
            work = [
                and_(work[i], work[i + 1]) if i + 1 < len(work) else work[i]
                for i in range(0, len(work), 2)
            ]
        return work[0]

    def disj(self, items: list[int]) -> int:
        """Balanced-tree disjunction (see :meth:`conj`)."""
        work = [f for f in items if f != 0]
        if not work:
            return 0
        or_ = self.or_
        while len(work) > 1:
            if 1 in work:
                return 1
            work = [
                or_(work[i], work[i + 1]) if i + 1 < len(work) else work[i]
                for i in range(0, len(work), 2)
            ]
        return work[0]

    def and_exists_list(self, names: list[str], conjuncts: list[int]) -> int:
        """Early-quantification relational product over a conjunct list.

        Exactly the greedy schedule of
        :meth:`repro.mc.kernel.KernelBase.and_exists_list` — most
        released variables first, ties to the smaller support then input
        order — but computed on integer bitmasks instead of frozensets
        (``bit_count()`` == set cardinality, ``| & ~`` == set algebra),
        which is where the scheduler's O(k^2) set unions per step stop
        showing up in profiles.
        """
        var_ids = self._var_ids
        qmask = 0
        for name in names:
            lv = var_ids.get(name)
            if lv is not None:
                qmask |= 1 << lv
        items = list(conjuncts)
        if not items:
            return 1
        # Whole-query memo: image computations re-pose identical
        # (qmask, conjuncts) products — e.g. witness extraction re-walks
        # the frontiers the reachability fixpoint already imaged.
        query_key = (qmask, tuple(items))
        ael_cache = self._ael_cache
        hit = ael_cache.get(query_key)
        if hit is not None:
            return hit
        supports = [self._support_mask(f) for f in items]
        remaining = list(range(len(items)))
        acc = 1
        live = 0   # quantified levels already inside ``acc``
        while remaining:
            best = None
            best_key: tuple[int, int, int] | None = None
            for idx in remaining:
                others = 0
                for j in remaining:
                    if j != idx:
                        others |= supports[j]
                releasable = (live | (supports[idx] & qmask)) & ~others
                key = (-releasable.bit_count(), supports[idx].bit_count(), idx)
                if best_key is None or key < best_key:
                    best, best_key = idx, key
            assert best is not None
            others = 0
            for j in remaining:
                if j != best:
                    others |= supports[j]
            releasable = (live | (supports[best] & qmask)) & ~others
            if releasable:
                acc = self._and_exists_mask(releasable, acc, items[best])
            else:
                acc = self.and_(acc, items[best])
            live = (live | (supports[best] & qmask)) & ~releasable
            remaining.remove(best)
            if acc == 0:
                break
        ael_cache[query_key] = acc
        return acc

    def _support_mask(self, f: int) -> int:
        """Bitmask of the levels ``f`` depends on (memoized)."""
        if f < 2:
            return 0
        cache = self._support_mask_cache
        result = cache.get(f)
        if result is not None:
            return result
        level = self._level
        low = self._low
        high = self._high
        stack = [f]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY1:
                if frame in cache:
                    continue
                push(frame | _READY1)
                c1 = high[frame]
                if c1 > 1:
                    push(c1)
                c0 = low[frame]
                if c0 > 1:
                    push(c0)
            else:
                node = frame ^ _READY1
                c0 = low[node]
                c1 = high[node]
                mask = 1 << level[node]
                if c0 > 1:
                    mask |= cache[c0]
                if c1 > 1:
                    mask |= cache[c1]
                cache[node] = mask
        return cache[f]

    def _support_levels(self, f: int) -> frozenset[int]:
        if f < 2:
            return frozenset()
        cached = self._support_cache.get(f)
        if cached is not None:
            return cached
        mask = self._support_mask(f)
        result = frozenset(
            lv for lv in range(mask.bit_length()) if (mask >> lv) & 1
        )
        self._support_cache[f] = result
        return result

    def rename(self, f: int, mapping: dict[str, str]) -> int:
        """Substitute variables (e.g. next-state x' -> x).

        An order-preserving substitution (every support level maps
        strictly below the next — the encoder's y'->x case) is a single
        bottom-up rebuild; anything else falls back to the reference
        kernel's safe-for-arbitrary-mappings ite composition.
        """
        var_ids = self._var_ids
        level_map = {var_ids[old]: var_ids[new] for old, new in mapping.items()}
        if f < 2 or not level_map:
            return f
        support = sorted(self._support_levels(f))
        mapped = [level_map.get(lv, lv) for lv in support]
        if all(mapped[i] < mapped[i + 1] for i in range(len(mapped) - 1)):
            return self._rename_monotone(f, level_map)
        return self._rename_compose(f, level_map)

    def _rename_monotone(self, f: int, level_map: dict[int, int]) -> int:
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        created = 0
        cache: dict[int, int] = {}
        stack = [f]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY1:
                if frame in cache:
                    continue
                push(frame | _READY1)
                c1 = high[frame]
                if c1 > 1:
                    push(c1)
                c0 = low[frame]
                if c0 > 1:
                    push(c0)
            else:
                node = frame ^ _READY1
                c0 = low[node]
                c1 = high[node]
                r0 = c0 if c0 < 2 else cache[c0]
                r1 = c1 if c1 < 2 else cache[c1]
                lv = level[node]
                lv = level_map.get(lv, lv)
                # Monotone maps preserve the node shape: r0 != r1.
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[node] = res
        if created:
            self._live += created
            self._index_dirty = True
        return cache[f]

    def _rename_compose(self, f: int, level_map: dict[int, int]) -> int:
        """General substitution by bottom-up ite composition (safe for
        order-changing maps) — the reference kernel's algorithm."""
        low = self._low
        high = self._high
        level = self._level
        ite = self.ite
        mk = self._mk
        cache: dict[int, int] = {}
        stack = [f]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY1:
                if frame in cache:
                    continue
                push(frame | _READY1)
                c1 = high[frame]
                if c1 > 1:
                    push(c1)
                c0 = low[frame]
                if c0 > 1:
                    push(c0)
            else:
                node = frame ^ _READY1
                c0 = low[node]
                c1 = high[node]
                r0 = c0 if c0 < 2 else cache[c0]
                r1 = c1 if c1 < 2 else cache[c1]
                lv = level[node]
                target = level_map.get(lv, lv)
                variable = mk(target, 0, 1)
                cache[node] = ite(variable, r1, r0)
        return cache[f]

    def restrict(self, f: int, assignment: dict[str, bool]) -> int:
        levels = {self._var_ids[n]: v for n, v in assignment.items()}
        return self._restrict(f, levels, {})

    def _restrict(
        self, f: int, levels: dict[int, bool], cache: dict[int, int]
    ) -> int:
        if f < 2:
            return f
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        created = 0
        stack = [f]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY1:
                if frame in cache:
                    continue
                push(frame | _READY1)
                lv = level[frame]
                if lv in levels:
                    branch = high[frame] if levels[lv] else low[frame]
                    if branch > 1:
                        push(branch)
                else:
                    c1 = high[frame]
                    if c1 > 1:
                        push(c1)
                    c0 = low[frame]
                    if c0 > 1:
                        push(c0)
            else:
                node = frame ^ _READY1
                lv = level[node]
                if lv in levels:
                    branch = high[node] if levels[lv] else low[node]
                    cache[node] = branch if branch < 2 else cache[branch]
                    continue
                c0 = low[node]
                c1 = high[node]
                r0 = c0 if c0 < 2 else cache[c0]
                r1 = c1 if c1 < 2 else cache[c1]
                if r0 == r1:
                    cache[node] = r0
                    continue
                unique_key = (lv << 56) | (r0 << _SH) | r1
                res = unique.get(unique_key)
                if res is None:
                    res = len(level)
                    if res >= _DEAD_CHILD:
                        raise RuntimeError("fast kernel node-id space exhausted")
                    level.append(lv)
                    low.append(r0)
                    high.append(r1)
                    unique[unique_key] = res
                    created += 1
                cache[node] = res
        if created:
            self._live += created
            self._index_dirty = True
        return cache[f]

    # ------------------------------------------------------------------
    # Evaluation / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool:
        level = self._level
        low = self._low
        high = self._high
        names = self._var_names
        node_id = f
        while node_id > 1:
            name = names[level[node_id]]
            node_id = high[node_id] if assignment.get(name, False) else low[node_id]
        return node_id == 1

    def count_sat(self, f: int, nvars: int | None = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        total_vars = nvars if nvars is not None else len(self._var_names)
        if f == 0:
            return 0
        if f == 1:
            return 1 << total_vars
        level = self._level
        low = self._low
        high = self._high
        cache: dict[int, int] = {}
        stack = [f]
        push = stack.append
        while stack:
            frame = stack.pop()
            if frame < _READY1:
                if frame in cache:
                    continue
                push(frame | _READY1)
                c1 = high[frame]
                if c1 > 1:
                    push(c1)
                c0 = low[frame]
                if c0 > 1:
                    push(c0)
            else:
                node = frame ^ _READY1
                c0 = low[node]
                c1 = high[node]
                lv = level[node]
                if c0 < 2:
                    low_count, low_level = c0, total_vars
                else:
                    low_count, low_level = cache[c0], level[c0]
                if c1 < 2:
                    high_count, high_level = c1, total_vars
                else:
                    high_count, high_level = cache[c1], level[c1]
                cache[node] = low_count * (1 << (low_level - lv - 1)) + (
                    high_count * (1 << (high_level - lv - 1))
                )
        return cache[f] * (1 << level[f])

    def any_sat(self, f: int) -> dict[str, bool] | None:
        """One satisfying assignment, or None."""
        if f == 0:
            return None
        level = self._level
        low = self._low
        high = self._high
        names = self._var_names
        assignment: dict[str, bool] = {}
        node_id = f
        while node_id != 1:
            name = names[level[node_id]]
            branch = high[node_id]
            if branch != 0:
                assignment[name] = True
                node_id = branch
            else:
                assignment[name] = False
                node_id = low[node_id]
        return assignment

    def size(self, f: int) -> int:
        """Number of distinct nodes in the BDD rooted at ``f``."""
        low = self._low
        high = self._high
        seen: set[int] = set()
        stack = [f]
        while stack:
            node_id = stack.pop()
            if node_id < 2 or node_id in seen:
                continue
            seen.add(node_id)
            stack.append(low[node_id])
            stack.append(high[node_id])
        return len(seen) + 2

    # ------------------------------------------------------------------
    # Garbage collection (roots must be registered or passed explicitly)
    # ------------------------------------------------------------------
    def collect(self, roots: tuple[int, ...] | list[int] = ()) -> int:
        """Mark-and-sweep from ``roots`` + every protected id.

        Dead nodes leave the unique table and the level index and their
        slots are poisoned (ids are never reused; a dangling reference
        indexes out of range and fails loudly).  Returns the number of
        collected nodes.  All memo caches are dropped: they may
        reference dead ids.
        """
        level = self._level
        low = self._low
        high = self._high
        total = len(level)
        marked = bytearray(total)
        stack = [*roots, *self._protected]
        while stack:
            node_id = stack.pop()
            if node_id < 2 or marked[node_id]:
                continue
            marked[node_id] = 1
            stack.append(low[node_id])
            stack.append(high[node_id])
        unique = self._unique
        index: dict[int, set[int]] = {}
        collected = 0
        for node_id in range(2, total):
            lv = level[node_id]
            if lv == _DEAD_LEVEL:
                continue
            if marked[node_id]:
                bucket = index.get(lv)
                if bucket is None:
                    index[lv] = bucket = set()
                bucket.add(node_id)
                continue
            del unique[(lv << 56) | (low[node_id] << _SH) | high[node_id]]
            level[node_id] = _DEAD_LEVEL
            low[node_id] = _DEAD_CHILD
            high[node_id] = _DEAD_CHILD
            collected += 1
        self._level_nodes = index
        self._index_dirty = False
        self._live -= collected
        self._drop_op_caches()
        self._support_cache.clear()
        self._support_mask_cache.clear()
        self._gc_runs += 1
        self._nodes_collected += collected
        return collected

    # ------------------------------------------------------------------
    # Reordering primitive (the search strategy lives in KernelBase)
    # ------------------------------------------------------------------
    def swap_adjacent(self, level_index: int) -> None:
        """Exchange the variables at ``level_index`` and ``level_index+1``
        in place — same id-stable variable swap as the reference kernel,
        over the flat columns."""
        if not 0 <= level_index < len(self._var_names) - 1:
            raise ValueError(
                f"cannot swap level {level_index} of {len(self._var_names)}"
            )
        self._ensure_index()
        lower_level = level_index + 1
        level = self._level
        low = self._low
        high = self._high
        unique = self._unique
        upper = list(self._level_nodes.get(level_index, ()))
        lower = list(self._level_nodes.get(lower_level, ()))

        # Cofactor quadruples of the interacting upper nodes, computed
        # against the *original* structure before anything moves.
        quads: dict[int, tuple[int, int, int, int]] = {}
        for node_id in upper:
            lo = low[node_id]
            hi = high[node_id]
            touches_low = level[lo] == lower_level
            touches_high = level[hi] == lower_level
            if not (touches_low or touches_high):
                continue
            f00, f01 = (low[lo], high[lo]) if touches_low else (lo, lo)
            f10, f11 = (low[hi], high[hi]) if touches_high else (hi, hi)
            quads[node_id] = (f00, f01, f10, f11)

        for node_id in upper:
            del unique[(level_index << 56) | (low[node_id] << _SH) | high[node_id]]
        for node_id in lower:
            del unique[(lower_level << 56) | (low[node_id] << _SH) | high[node_id]]
        upper_set = self._level_nodes.setdefault(level_index, set())
        lower_set = self._level_nodes.setdefault(lower_level, set())

        # Lower nodes float up: their variable now sits at ``level_index``
        # and their children (at deeper levels) are untouched.
        for node_id in lower:
            level[node_id] = level_index
            unique[(level_index << 56) | (low[node_id] << _SH) | high[node_id]] = (
                node_id
            )
            lower_set.discard(node_id)
            upper_set.add(node_id)
        # Solitary upper nodes sink unchanged below the swapped variable.
        for node_id in upper:
            if node_id in quads:
                continue
            level[node_id] = lower_level
            unique[(lower_level << 56) | (low[node_id] << _SH) | high[node_id]] = (
                node_id
            )
            upper_set.discard(node_id)
            lower_set.add(node_id)
        # Interacting nodes are rebuilt with the two variables exchanged:
        # f = u ? f1 : f0  becomes  v ? (u ? f11 : f01) : (u ? f10 : f00).
        for node_id, (f00, f01, f10, f11) in quads.items():
            new_low = self._mk(lower_level, f00, f10)
            new_high = self._mk(lower_level, f01, f11)
            low[node_id] = new_low
            high[node_id] = new_high
            unique[(level_index << 56) | (new_low << _SH) | new_high] = node_id
            # stays in upper_set

        name_a = self._var_names[level_index]
        name_b = self._var_names[lower_level]
        self._var_names[level_index] = name_b
        self._var_names[lower_level] = name_a
        self._var_ids[name_a] = lower_level
        self._var_ids[name_b] = level_index
        self._support_cache.clear()
        self._support_mask_cache.clear()
        # Ids are stable across the swap (same id, same function), so the
        # id-keyed op caches stay valid — but the quantification tables
        # are keyed by *level* masks, which just moved.
        self._ae_caches.clear()
        self._ex_caches.clear()
        self._ael_cache.clear()

    # ------------------------------------------------------------------
    # Observability hooks
    # ------------------------------------------------------------------
    def _unique_entries(self) -> int:
        return len(self._unique)

    def _computed_entries(self) -> int:
        return (
            len(self._and_cache)
            + len(self._or_cache)
            + len(self._not_cache)
            + len(self._andnot_cache)
            + len(self._ite_cache)
            + sum(len(table) for table in self._ae_caches.values())
            + sum(len(table) for table in self._ex_caches.values())
        )

    def _drop_op_caches(self) -> None:
        self._and_cache.clear()
        self._or_cache.clear()
        self._not_cache.clear()
        self._andnot_cache.clear()
        self._ite_cache.clear()
        self._ae_caches.clear()
        self._ex_caches.clear()
        self._ael_cache.clear()
