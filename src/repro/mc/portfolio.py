"""The raced SAT/BDD portfolio backend.

:class:`PortfolioChecker` presents the :class:`SymbolicModelChecker`
interface (``check(formula) -> CheckResult`` plus a ``labels`` map) over
a union :class:`StateModel` skeleton, but answers each property with the
cheapest engine that is conclusive:

1. **BMC** (``repro.mc.cnf``) — incremental SAT unrolling over the
   encoder's attribute-block bit variables.  Finds shallow violations in
   a handful of solver queries without ever materializing states; for
   an IoT union model most real violations are 1-3 events deep.
2. **IC3** (``repro.mc.ic3``) — unbounded proof for properties BMC
   could not refute (``mode="bmc"`` only).
3. **BDD fallback** — the established symbolic checker, built lazily on
   the same skeleton the first time a property is inconclusive for the
   SAT engines (formula shapes BMC cannot encode, IC3 budget blown, or
   ``mode="portfolio"`` where proofs always go to the BDDs).

The verdict is correct whichever engine answers (BMC counterexamples are
concrete paths, IC3 proofs are inductive invariants, the fallback is the
differentially-tested BDD checker), so racing changes latency only —
that is what the portfolio parity suite pins down.
"""

from __future__ import annotations

from repro.mc import ctl
from repro.mc.bmc import HOLDS, UNKNOWN, VIOLATED
from repro.mc.cnf import BmcUnroller, CnfUnionSystem, invariant_shape
from repro.mc.explicit import CheckResult
from repro.mc.ic3 import IC3Prover
from repro.model.kripke import KripkeState
from repro.model.statemodel import StateModel

#: BMC unrolling depth per mode.  ``portfolio`` races a shallow BMC
#: against the BDD checker and never tries to prove with SAT; ``bmc``
#: digs deeper and attempts an IC3 proof before falling back.
PORTFOLIO_DEPTH = 4
BMC_DEPTH = 8
IC3_MAX_FRAMES = 40
IC3_MAX_QUERIES = 4000


class PortfolioChecker:
    """Check catalog formulas against a union model with SAT engines
    first and the BDD checker as the conclusive fallback."""

    def __init__(
        self,
        union: StateModel,
        *,
        mode: str = "portfolio",
        written: frozenset | None = None,
        encoding: str = "auto",
        kernel: str = "auto",
    ) -> None:
        if mode not in ("portfolio", "bmc"):
            raise ValueError(f"unknown portfolio mode: {mode!r}")
        self.union = union
        self.mode = mode
        self._written = written
        self._encoding = encoding
        self._kernel = kernel
        self.system = CnfUnionSystem(union, written=written)
        self.unroller = BmcUnroller(self.system)
        self._ic3_unroller: BmcUnroller | None = None
        self.labels: dict[KripkeState, frozenset[str]] = {}
        self.symbolic_model = None
        self._symbolic_checker = None
        self.stats: dict[str, int] = {
            "formulas": 0,
            "bmc_violations": 0,
            "bmc_queries": 0,
            "ic3_proofs": 0,
            "ic3_violations": 0,
            "ic3_queries": 0,
            "fallbacks": 0,
            "unsupported": 0,
        }

    # -- engines -------------------------------------------------------
    def _bmc_depth(self) -> int:
        return BMC_DEPTH if self.mode == "bmc" else PORTFOLIO_DEPTH

    def _symbolic(self):
        """The lazily-built BDD fallback checker, sharing our labels map."""
        if self._symbolic_checker is None:
            from repro.mc.symbolic import SymbolicModelChecker
            from repro.model.encoder import SymbolicUnionModel

            self.symbolic_model = SymbolicUnionModel(
                self.union,
                encoding=self._encoding,
                written=self._written,
                kernel=self._kernel,
            )
            self._symbolic_checker = SymbolicModelChecker(self.symbolic_model)
            self._symbolic_checker.labels = self.labels
        return self._symbolic_checker

    def _record_trace(self, trace) -> list[KripkeState]:
        states = []
        for state, state_labels in trace:
            self.labels.setdefault(state, state_labels)
            states.append(state)
        return states

    # -- SymbolicModelChecker interface --------------------------------
    def check(self, formula: ctl.Formula | str) -> CheckResult:
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        self.stats["formulas"] += 1
        shape = invariant_shape(formula)
        if shape is None:
            self.stats["unsupported"] += 1
            self.stats["fallbacks"] += 1
            return self._symbolic().check(formula)

        # Stage 1: bounded refutation on the shared unroller.
        unroller = self.unroller
        for depth in range(self._bmc_depth() + 1):
            self.stats["bmc_queries"] += 1
            model = unroller.solver.solve(
                assumptions=unroller.bad_assumptions(shape, depth)
            )
            if model is not None:
                self.stats["bmc_violations"] += 1
                extra = 0 if shape.ex_target is None else 1
                states = self._record_trace(
                    unroller.decode_trace(model, depth + extra)
                )
                return CheckResult(
                    formula=formula,
                    holds=False,
                    failing_states=[states[0]],
                    counterexample=states,
                )

        # Stage 2 (bmc mode): unbounded proof attempt.
        if self.mode == "bmc":
            if self._ic3_unroller is None:
                self._ic3_unroller = BmcUnroller(self.system, guard_initial=True)
            prover = IC3Prover(
                self.system,
                unroller=self._ic3_unroller,
                max_frames=IC3_MAX_FRAMES,
                max_queries=IC3_MAX_QUERIES,
            )
            verdict, trace = prover.prove(shape)
            self.stats["ic3_queries"] += prover.queries
            if verdict is HOLDS:
                self.stats["ic3_proofs"] += 1
                return CheckResult(formula=formula, holds=True)
            if verdict is VIOLATED:
                self.stats["ic3_violations"] += 1
                states = self._record_trace(trace)
                return CheckResult(
                    formula=formula,
                    holds=False,
                    failing_states=[states[0]],
                    counterexample=states,
                )
            assert verdict is UNKNOWN

        # Stage 3: the BDD checker is always conclusive.
        self.stats["fallbacks"] += 1
        return self._symbolic().check(formula)
