"""BDD-based symbolic CTL model checking.

States of the Kripke structure are binary-encoded; the transition relation
is one BDD over current (``x<i>``) and next (``y<i>``) variables in
interleaved order; EX is the relational preimage
``exists y . R(x, y) & f[y/x]``; EU/EG are the usual fixpoints computed
entirely on BDDs.  Verified against the explicit checker in the test suite
(they must agree on every formula/model pair).
"""

from __future__ import annotations

from repro.mc import ctl
from repro.mc.bdd import BDD
from repro.model.kripke import KripkeState, KripkeStructure


class SymbolicChecker:
    """Symbolic CTL checker over an explicit Kripke structure."""

    def __init__(self, kripke: KripkeStructure) -> None:
        self.kripke = kripke
        self.bdd = BDD()
        self.index: dict[KripkeState, int] = {
            state: i for i, state in enumerate(kripke.states)
        }
        self.nbits = max(1, (len(kripke.states) - 1).bit_length())
        # Interleave current/next bits — the standard good ordering for
        # transition relations.
        for bit in range(self.nbits):
            self.bdd.add_var(f"x{bit}")
            self.bdd.add_var(f"y{bit}")
        self._x = [f"x{bit}" for bit in range(self.nbits)]
        self._y = [f"y{bit}" for bit in range(self.nbits)]
        self._state_cubes: dict[KripkeState, int] = {}
        self._valid = self._build_valid()
        self._relation = self._build_relation()
        self._cache: dict[ctl.Formula, int] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _cube(self, state: KripkeState, prime: bool = False) -> int:
        if not prime and state in self._state_cubes:
            return self._state_cubes[state]
        code = self.index[state]
        names = self._y if prime else self._x
        terms = []
        for bit in range(self.nbits):
            literal = (
                self.bdd.var(names[bit])
                if (code >> bit) & 1
                else self.bdd.nvar(names[bit])
            )
            terms.append(literal)
        cube = self.bdd.conj(terms)
        if not prime:
            self._state_cubes[state] = cube
        return cube

    def _build_valid(self) -> int:
        return self.bdd.disj([self._cube(s) for s in self.kripke.states])

    def _build_relation(self) -> int:
        edges = []
        for src, dsts in self.kripke.succ.items():
            src_cube = self._cube(src)
            for dst in dsts:
                edges.append(self.bdd.and_(src_cube, self._cube(dst, prime=True)))
        return self.bdd.disj(edges)

    def set_of(self, f: int) -> frozenset[KripkeState]:
        """Decode a BDD over x-vars back into a set of Kripke states."""
        found = []
        for state in self.kripke.states:
            code = self.index[state]
            assignment = {
                self._x[bit]: bool((code >> bit) & 1) for bit in range(self.nbits)
            }
            if self.bdd.evaluate(f, assignment):
                found.append(state)
        return frozenset(found)

    # ------------------------------------------------------------------
    # CTL semantics
    # ------------------------------------------------------------------
    def sat(self, formula: ctl.Formula) -> int:
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._sat(formula)
        result = self.bdd.and_(result, self._valid)
        self._cache[formula] = result
        return result

    def _prop(self, name: str) -> int:
        members = [
            self._cube(s) for s in self.kripke.states if name in self.kripke.labels[s]
        ]
        return self.bdd.disj(members)

    def _preimage(self, f: int) -> int:
        primed = self.bdd.rename(f, dict(zip(self._x, self._y)))
        return self.bdd.exists(self._y, self.bdd.and_(self._relation, primed))

    def _sat(self, f: ctl.Formula) -> int:
        bdd = self.bdd
        if isinstance(f, ctl.Bool):
            return self._valid if f.value else bdd.FALSE
        if isinstance(f, ctl.Prop):
            return self._prop(f.name)
        if isinstance(f, ctl.Not):
            return bdd.and_(self._valid, bdd.not_(self.sat(f.operand)))
        if isinstance(f, ctl.And):
            return bdd.and_(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.Or):
            return bdd.or_(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.Implies):
            return bdd.and_(
                self._valid, bdd.or_(bdd.not_(self.sat(f.left)), self.sat(f.right))
            )
        if isinstance(f, ctl.EX):
            return bdd.and_(self._valid, self._preimage(self.sat(f.operand)))
        if isinstance(f, ctl.AX):
            inner = bdd.and_(self._valid, bdd.not_(self.sat(f.operand)))
            return bdd.and_(self._valid, bdd.not_(self._preimage(inner)))
        if isinstance(f, ctl.EF):
            return self._lfp(self._valid, self.sat(f.operand))
        if isinstance(f, ctl.EU):
            return self._lfp(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.EG):
            return self._gfp(self.sat(f.operand))
        if isinstance(f, ctl.AF):
            inner = bdd.and_(self._valid, bdd.not_(self.sat(f.operand)))
            return bdd.and_(self._valid, bdd.not_(self._gfp(inner)))
        if isinstance(f, ctl.AG):
            inner = bdd.and_(self._valid, bdd.not_(self.sat(f.operand)))
            reach = self._lfp(self._valid, inner)
            return bdd.and_(self._valid, bdd.not_(reach))
        if isinstance(f, ctl.AU):
            not_b = bdd.and_(self._valid, bdd.not_(self.sat(f.right)))
            not_a_not_b = bdd.and_(not_b, bdd.not_(self.sat(f.left)))
            bad = bdd.or_(self._lfp(not_b, not_a_not_b), self._gfp(not_b))
            return bdd.and_(self._valid, bdd.not_(bad))
        raise TypeError(f"unsupported formula {type(f).__name__}")

    def _lfp(self, context: int, target: int) -> int:
        """E[context U target] as a least fixpoint on BDDs."""
        current = target
        while True:
            step = self.bdd.and_(context, self._preimage(current))
            nxt = self.bdd.or_(current, step)
            if nxt == current:
                return current
            current = nxt

    def _gfp(self, context: int) -> int:
        """EG context as a greatest fixpoint on BDDs."""
        current = context
        while True:
            nxt = self.bdd.and_(current, self._preimage(current))
            if nxt == current:
                return current
            current = nxt

    # ------------------------------------------------------------------
    def check(self, formula: ctl.Formula | str) -> bool:
        """True when every initial state satisfies ``formula``."""
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        satisfied = self.sat(formula)
        initial = self.bdd.disj([self._cube(s) for s in self.kripke.initial])
        uncovered = self.bdd.and_(initial, self.bdd.not_(satisfied))
        return uncovered == self.bdd.FALSE

    def sat_states(self, formula: ctl.Formula | str) -> frozenset[KripkeState]:
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        return self.set_of(self.sat(formula))
