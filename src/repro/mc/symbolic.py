"""BDD-based symbolic CTL model checking.

Two checkers share the CTL-on-BDDs machinery:

* :class:`SymbolicChecker` binary-encodes an *explicit* Kripke structure
  — useful for cross-validation and for small models that are already
  materialized, but it inherits the enumeration it runs on.
* :class:`SymbolicModelChecker` checks a
  :class:`repro.model.encoder.SymbolicUnionModel`: the transition relation
  comes straight from the apps' symbolic rules over shared attribute
  variable blocks, the check is restricted to the reachable-state fixpoint,
  and the Cartesian product is never enumerated.  Counterexample witnesses
  are extracted from the reachability frontiers and decoded into the same
  :class:`~repro.model.kripke.KripkeState` objects the explicit checker
  reports, so reporting is backend-agnostic.

In both, EX is the relational preimage ``exists y . R(x, y) & f[y/x]``;
EU/EG are the usual fixpoints computed entirely on BDDs.  Both are
verified against the explicit checker in the test suite (they must agree
on every formula/model pair).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mc import ctl
from repro.mc.explicit import CheckResult
from repro.mc.kernel import BddKernel, make_kernel
from repro.model.kripke import KripkeState, KripkeStructure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.encoder import SymbolicUnionModel


class SymbolicChecker:
    """Symbolic CTL checker over an explicit Kripke structure."""

    def __init__(
        self, kripke: KripkeStructure, kernel: str | BddKernel = "auto"
    ) -> None:
        self.kripke = kripke
        self.bdd: BddKernel = make_kernel(kernel)
        self.kernel = getattr(self.bdd, "KERNEL_NAME", type(self.bdd).__name__)
        self.index: dict[KripkeState, int] = {
            state: i for i, state in enumerate(kripke.states)
        }
        self.nbits = max(1, (len(kripke.states) - 1).bit_length())
        # Interleave current/next bits — the standard good ordering for
        # transition relations.
        for bit in range(self.nbits):
            self.bdd.add_var(f"x{bit}")
            self.bdd.add_var(f"y{bit}")
        self._x = [f"x{bit}" for bit in range(self.nbits)]
        self._y = [f"y{bit}" for bit in range(self.nbits)]
        self._state_cubes: dict[KripkeState, int] = {}
        self._valid = self._build_valid()
        self._relation = self._build_relation()
        self._cache: dict[ctl.Formula, int] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _cube(self, state: KripkeState, prime: bool = False) -> int:
        if not prime and state in self._state_cubes:
            return self._state_cubes[state]
        code = self.index[state]
        names = self._y if prime else self._x
        terms = []
        for bit in range(self.nbits):
            literal = (
                self.bdd.var(names[bit])
                if (code >> bit) & 1
                else self.bdd.nvar(names[bit])
            )
            terms.append(literal)
        cube = self.bdd.conj(terms)
        if not prime:
            self._state_cubes[state] = cube
        return cube

    def _build_valid(self) -> int:
        return self.bdd.disj([self._cube(s) for s in self.kripke.states])

    def _build_relation(self) -> int:
        edges = []
        for src, dsts in self.kripke.succ.items():
            src_cube = self._cube(src)
            for dst in dsts:
                edges.append(self.bdd.and_(src_cube, self._cube(dst, prime=True)))
        return self.bdd.disj(edges)

    def set_of(self, f: int) -> frozenset[KripkeState]:
        """Decode a BDD over x-vars back into a set of Kripke states."""
        found = []
        for state in self.kripke.states:
            code = self.index[state]
            assignment = {
                self._x[bit]: bool((code >> bit) & 1) for bit in range(self.nbits)
            }
            if self.bdd.evaluate(f, assignment):
                found.append(state)
        return frozenset(found)

    # ------------------------------------------------------------------
    # CTL semantics
    # ------------------------------------------------------------------
    def sat(self, formula: ctl.Formula) -> int:
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._sat(formula)
        result = self.bdd.and_(result, self._valid)
        self._cache[formula] = result
        return result

    def _prop(self, name: str) -> int:
        members = [
            self._cube(s) for s in self.kripke.states if name in self.kripke.labels[s]
        ]
        return self.bdd.disj(members)

    def _preimage(self, f: int) -> int:
        primed = self.bdd.rename(f, dict(zip(self._x, self._y)))
        return self.bdd.exists(self._y, self.bdd.and_(self._relation, primed))

    def _sat(self, f: ctl.Formula) -> int:
        bdd = self.bdd
        if isinstance(f, ctl.Bool):
            return self._valid if f.value else bdd.FALSE
        if isinstance(f, ctl.Prop):
            return self._prop(f.name)
        if isinstance(f, ctl.Not):
            return bdd.and_not(self._valid, self.sat(f.operand))
        if isinstance(f, ctl.And):
            return bdd.and_(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.Or):
            return bdd.or_(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.Implies):
            return bdd.and_(
                self._valid, bdd.or_(bdd.not_(self.sat(f.left)), self.sat(f.right))
            )
        if isinstance(f, ctl.EX):
            return bdd.and_(self._valid, self._preimage(self.sat(f.operand)))
        if isinstance(f, ctl.AX):
            inner = bdd.and_not(self._valid, self.sat(f.operand))
            return bdd.and_not(self._valid, self._preimage(inner))
        if isinstance(f, ctl.EF):
            return self._lfp(self._valid, self.sat(f.operand))
        if isinstance(f, ctl.EU):
            return self._lfp(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.EG):
            return self._gfp(self.sat(f.operand))
        if isinstance(f, ctl.AF):
            inner = bdd.and_not(self._valid, self.sat(f.operand))
            return bdd.and_not(self._valid, self._gfp(inner))
        if isinstance(f, ctl.AG):
            inner = bdd.and_not(self._valid, self.sat(f.operand))
            reach = self._lfp(self._valid, inner)
            return bdd.and_not(self._valid, reach)
        if isinstance(f, ctl.AU):
            not_b = bdd.and_not(self._valid, self.sat(f.right))
            not_a_not_b = bdd.and_not(not_b, self.sat(f.left))
            bad = bdd.or_(self._lfp(not_b, not_a_not_b), self._gfp(not_b))
            return bdd.and_not(self._valid, bad)
        raise TypeError(f"unsupported formula {type(f).__name__}")

    def _lfp(self, context: int, target: int) -> int:
        """E[context U target] as a least fixpoint on BDDs."""
        current = target
        while True:
            step = self.bdd.and_(context, self._preimage(current))
            nxt = self.bdd.or_(current, step)
            if nxt == current:
                return current
            current = nxt

    def _gfp(self, context: int) -> int:
        """EG context as a greatest fixpoint on BDDs."""
        current = context
        while True:
            nxt = self.bdd.and_(current, self._preimage(current))
            if nxt == current:
                return current
            current = nxt

    # ------------------------------------------------------------------
    def check(self, formula: ctl.Formula | str) -> bool:
        """True when every initial state satisfies ``formula``."""
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        satisfied = self.sat(formula)
        initial = self.bdd.disj([self._cube(s) for s in self.kripke.initial])
        uncovered = self.bdd.and_not(initial, satisfied)
        return uncovered == self.bdd.FALSE

    def sat_states(self, formula: ctl.Formula | str) -> frozenset[KripkeState]:
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        return self.set_of(self.sat(formula))


# ======================================================================
class SymbolicModelChecker:
    """CTL checking over a compiled symbolic union model.

    The state space is the *reachable* fixpoint of the encoded relation
    (every product state is an initial state, mirroring the explicit
    Kripke construction, so reachability adds the event-labelled nodes on
    top).  Atomic propositions resolve through the encoder's proposition
    map; decoded witness states accumulate in :attr:`labels`, the
    symbolic stand-in for ``KripkeStructure.labels`` that violation
    diagnosis (app attribution, reflection marking) reads.
    """

    def __init__(self, symbolic: SymbolicUnionModel) -> None:
        self.symbolic = symbolic
        self.bdd = symbolic.bdd
        self._universe = symbolic.reachable
        self._initial = symbolic.initial
        self._cache: dict[ctl.Formula, int] = {}
        self._last_assignment: dict[str, bool] | None = None
        #: Labels of every state decoded while extracting witnesses.
        self.labels: dict[KripkeState, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # CTL semantics (all sets live inside the reachable universe)
    # ------------------------------------------------------------------
    def sat(self, formula: ctl.Formula | str) -> int:
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self.bdd.and_(self._sat(formula), self._universe)
        # Cached satisfaction sets survive any later forced reorder: they
        # are GC roots of the shared manager.
        self._cache[formula] = self.bdd.protect(result)
        return result

    def _preimage(self, f: int) -> int:
        return self.symbolic.pre(f)

    def _lfp(self, context: int, target: int) -> int:
        """E[context U target] as a least fixpoint on BDDs.

        Iterated on the *frontier*: preimages distribute over union, so
        each round only the states added last round are fed to the
        (fragment-partitioned) preimage — on wide unions this is the
        difference between quadratic and linear work in the fixpoint
        depth.
        """
        current = target
        frontier = target
        while frontier != self.bdd.FALSE:
            step = self.bdd.and_(context, self._preimage(frontier))
            frontier = self.bdd.and_not(step, current)
            current = self.bdd.or_(current, frontier)
        return current

    def _gfp(self, context: int) -> int:
        """EG context as a greatest fixpoint on BDDs."""
        current = context
        while True:
            nxt = self.bdd.and_(current, self._preimage(current))
            if nxt == current:
                return current
            current = nxt

    def _sat(self, f: ctl.Formula) -> int:
        bdd = self.bdd
        if isinstance(f, ctl.Bool):
            return self._universe if f.value else bdd.FALSE
        if isinstance(f, ctl.Prop):
            return bdd.and_(self._universe, self.symbolic.prop(f.name))
        if isinstance(f, ctl.Not):
            return bdd.and_not(self._universe, self.sat(f.operand))
        if isinstance(f, ctl.And):
            return bdd.and_(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.Or):
            return bdd.or_(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.Implies):
            return bdd.and_(
                self._universe,
                bdd.or_(bdd.not_(self.sat(f.left)), self.sat(f.right)),
            )
        if isinstance(f, ctl.EX):
            return bdd.and_(self._universe, self._preimage(self.sat(f.operand)))
        if isinstance(f, ctl.AX):
            inner = bdd.and_not(self._universe, self.sat(f.operand))
            return bdd.and_not(self._universe, self._preimage(inner))
        if isinstance(f, ctl.EF):
            return self._lfp(self._universe, self.sat(f.operand))
        if isinstance(f, ctl.EU):
            return self._lfp(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.EG):
            return self._gfp(self.sat(f.operand))
        if isinstance(f, ctl.AF):
            inner = bdd.and_not(self._universe, self.sat(f.operand))
            return bdd.and_not(self._universe, self._gfp(inner))
        if isinstance(f, ctl.AG):
            inner = bdd.and_not(self._universe, self.sat(f.operand))
            reach = self._lfp(self._universe, inner)
            return bdd.and_not(self._universe, reach)
        if isinstance(f, ctl.AU):
            not_b = bdd.and_not(self._universe, self.sat(f.right))
            not_a_not_b = bdd.and_not(not_b, self.sat(f.left))
            bad = bdd.or_(self._lfp(not_b, not_a_not_b), self._gfp(not_b))
            return bdd.and_not(self._universe, bad)
        raise TypeError(f"unsupported formula {type(f).__name__}")

    # ------------------------------------------------------------------
    # Top-level checks, explicit-checker-compatible
    # ------------------------------------------------------------------
    def check(self, formula: ctl.Formula | str) -> CheckResult:
        """Check ``formula`` against every initial state.

        The returned :class:`~repro.mc.explicit.CheckResult` has the
        explicit checker's shape: on failure ``failing_states`` holds one
        decoded failing initial state and ``counterexample`` a decoded
        witness path (AG: shortest path into the violation from the
        reachability frontiers; AF: a lasso inside the EG region).
        """
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        satisfied = self.sat(formula)
        failing = self.bdd.and_not(self._initial, satisfied)
        result = CheckResult(formula=formula, holds=failing == self.bdd.FALSE)
        if result.holds:
            return result
        start = self._register(failing)
        if start is not None:
            result.failing_states = [start]
        self._attach_counterexample(formula, failing, result)
        return result

    def _register(self, states: int) -> KripkeState | None:
        """Decode one state of a non-empty set, recording its labels."""
        assignment = self.bdd.any_sat(states)
        if assignment is None:
            return None
        node, labels = self.symbolic.decode(assignment)
        self.labels[node] = labels
        self._last_assignment = assignment
        return node

    def _attach_counterexample(
        self, formula: ctl.Formula, failing: int, result: CheckResult
    ) -> None:
        if isinstance(formula, ctl.AG):
            bad = self.bdd.and_(
                self._universe, self.bdd.not_(self.sat(formula.operand))
            )
            path = self._shortest_path(failing, bad)
            if path:
                result.counterexample = path
            return
        if isinstance(formula, ctl.Implies) and isinstance(formula.right, ctl.AG):
            # Common shape AG properties take after applicability guards.
            self._attach_counterexample(formula.right, failing, result)
            return
        if isinstance(formula, ctl.AF):
            context = self.bdd.and_(
                self._universe, self.bdd.not_(self.sat(formula.operand))
            )
            lasso = self._find_lasso(failing, context)
            if lasso is not None:
                result.counterexample, result.counterexample_loop = lasso
            return
        if result.failing_states:
            result.counterexample = [result.failing_states[0]]

    def _shortest_path(self, sources: int, targets: int) -> list[KripkeState]:
        """A shortest witness path, walked back over BFS frontiers.

        Forward frontiers are grown from ``sources`` until one meets
        ``targets``; the path is then reconstructed ring by ring through
        symbolic preimages — each step decodes exactly one state.
        """
        bdd = self.bdd
        frontiers = [sources]
        covered = sources
        hit = bdd.and_(sources, targets)
        while hit == bdd.FALSE:
            nxt = bdd.and_not(self.symbolic.post(frontiers[-1]), covered)
            if nxt == bdd.FALSE:
                return []
            frontiers.append(nxt)
            covered = bdd.or_(covered, nxt)
            hit = bdd.and_(nxt, targets)
        node = self._register(hit)
        if node is None:
            return []
        path = [node]
        cube = self.symbolic.state_cube(self._last_assignment)
        for ring in reversed(frontiers[:-1]):
            candidates = bdd.and_(ring, self.symbolic.pre(cube))
            node = self._register(candidates)
            if node is None:  # pragma: no cover - rings are connected
                break
            path.append(node)
            cube = self.symbolic.state_cube(self._last_assignment)
        path.reverse()
        return path

    def _find_lasso(
        self, failing: int, context: int
    ) -> tuple[list[KripkeState], list[KripkeState]] | None:
        """A stem + cycle staying inside ``context`` (witness for EG)."""
        bdd = self.bdd
        eg = self._gfp(context)
        start_set = bdd.and_(failing, eg)
        start = self._register(start_set)
        if start is None:
            return None
        path = [start]
        seen = {start: 0}
        cube = self.symbolic.state_cube(self._last_assignment)
        while True:
            succs = bdd.and_(self.symbolic.post(cube), eg)
            node = self._register(succs)
            if node is None:
                return path, []
            if node in seen:
                cut = seen[node]
                return path[:cut], path[cut:]
            seen[node] = len(path)
            path.append(node)
            cube = self.symbolic.state_cube(self._last_assignment)

    # ------------------------------------------------------------------
    def state_count(self) -> int:
        """Number of reachable states of the composed model."""
        return self.symbolic.state_count()
