"""SAT-based bounded model checking of invariants.

Checks ``AG p`` up to a bound k: the Kripke structure is unrolled as a CNF
formula over binary state codes (Tseitin encoding with one auxiliary
variable per edge per step), and the solver looks for a path of length
<= k from an initial state to a ``!p`` state.  A returned trace is a real
counterexample; UNSAT up to the recurrence diameter proves the invariant
(the bound defaults to |S|, which is complete for these app-scale models).

This mirrors NuSMV's BMC mode the paper enables alongside BDDs (Sec. 5).
"""

from __future__ import annotations

from repro.mc import ctl
from repro.mc.explicit import ExplicitChecker
from repro.mc.sat import Solver
from repro.model.kripke import KripkeState, KripkeStructure


class BoundedChecker:
    """Bounded reachability of ``bad`` states over a Kripke structure."""

    def __init__(self, kripke: KripkeStructure) -> None:
        self.kripke = kripke
        self.index = {state: i for i, state in enumerate(kripke.states)}
        self.nbits = max(1, (len(kripke.states) - 1).bit_length())

    # ------------------------------------------------------------------
    def check_invariant(
        self, formula: ctl.Formula | str, bound: int | None = None
    ) -> tuple[bool, list[KripkeState]]:
        """Check ``AG operand`` (formula must be AG p).

        Returns (holds, counterexample-path).  ``bound`` defaults to |S|
        (complete for reachability).
        """
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        if not isinstance(formula, ctl.AG):
            raise ValueError("BMC handles invariants of the form AG p")
        # The operand may be an arbitrary propositional formula; evaluate it
        # per state with the explicit labelling machinery (cheap).
        checker = ExplicitChecker(self.kripke)
        good = checker.sat(formula.operand)
        bad = [s for s in self.kripke.states if s not in good]
        if not bad:
            return True, []
        limit = bound if bound is not None else len(self.kripke.states)
        for k in range(limit + 1):
            trace = self._reach_at(bad, k)
            if trace is not None:
                return False, trace
        return True, []

    # ------------------------------------------------------------------
    def _code_clauses(
        self, solver: Solver, step_vars: list[int], state: KripkeState
    ) -> list[int]:
        """Literals asserting ``step_vars`` encode ``state``."""
        code = self.index[state]
        literals = []
        for bit, var in enumerate(step_vars):
            literals.append(var if (code >> bit) & 1 else -var)
        return literals

    def _reach_at(
        self, bad: list[KripkeState], k: int
    ) -> list[KripkeState] | None:
        """SAT query: is some bad state reachable in exactly k steps?"""
        solver = Solver()
        steps: list[list[int]] = [
            [solver.new_var() for _ in range(self.nbits)] for _ in range(k + 1)
        ]

        def onehot_member(step: int, states: list[KripkeState]) -> None:
            """step-vars must encode one of ``states`` (via selector vars)."""
            selectors = []
            for state in states:
                sel = solver.new_var()
                selectors.append(sel)
                for literal in self._code_clauses(solver, steps[step], state):
                    solver.add_clause([-sel, literal])
            solver.add_clause(selectors)

        # Initial constraint.
        onehot_member(0, list(self.kripke.initial))
        # Transition constraints: selector per edge per step.
        for t in range(k):
            selectors = []
            for src, dsts in self.kripke.succ.items():
                src_literals = self._code_clauses(solver, steps[t], src)
                for dst in dsts:
                    sel = solver.new_var()
                    selectors.append(sel)
                    for literal in src_literals:
                        solver.add_clause([-sel, literal])
                    for literal in self._code_clauses(solver, steps[t + 1], dst):
                        solver.add_clause([-sel, literal])
            solver.add_clause(selectors)
        # Bad at step k.
        onehot_member(k, bad)

        model = solver.solve()
        if model is None:
            return None
        trace = []
        by_code = {self.index[s]: s for s in self.kripke.states}
        for t in range(k + 1):
            code = 0
            for bit, var in enumerate(steps[t]):
                if model.get(var, False):
                    code |= 1 << bit
            state = by_code.get(code)
            if state is None:
                return None  # spurious decode (should not happen)
            trace.append(state)
        return trace
