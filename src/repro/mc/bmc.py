"""SAT-based bounded model checking of invariants.

Checks ``AG p`` up to a bound k: the Kripke structure is unrolled as a CNF
formula over binary state codes (Tseitin encoding with one auxiliary
variable per edge per step), and the solver looks for a path of length
<= k from an initial state to a ``!p`` state.

The verdict is tri-state (:class:`Verdict`):

* ``VIOLATED`` — a real counterexample path was found (always sound);
* ``HOLDS`` — UNSAT up to the completeness bound ``|S| - 1`` (any
  reachable state is reachable by a simple path, so exhausting that
  depth *is* a proof);
* ``UNKNOWN`` — the caller-supplied ``bound`` was exhausted short of
  the completeness bound.  Earlier revisions returned ``(True, [])``
  here, indistinguishable from a proof — the unsoundness this module's
  regression test (``tests/test_bmc_verdict.py``) pins down.

Unrolling is incremental: one solver instance per checker, transition
steps are encoded once and shared by every query (and every formula),
and per-depth constraints ride on activation literals passed through
``Solver.solve(assumptions=...)`` — clause counts grow linearly in the
depth instead of the old fresh-CNF-per-k quadratic rebuild.

This mirrors NuSMV's BMC mode the paper enables alongside BDDs (Sec. 5).
"""

from __future__ import annotations

import enum

from repro.mc import ctl
from repro.mc.explicit import ExplicitChecker
from repro.mc.sat import Solver
from repro.model.kripke import KripkeState, KripkeStructure


class Verdict(enum.Enum):
    """Outcome of a bounded-model-checking query.

    Truthiness is deliberately conservative: only ``HOLDS`` is truthy,
    so legacy ``if verdict:`` call sites treat an exhausted bound as
    *not proven* rather than as a proof.
    """

    HOLDS = "holds"
    VIOLATED = "violated"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        return self is Verdict.HOLDS


HOLDS = Verdict.HOLDS
VIOLATED = Verdict.VIOLATED
UNKNOWN = Verdict.UNKNOWN


class BoundedChecker:
    """Bounded reachability of ``bad`` states over a Kripke structure."""

    def __init__(self, kripke: KripkeStructure) -> None:
        self.kripke = kripke
        self.index = {state: i for i, state in enumerate(kripke.states)}
        self.nbits = max(1, (len(kripke.states) - 1).bit_length())
        self.solver = Solver()
        self._steps: list[list[int]] = []
        self._progress: list[int] = []  # per-step "a transition happens"
        self._new_step()
        self._assert_onehot(0, list(self.kripke.initial), activation=None)

    # ------------------------------------------------------------------
    def check_invariant(
        self, formula: ctl.Formula | str, bound: int | None = None
    ) -> tuple[Verdict, list[KripkeState]]:
        """Check ``AG operand`` (formula must be AG p).

        Returns ``(verdict, counterexample-path)``.  ``bound`` defaults
        to the completeness bound ``|S| - 1`` (every reachable state is
        reachable along a simple path), at which exhaustion is a proof;
        a smaller bound that comes up empty yields ``UNKNOWN``.
        """
        if isinstance(formula, str):
            formula = ctl.parse_ctl(formula)
        if not isinstance(formula, ctl.AG):
            raise ValueError("BMC handles invariants of the form AG p")
        # The operand may be an arbitrary propositional formula; evaluate it
        # per state with the explicit labelling machinery (cheap).
        checker = ExplicitChecker(self.kripke)
        good = checker.sat(formula.operand)
        bad = [s for s in self.kripke.states if s not in good]
        if not bad:
            return HOLDS, []
        complete_bound = max(0, len(self.kripke.states) - 1)
        limit = bound if bound is not None else complete_bound
        for k in range(limit + 1):
            trace = self._reach_at(bad, k)
            if trace is not None:
                return VIOLATED, trace
        if limit >= complete_bound:
            return HOLDS, []
        return UNKNOWN, []

    # ------------------------------------------------------------------
    @property
    def clause_count(self) -> int:
        """Number of clauses in the shared incremental encoding."""
        return len(self.solver.clauses)

    def _code_literals(self, step: int, state: KripkeState) -> list[int]:
        """Literals asserting step ``step``'s variables encode ``state``."""
        code = self.index[state]
        step_vars = self._steps[step]
        return [
            var if (code >> bit) & 1 else -var
            for bit, var in enumerate(step_vars)
        ]

    def _new_step(self) -> None:
        self._steps.append([self.solver.new_var() for _ in range(self.nbits)])

    def _assert_onehot(
        self, step: int, states: list[KripkeState], activation: int | None
    ) -> None:
        """Step-vars must encode one of ``states`` (via selector vars)."""
        selectors = []
        for state in states:
            sel = self.solver.new_var()
            selectors.append(sel)
            for literal in self._code_literals(step, state):
                self.solver.add_clause([-sel, literal])
        if activation is not None:
            selectors = [-activation, *selectors]
        self.solver.add_clause(selectors)

    def _ensure_depth(self, depth: int) -> None:
        """Unroll transition steps up to ``depth`` (encoded exactly once).

        Each step's "some edge is taken" clause is guarded by a progress
        literal so a depth-j query leaves deeper, already-encoded steps
        unconstrained (the relation need not be total past the query).
        """
        while len(self._steps) <= depth:
            t = len(self._steps) - 1
            self._new_step()
            progress = self.solver.new_var()
            self._progress.append(progress)
            selectors = [-progress]
            for src, dsts in self.kripke.succ.items():
                src_literals = self._code_literals(t, src)
                for dst in dsts:
                    sel = self.solver.new_var()
                    selectors.append(sel)
                    for literal in src_literals:
                        self.solver.add_clause([-sel, literal])
                    for literal in self._code_literals(t + 1, dst):
                        self.solver.add_clause([-sel, literal])
            self.solver.add_clause(selectors)

    def _reach_at(
        self, bad: list[KripkeState], k: int
    ) -> list[KripkeState] | None:
        """SAT query: is some bad state reachable in exactly k steps?"""
        self._ensure_depth(k)
        activation = self.solver.new_var()
        self._assert_onehot(k, bad, activation=activation)
        model = self.solver.solve(
            assumptions=[*self._progress[:k], activation]
        )
        if model is None:
            return None
        trace = []
        by_code = {self.index[s]: s for s in self.kripke.states}
        for t in range(k + 1):
            code = 0
            for bit, var in enumerate(self._steps[t]):
                if model.get(var, False):
                    code |= 1 << bit
            state = by_code.get(code)
            if state is None:
                return None  # spurious decode (should not happen)
            trace.append(state)
        return trace
