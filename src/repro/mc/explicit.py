"""Explicit-state CTL model checker with counterexample extraction.

Standard bottom-up labelling (Clarke/Grumberg/Peled): the satisfying set of
every subformula is computed over the Kripke structure; EX is a preimage,
EU a backward least fixpoint, EG a greatest fixpoint; the universal
connectives are derived by duality.  Counterexamples:

* ``AG p``  — a finite path from an initial state to a ``!p`` state,
* ``AF p``  — a lasso (stem + cycle) staying inside ``!p``,
* generic   — the failing initial state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.mc import ctl
from repro.model.kripke import KripkeState, KripkeStructure
from repro.model.statemodel import Transition


@dataclass
class CheckResult:
    """Outcome of checking one formula against one Kripke structure."""

    formula: ctl.Formula
    holds: bool
    failing_states: list[KripkeState] = field(default_factory=list)
    counterexample: list[KripkeState] = field(default_factory=list)
    counterexample_loop: list[KripkeState] = field(default_factory=list)

    def trace_transitions(
        self, kripke: KripkeStructure
    ) -> list[Transition | None]:
        """Model transitions along the counterexample path (for reports)."""
        steps: list[Transition | None] = []
        path = self.counterexample
        for src, dst in zip(path, path[1:]):
            steps.append(kripke.witness.get((src, dst)))
        return steps


class ExplicitChecker:
    """Labelling-based CTL checker over one Kripke structure."""

    def __init__(self, kripke: KripkeStructure) -> None:
        self.kripke = kripke
        self.all_states = frozenset(kripke.states)
        self._pred = kripke.predecessors()
        self._cache: dict[ctl.Formula, frozenset[KripkeState]] = {}

    # ------------------------------------------------------------------
    # Satisfying sets
    # ------------------------------------------------------------------
    def sat(self, formula: ctl.Formula) -> frozenset[KripkeState]:
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._sat(formula)
        self._cache[formula] = result
        return result

    def _sat(self, f: ctl.Formula) -> frozenset[KripkeState]:
        if isinstance(f, ctl.Bool):
            return self.all_states if f.value else frozenset()
        if isinstance(f, ctl.Prop):
            return frozenset(
                s for s in self.kripke.states if f.name in self.kripke.labels[s]
            )
        if isinstance(f, ctl.Not):
            return self.all_states - self.sat(f.operand)
        if isinstance(f, ctl.And):
            return self.sat(f.left) & self.sat(f.right)
        if isinstance(f, ctl.Or):
            return self.sat(f.left) | self.sat(f.right)
        if isinstance(f, ctl.Implies):
            return (self.all_states - self.sat(f.left)) | self.sat(f.right)
        if isinstance(f, ctl.EX):
            return self._pre_exists(self.sat(f.operand))
        if isinstance(f, ctl.AX):
            # AX p = !EX !p
            return self.all_states - self._pre_exists(
                self.all_states - self.sat(f.operand)
            )
        if isinstance(f, ctl.EF):
            return self._eu(self.all_states, self.sat(f.operand))
        if isinstance(f, ctl.EU):
            return self._eu(self.sat(f.left), self.sat(f.right))
        if isinstance(f, ctl.EG):
            return self._eg(self.sat(f.operand))
        if isinstance(f, ctl.AF):
            # AF p = !EG !p
            return self.all_states - self._eg(self.all_states - self.sat(f.operand))
        if isinstance(f, ctl.AG):
            # AG p = !EF !p
            return self.all_states - self._eu(
                self.all_states, self.all_states - self.sat(f.operand)
            )
        if isinstance(f, ctl.AU):
            # A[a U b] = !(E[!b U (!a & !b)] | EG !b)
            not_b = self.all_states - self.sat(f.right)
            not_a_and_not_b = not_b - self.sat(f.left)
            bad = self._eu(not_b, not_a_and_not_b) | self._eg(not_b)
            return self.all_states - bad
        raise TypeError(f"unsupported formula {type(f).__name__}")

    # ------------------------------------------------------------------
    def _pre_exists(self, target: frozenset[KripkeState]) -> frozenset[KripkeState]:
        found: set[KripkeState] = set()
        for state in target:
            found.update(self._pred[state])
        return frozenset(found)

    def _eu(
        self, context: frozenset[KripkeState], target: frozenset[KripkeState]
    ) -> frozenset[KripkeState]:
        """Least fixpoint: states reaching ``target`` through ``context``."""
        satisfied = set(target)
        frontier = deque(target)
        while frontier:
            state = frontier.popleft()
            for parent in self._pred[state]:
                if parent in context and parent not in satisfied:
                    satisfied.add(parent)
                    frontier.append(parent)
        return frozenset(satisfied)

    def _eg(self, context: frozenset[KripkeState]) -> frozenset[KripkeState]:
        """Greatest fixpoint: Z = context ∩ pre∃(Z)."""
        current = set(context)
        changed = True
        while changed:
            changed = False
            for state in list(current):
                if not any(nxt in current for nxt in self.kripke.succ[state]):
                    current.discard(state)
                    changed = True
        return frozenset(current)

    # ------------------------------------------------------------------
    # Top-level checks
    # ------------------------------------------------------------------
    def check(self, formula: ctl.Formula) -> CheckResult:
        satisfied = self.sat(formula)
        failing = [s for s in self.kripke.initial if s not in satisfied]
        result = CheckResult(formula=formula, holds=not failing, failing_states=failing)
        if failing:
            self._attach_counterexample(formula, failing[0], result)
        return result

    def _attach_counterexample(
        self, formula: ctl.Formula, start: KripkeState, result: CheckResult
    ) -> None:
        if isinstance(formula, ctl.AG):
            bad = self.all_states - self.sat(formula.operand)
            path = self._shortest_path({start}, bad)
            if path:
                result.counterexample = path
            return
        if isinstance(formula, ctl.Implies) and isinstance(formula.right, ctl.AG):
            # Common shape AG properties take after applicability guards.
            self._attach_counterexample(formula.right, start, result)
            return
        if isinstance(formula, ctl.AF):
            context = self.all_states - self.sat(formula.operand)
            lasso = self._find_lasso(start, context)
            if lasso is not None:
                result.counterexample, result.counterexample_loop = lasso
            return
        result.counterexample = [start]

    def _shortest_path(
        self, sources: set[KripkeState], targets: frozenset[KripkeState]
    ) -> list[KripkeState]:
        parent: dict[KripkeState, KripkeState | None] = {s: None for s in sources}
        frontier = deque(sources)
        while frontier:
            state = frontier.popleft()
            if state in targets:
                path = [state]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])  # type: ignore[arg-type]
                path.reverse()
                return path
            for nxt in self.kripke.succ[state]:
                if nxt not in parent:
                    parent[nxt] = state
                    frontier.append(nxt)
        return []

    def _find_lasso(
        self, start: KripkeState, context: frozenset[KripkeState]
    ) -> tuple[list[KripkeState], list[KripkeState]] | None:
        """A stem + cycle staying inside ``context`` (witness for EG)."""
        if start not in context:
            return None
        eg_states = self._eg(context)
        if start not in eg_states:
            return None
        # Walk inside eg_states until a state repeats.
        path = [start]
        seen = {start: 0}
        current = start
        while True:
            nxt = next(
                (n for n in self.kripke.succ[current] if n in eg_states), None
            )
            if nxt is None:
                return path, []
            if nxt in seen:
                cut = seen[nxt]
                return path[:cut], path[cut:]
            seen[nxt] = len(path)
            path.append(nxt)
            current = nxt


def check(kripke: KripkeStructure, formula: ctl.Formula | str) -> CheckResult:
    """Check one CTL formula (object or text) against ``kripke``."""
    if isinstance(formula, str):
        formula = ctl.parse_ctl(formula)
    return ExplicitChecker(kripke).check(formula)
