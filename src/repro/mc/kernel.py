"""The pluggable BDD-kernel layer: protocol, shared base, registry.

The symbolic stack (encoder, checkers, pipeline) does not depend on a
concrete BDD manager anymore — it programs against :class:`BddKernel`,
the narrow operation surface the codebase actually uses, and obtains an
implementation through :func:`make_kernel`.  Two kernels ship:

* ``reference`` — :class:`repro.mc.bdd.BDD`, the original dict-of-node
  manager.  Readable, recursive, and the *oracle*: the differential
  suites (``tests/test_backends_differential.py``, the fuzz driver's
  ``--kernel both`` mode) prove every other kernel equivalent to it on
  real workloads, so nothing else has to be trusted.
* ``fast`` — :class:`repro.mc.fastbdd.FastKernel`, flat parallel
  ``array('q')`` columns for (level, low, high), packed-integer keys in
  the open-addressed unique/computed hash tables, and iterative
  (explicit-stack) apply/exists/rename loops.  The default: ``auto``
  resolves to it.

A third, optional ``dd`` kernel (:mod:`repro.mc.ddkernel`, backed by the
``dd``/CUDD package) registers itself only when ``dd`` is importable.
It is never chosen by ``auto`` — availability varies by machine, and the
differential guarantee only covers kernels that run in CI.

Every kernel honors the same contract the rest of the stack relies on:
node ids are integers with ``FALSE == 0`` / ``TRUE == 1``; reordering is
id-stable (an id keeps denoting the same function across :meth:`sift`);
long-lived ids are registered via :meth:`protect` so the mark-and-sweep
:meth:`collect` knows the roots; collected slots are never reused.

:class:`KernelBase` holds everything that is representation-independent
— variable bookkeeping, protect/unprotect, the grouped-sifting search,
the auto-reorder policy, the early-quantification schedule of
:meth:`and_exists_list`, and the :meth:`stats` shape — so a kernel only
implements the node table and the traversals.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

__all__ = [
    "BddKernel",
    "KernelBase",
    "KERNEL_CHOICES",
    "DEFAULT_KERNEL",
    "available_kernels",
    "resolve_kernel",
    "make_kernel",
    "record_kernel_stats",
    "aggregate_kernel_stats",
    "reset_kernel_stats",
]


#: Sentinel level of the two terminals — below every real variable.
TERMINAL_LEVEL = 1 << 30


@runtime_checkable
class BddKernel(Protocol):
    """The operation surface the symbolic stack programs against.

    Structural typing only — implementations do not need to inherit
    anything (though :class:`KernelBase` provides the shared machinery).
    """

    FALSE: int
    TRUE: int

    # Variables / order ------------------------------------------------
    def add_var(self, name: str) -> int: ...
    def var(self, name: str) -> int: ...
    def nvar(self, name: str) -> int: ...
    def var_count(self) -> int: ...
    def level_of(self, name: str) -> int: ...
    def name_of(self, level: int) -> str: ...
    def var_order(self) -> list[str]: ...

    # Connectives ------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int: ...
    def and_(self, f: int, g: int) -> int: ...
    def or_(self, f: int, g: int) -> int: ...
    def not_(self, f: int) -> int: ...
    def and_not(self, f: int, g: int) -> int: ...
    def xor(self, f: int, g: int) -> int: ...
    def implies(self, f: int, g: int) -> int: ...
    def iff(self, f: int, g: int) -> int: ...
    def conj(self, items: list[int]) -> int: ...
    def disj(self, items: list[int]) -> int: ...

    # Quantification / substitution ------------------------------------
    def exists(self, names: list[str], f: int) -> int: ...
    def forall(self, names: list[str], f: int) -> int: ...
    def and_exists(self, names: list[str], f: int, g: int) -> int: ...
    def and_exists_list(self, names: list[str], conjuncts: list[int]) -> int: ...
    def rename(self, f: int, mapping: dict[str, str]) -> int: ...
    def restrict(self, f: int, assignment: dict[str, bool]) -> int: ...
    def support(self, f: int) -> frozenset[str]: ...

    # Evaluation / enumeration -----------------------------------------
    def evaluate(self, f: int, assignment: dict[str, bool]) -> bool: ...
    def count_sat(self, f: int, nvars: int | None = None) -> int: ...
    def any_sat(self, f: int) -> dict[str, bool] | None: ...
    def size(self, f: int) -> int: ...

    # Lifecycle / reordering -------------------------------------------
    def protect(self, f: int) -> int: ...
    def unprotect(self, f: int) -> None: ...
    def collect(self, roots: tuple[int, ...] | list[int] = ()) -> int: ...
    def live_size(self) -> int: ...
    def allocated_nodes(self) -> int: ...
    def node_triple(self, node_id: int) -> tuple[int, int, int] | None: ...
    def sift(
        self,
        groups: list[list[str]] | None = None,
        roots: tuple[int, ...] | list[int] = (),
        max_groups: int | None = None,
        max_growth: float = 2.0,
    ) -> None: ...
    def set_auto_reorder(
        self, groups: list[list[str]] | None, threshold: int
    ) -> None: ...
    def disable_auto_reorder(self) -> None: ...
    def maybe_reorder(self, extra_roots: tuple[int, ...] | list[int] = ()) -> bool: ...

    # Observability ----------------------------------------------------
    def stats(self) -> dict: ...


class KernelBase:
    """Representation-independent half of a BDD kernel.

    Subclasses provide the node table and the traversals: ``_mk``,
    ``ite``, ``and_``/``or_``/``not_``, ``_exists``, ``_and_exists``,
    ``_support_levels``, ``_rename``-style substitution, ``restrict``,
    ``evaluate``/``count_sat``/``any_sat``/``size``, ``collect``,
    ``swap_adjacent``, ``allocated_nodes``, ``node_triple``, and the
    ``_drop_op_caches`` hook (invoked when memo tables may hold dead or
    stale entries).
    """

    FALSE = 0
    TRUE = 1

    #: Registry name; subclasses override.
    KERNEL_NAME = "base"

    def __init__(self) -> None:
        self._var_names: list[str] = []
        self._var_ids: dict[str, int] = {}
        #: Live nodes per level (maintained by _mk / collect / swaps).
        self._level_nodes: dict[int, set[int]] = {}
        #: Refcounted GC roots: node id -> protect count.
        self._protected: dict[int, int] = {}
        #: Memoized support sets (level frozensets per node id); dropped
        #: on reorder (levels shift) and collection (ids die).
        self._support_cache: dict[int, frozenset[int]] = {}
        #: Dynamic-reordering configuration (see set_auto_reorder).
        self._reorder_groups: list[list[str]] | None = None
        self._reorder_threshold: int | None = None
        #: Table size below which maybe_reorder won't even try a GC —
        #: bumped to 2x the live size after every collection so a table
        #: hovering at the threshold can't trigger a full mark-and-sweep
        #: on each call (the sweep must free at least half the table to
        #: pay for itself).
        self._gc_watermark: int = 0
        #: Number of completed sift passes (observability for tests/benchmarks).
        self.reorder_count = 0
        #: GC observability (collect() maintains these).
        self._gc_runs = 0
        self._nodes_collected = 0
        #: Computed-table instrumentation; the fast kernel maintains the
        #: lookup/hit pair per traversal, the reference kernel leaves it
        #: at zero (its recursive hot path is kept uninstrumented so the
        #: benchmark baseline is not slowed down).
        self._cache_lookups = 0
        self._cache_hits = 0

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Register a variable (order = registration order); returns the
        BDD node for the positive literal."""
        if name in self._var_ids:
            return self.var(name)
        self._var_ids[name] = len(self._var_names)
        self._var_names.append(name)
        return self.var(name)

    def var(self, name: str) -> int:
        level = self._var_ids[name]
        return self._mk(level, self.FALSE, self.TRUE)

    def nvar(self, name: str) -> int:
        level = self._var_ids[name]
        return self._mk(level, self.TRUE, self.FALSE)

    def var_count(self) -> int:
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        return self._var_ids[name]

    def name_of(self, level: int) -> str:
        return self._var_names[level]

    def var_order(self) -> list[str]:
        """Variable names from the top of the order to the bottom."""
        return list(self._var_names)

    # ------------------------------------------------------------------
    # Derived connectives
    # ------------------------------------------------------------------
    def and_not(self, f: int, g: int) -> int:
        """``f & ~g`` — the set difference of the fixpoint loops.

        Derived here; the fast kernel fuses it so the complement of a
        large set is never materialized just to be intersected away.
        """
        return self.and_(f, self.not_(g))

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.TRUE)

    def iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def conj(self, items: list[int]) -> int:
        result = self.TRUE
        for item in items:
            result = self.and_(result, item)
        return result

    def disj(self, items: list[int]) -> int:
        result = self.FALSE
        for item in items:
            result = self.or_(result, item)
        return result

    def forall(self, names: list[str], f: int) -> int:
        return self.not_(self.exists(names, self.not_(f)))

    # ------------------------------------------------------------------
    # Quantification wrappers (schedules are representation-independent)
    # ------------------------------------------------------------------
    def exists(self, names: list[str], f: int) -> int:
        levels = sorted(self._var_ids[name] for name in names)
        return self._exists(frozenset(levels), f, {})

    def and_exists(self, names: list[str], f: int, g: int) -> int:
        """The relational product ``exists names . f & g`` in one pass.

        The workhorse of symbolic image computation (``names`` is one
        variable block, e.g. all next-state variables): fusing the
        conjunction with the quantification never materializes ``f & g``,
        whose BDD can be far larger than the quantified result.
        """
        levels = frozenset(self._var_ids[name] for name in names)
        return self._and_exists(levels, f, g, {})

    def and_exists_list(self, names: list[str], conjuncts: list[int]) -> int:
        """``exists names . conjunct_1 & ... & conjunct_k`` with an early
        quantification schedule.

        The partitioned-transition-relation workhorse: a fragment of the
        relation is kept as a *list* of conjuncts (the frontier set, the
        guard atoms, the write cube), and each quantified variable is
        existentially eliminated as soon as no later conjunct mentions it —
        so the intermediate products never carry variables that are about
        to disappear.  Conjuncts are scheduled greedily: at every step the
        one releasing the most quantified variables is merged next.
        """
        levels = frozenset(
            self._var_ids[name] for name in names if name in self._var_ids
        )
        items = list(conjuncts)
        if not items:
            return self.TRUE
        supports = [self._support_levels(f) for f in items]
        remaining = list(range(len(items)))
        acc = self.TRUE
        live: set[int] = set()   # quantified levels already inside ``acc``
        while remaining:
            best = None
            best_key: tuple[int, int, int] | None = None
            for idx in remaining:
                others: set[int] = set()
                for j in remaining:
                    if j != idx:
                        others |= supports[j]
                releasable = (live | (supports[idx] & levels)) - others
                # Most released vars first; among ties prefer the smaller
                # conjunct support, then input order (determinism).
                key = (-len(releasable), len(supports[idx]), idx)
                if best_key is None or key < best_key:
                    best, best_key = idx, key
            assert best is not None
            others = set()
            for j in remaining:
                if j != best:
                    others |= supports[j]
            releasable = (live | (supports[best] & levels)) - others
            if releasable:
                acc = self._and_exists(frozenset(releasable), acc, items[best], {})
            else:
                acc = self.and_(acc, items[best])
            live = (live | (supports[best] & levels)) - releasable
            remaining.remove(best)
            if acc == self.FALSE:
                return self.FALSE
        return acc

    def support(self, f: int) -> frozenset[str]:
        """The set of variables ``f`` depends on."""
        return frozenset(
            self._var_names[level] for level in self._support_levels(f)
        )

    # ------------------------------------------------------------------
    # GC roots
    # ------------------------------------------------------------------
    def protect(self, f: int) -> int:
        """Register ``f`` as a GC root (refcounted); returns ``f``."""
        self._protected[f] = self._protected.get(f, 0) + 1
        return f

    def unprotect(self, f: int) -> None:
        count = self._protected.get(f, 0)
        if count <= 1:
            self._protected.pop(f, None)
        else:
            self._protected[f] = count - 1

    def live_size(self) -> int:
        """Number of non-terminal nodes currently in the node table."""
        return sum(len(nodes) for nodes in self._level_nodes.values())

    # ------------------------------------------------------------------
    # Dynamic variable reordering (Rudell-style sifting, in place)
    # ------------------------------------------------------------------
    def _swap_blocks(self, start: int, size_a: int, size_b: int) -> None:
        """Exchange the adjacent variable blocks [start, start+size_a) and
        [start+size_a, start+size_a+size_b), preserving the internal order
        of both blocks (a sequence of adjacent swaps)."""
        for moved in range(size_a):
            position = start + size_a - 1 - moved
            for step in range(size_b):
                self.swap_adjacent(position + step)

    def sift(
        self,
        groups: list[list[str]] | None = None,
        roots: tuple[int, ...] | list[int] = (),
        max_groups: int | None = None,
        max_growth: float = 2.0,
    ) -> None:
        """Sifting-based dynamic reordering over variable *groups*.

        Each group (default: every variable on its own) is moved as one
        block through every position of the order; the position minimizing
        the node table is kept.  Grouping is how the encoder preserves its
        interleaved current/next pairing invariant: passing the (x, y)
        pairs as groups keeps each pair adjacent and in x-before-y order
        no matter where sifting parks it.

        ``roots`` (plus every :meth:`protect`-ed id) feed the collector:
        garbage is swept before sifting and between groups so the size
        metric tracks live nodes.  A direction of travel is abandoned once
        the table grows past ``max_growth`` times the best size seen.
        """
        if len(self._var_names) < 2:
            return
        if groups is None:
            blocks = [[name] for name in self._var_names]
        else:
            blocks = [list(group) for group in groups]
            covered = [name for block in blocks for name in block]
            if sorted(covered) != sorted(self._var_names):
                raise ValueError("groups must partition the variable set")
            for block in blocks:
                levels = sorted(self._var_ids[name] for name in block)
                if levels != list(range(levels[0], levels[0] + len(block))):
                    raise ValueError(f"group {block} is not contiguous in the order")
        self.collect(roots)

        def population(block: list[str]) -> int:
            return sum(
                len(self._level_nodes.get(self._var_ids[name], ()))
                for name in block
            )

        by_population = sorted(blocks, key=population, reverse=True)
        if max_groups is not None:
            by_population = by_population[:max_groups]
        for block in by_population:
            self._sift_block(blocks, block, max_growth)
            self.collect(roots)
        self._drop_op_caches()
        self.reorder_count += 1

    def _sift_block(
        self, blocks: list[list[str]], block: list[str], max_growth: float
    ) -> None:
        """Move one block through every position; settle at the best."""
        layout = sorted(blocks, key=lambda b: self._var_ids[b[0]])
        position = layout.index(block)

        def swap_with_next(index: int) -> None:
            start = sum(len(layout[i]) for i in range(index))
            self._swap_blocks(start, len(layout[index]), len(layout[index + 1]))
            layout[index], layout[index + 1] = layout[index + 1], layout[index]

        best_size = self.live_size()
        best_position = position
        limit = int(best_size * max_growth) + 1

        current = position
        while current < len(layout) - 1:    # travel down
            swap_with_next(current)
            current += 1
            size = self.live_size()
            if size < best_size:
                best_size, best_position = size, current
                limit = int(best_size * max_growth) + 1
            if size > limit:
                break
        while current > 0:                  # travel back up, past the start
            swap_with_next(current - 1)
            current -= 1
            size = self.live_size()
            if size < best_size:
                best_size, best_position = size, current
                limit = int(best_size * max_growth) + 1
            if size > limit and current <= best_position:
                break
        while current < best_position:      # settle on the best position
            swap_with_next(current)
            current += 1
        while current > best_position:
            swap_with_next(current - 1)
            current -= 1

    # ------------------------------------------------------------------
    # Automatic reordering trigger
    # ------------------------------------------------------------------
    def set_auto_reorder(
        self, groups: list[list[str]] | None, threshold: int
    ) -> None:
        """Arm :meth:`maybe_reorder`: once the live node table outgrows
        ``threshold``, the next call sifts ``groups`` and doubles the
        threshold (CUDD's classic growth policy)."""
        self._reorder_groups = groups if groups is not None else None
        self._reorder_threshold = threshold
        self._gc_watermark = 0

    def disable_auto_reorder(self) -> None:
        """Disarm :meth:`maybe_reorder` (e.g. once the owner of the
        manager can no longer enumerate every live root)."""
        self._reorder_threshold = None

    def maybe_reorder(self, extra_roots: tuple[int, ...] | list[int] = ()) -> bool:
        """Sift if the node table outgrew the armed threshold.

        Only call at *safe points*: no BDD operation may be mid-recursion,
        and every live id must be protected or passed via ``extra_roots``.
        Garbage is collected first — if dead intermediates alone explain
        the growth, collection is the whole fix and the (far more
        expensive) sift is skipped; sifting runs only when *live* nodes
        outgrew the threshold, i.e. the order itself is the problem.
        Returns True when a reorder ran.
        """
        if self._reorder_threshold is None:
            return False
        size = self.live_size()
        if size <= self._reorder_threshold or size <= self._gc_watermark:
            return False
        self.collect(tuple(extra_roots))
        live = self.live_size()
        self._gc_watermark = 2 * live
        if live <= self._reorder_threshold:
            return False
        self.sift(self._reorder_groups, roots=tuple(extra_roots))
        live = self.live_size()
        self._gc_watermark = 2 * live
        self._reorder_threshold = max(self._reorder_threshold, 2 * live)
        return True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _unique_entries(self) -> int:
        raise NotImplementedError

    def _computed_entries(self) -> int:
        raise NotImplementedError

    def _drop_op_caches(self) -> None:
        """Drop every memoized operation table (entries may reference
        dead ids after a collection, or be rebuilt after a sift)."""
        raise NotImplementedError

    def stats(self) -> dict:
        """A JSON-ready snapshot of the kernel's observable state.

        ``hit_rate`` is None on kernels that do not instrument their
        computed-table lookups (the reference kernel keeps its hot path
        pristine so benchmark baselines stay honest).
        """
        lookups = self._cache_lookups
        return {
            "kernel": self.KERNEL_NAME,
            "vars": len(self._var_names),
            "live_nodes": self.live_size(),
            "peak_nodes": self.allocated_nodes(),
            "unique_entries": self._unique_entries(),
            "computed_entries": self._computed_entries(),
            "cache_lookups": lookups,
            "cache_hits": self._cache_hits,
            "hit_rate": (self._cache_hits / lookups) if lookups else None,
            "gc_runs": self._gc_runs,
            "nodes_collected": self._nodes_collected,
            "reorders": self.reorder_count,
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Knob spellings accepted everywhere a ``kernel=`` knob is threaded
#: (CLI flags, pipeline knobs, service submissions).  ``dd`` is accepted
#: only when the package is importable — see :func:`available_kernels`.
KERNEL_CHOICES = ("auto", "reference", "fast")

#: What ``auto`` resolves to.
DEFAULT_KERNEL = "fast"

_dd_probe_lock = threading.Lock()
_dd_available: bool | None = None


def _dd_importable() -> bool:
    """Whether the optional ``dd`` package (CUDD bindings / pure-Python
    autoref) is present.  Probed once per process."""
    global _dd_available
    if _dd_available is None:
        with _dd_probe_lock:
            if _dd_available is None:
                try:
                    import dd.autoref  # noqa: F401
                    _dd_available = True
                except Exception:
                    _dd_available = False
    return _dd_available


def available_kernels() -> tuple[str, ...]:
    """Concrete kernel names registered in this process (no ``auto``)."""
    names = ["reference", "fast"]
    if _dd_importable():
        names.append("dd")
    return tuple(names)


def resolve_kernel(kernel: str = "auto") -> str:
    """Validate a kernel knob and resolve ``auto`` to the default.

    ``auto`` always resolves to ``fast`` — never to ``dd``, even when
    installed: the cross-kernel differential suite only vouches for the
    kernels that run in CI, and an environment-dependent default would
    make analysis results a function of what happens to be pip-installed.
    """
    if kernel == "auto":
        return DEFAULT_KERNEL
    if kernel in ("reference", "fast"):
        return kernel
    if kernel == "dd":
        if not _dd_importable():
            raise ValueError(
                "kernel 'dd' requested but the dd package is not installed"
            )
        return kernel
    raise ValueError(
        f"unknown kernel {kernel!r}: expected one of "
        f"{', '.join(KERNEL_CHOICES + ('dd',))}"
    )


def make_kernel(kernel: str | BddKernel = "auto") -> BddKernel:
    """Instantiate a kernel by knob name; pass instances through.

    Accepting an instance lets callers (tests, the encoder's owner)
    inject a pre-configured manager while everything else names kernels
    by knob string.
    """
    if not isinstance(kernel, str):
        return kernel
    name = resolve_kernel(kernel)
    if name == "reference":
        from repro.mc.bdd import BDD

        return BDD()
    if name == "fast":
        from repro.mc.fastbdd import FastKernel

        return FastKernel()
    from repro.mc.ddkernel import DdKernel

    return DdKernel()


# ----------------------------------------------------------------------
# Process-wide stats accumulator (service /v1/stats, CLI summaries)
# ----------------------------------------------------------------------

_stats_lock = threading.Lock()
_stats_runs: dict[str, dict] = {}


def record_kernel_stats(stats: dict | None) -> None:
    """Fold one finished run's :meth:`BddKernel.stats` snapshot into the
    process-wide aggregate (keyed by kernel name)."""
    if not stats or "kernel" not in stats:
        return
    name = stats["kernel"]
    with _stats_lock:
        agg = _stats_runs.setdefault(
            name,
            {
                "kernel": name,
                "runs": 0,
                "peak_nodes": 0,
                "max_live_nodes": 0,
                "cache_lookups": 0,
                "cache_hits": 0,
                "gc_runs": 0,
                "nodes_collected": 0,
                "reorders": 0,
            },
        )
        agg["runs"] += 1
        agg["peak_nodes"] = max(agg["peak_nodes"], stats.get("peak_nodes") or 0)
        agg["max_live_nodes"] = max(
            agg["max_live_nodes"], stats.get("live_nodes") or 0
        )
        for key in ("cache_lookups", "cache_hits", "gc_runs",
                    "nodes_collected", "reorders"):
            agg[key] += stats.get(key) or 0


def aggregate_kernel_stats() -> dict[str, dict]:
    """Per-kernel aggregates of every run recorded in this process, with
    a derived ``hit_rate`` (None when the kernel is uninstrumented)."""
    with _stats_lock:
        snapshot = {name: dict(agg) for name, agg in _stats_runs.items()}
    for agg in snapshot.values():
        lookups = agg["cache_lookups"]
        agg["hit_rate"] = (agg["cache_hits"] / lookups) if lookups else None
    return snapshot


def reset_kernel_stats() -> None:
    with _stats_lock:
        _stats_runs.clear()
