"""A from-scratch DPLL SAT solver (unit propagation + branching heuristic).

Backs the bounded model checker (:mod:`repro.mc.bmc`), mirroring NuSMV's
SAT-based engine the paper enables against state explosion (Sec. 5).

CNF convention: variables are positive integers; literals are non-zero
integers (negative = negated); a clause is a list of literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Solver:
    """Incremental-ish DPLL solver: add clauses, then :meth:`solve`."""

    clauses: list[list[int]] = field(default_factory=list)
    nvars: int = 0

    def new_var(self) -> int:
        self.nvars += 1
        return self.nvars

    def add_clause(self, clause: list[int]) -> None:
        for literal in clause:
            self.nvars = max(self.nvars, abs(literal))
        self.clauses.append(list(clause))

    # ------------------------------------------------------------------
    def solve(
        self, assumptions: list[int] | None = None
    ) -> dict[int, bool] | None:
        """Return a satisfying assignment {var: bool} or None (UNSAT)."""
        assignment: dict[int, bool] = {}
        for literal in assumptions or []:
            var, value = abs(literal), literal > 0
            if assignment.get(var, value) != value:
                return None
            assignment[var] = value

        def backtrack() -> bool:
            """Flip the most recent un-flipped decision; False if exhausted."""
            nonlocal assignment
            while frames:
                snapshot, decided, tried_false = frames.pop()
                if not tried_false:
                    assignment = dict(snapshot)
                    assignment[decided] = False
                    frames.append((snapshot, decided, True))
                    return True
            return False

        # Iterative DPLL: snapshot the assignment before each decision.
        frames: list[tuple[dict[int, bool], int, bool]] = []
        while True:
            while self._propagate(assignment):  # conflict
                if not backtrack():
                    return None
            variable = self._pick_branch(assignment)
            if variable is None:
                return dict(assignment)
            frames.append((dict(assignment), variable, False))
            assignment[variable] = True

    # ------------------------------------------------------------------
    def _propagate(self, assignment: dict[int, bool]) -> bool:
        """Unit propagation; True on conflict."""
        changed = True
        while changed:
            changed = False
            for clause in self.clauses:
                unassigned: int | None = None
                satisfied = False
                count = 0
                for literal in clause:
                    var = abs(literal)
                    if var in assignment:
                        if assignment[var] == (literal > 0):
                            satisfied = True
                            break
                    else:
                        unassigned = literal
                        count += 1
                if satisfied:
                    continue
                if count == 0:
                    return True  # conflict
                if count == 1 and unassigned is not None:
                    assignment[abs(unassigned)] = unassigned > 0
                    changed = True
        return False

    def _pick_branch(self, assignment: dict[int, bool]) -> int | None:
        # Branch on the variable appearing in the most unresolved clauses.
        scores: dict[int, int] = {}
        for clause in self.clauses:
            if any(
                abs(l) in assignment and assignment[abs(l)] == (l > 0)
                for l in clause
            ):
                continue
            for literal in clause:
                var = abs(literal)
                if var not in assignment:
                    scores[var] = scores.get(var, 0) + 1
        if scores:
            return max(scores, key=lambda v: (scores[v], -v))
        for var in range(1, self.nvars + 1):
            if var not in assignment:
                return var
        return None


def solve(clauses: list[list[int]]) -> dict[int, bool] | None:
    """One-shot solve."""
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()
