"""A from-scratch CDCL SAT solver (trail + two-watched-literal propagation).

Backs the bounded model checker (:mod:`repro.mc.bmc`), the CNF union
encoder (:mod:`repro.mc.cnf`) and the IC3 prover (:mod:`repro.mc.ic3`),
mirroring NuSMV's SAT-based engine the paper enables against state
explosion (Sec. 5).

CNF convention: variables are positive integers; literals are non-zero
integers (negative = negated); a clause is a list of literals.

:class:`Solver` is the production engine: assignments live on a trail
(no per-decision dict snapshots), propagation visits only the clauses
watching the falsified literal, conflicts learn a 1UIP clause and
backjump, and ``solve(assumptions=...)`` treats assumptions as the
first decision levels — which is what makes incremental BMC unrolling
and IC3 frame queries cheap.  :class:`ReferenceSolver` keeps the old
snapshot-copy DPLL as a differential oracle (see ``tests/test_sat.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

_UNASSIGNED = 0


class Solver:
    """Incremental CDCL solver: add clauses, then :meth:`solve`.

    Clauses persist across :meth:`solve` calls; each call may pass a
    different list of assumption literals.  ``self.clauses`` records
    every clause handed to :meth:`add_clause` verbatim (learned clauses
    are internal), so callers can meter encoding growth.
    """

    def __init__(self) -> None:
        self.nvars = 0
        self.clauses: list[list[int]] = []
        self._unsat = False
        self._units: list[int] = []
        self._watches: dict[int, list[list[int]]] = {}
        # Per-variable state, 1-indexed (slot 0 unused).
        self._assign: list[int] = [0]  # 0 unassigned, +1 true, -1 false
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [True]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._heap: list[tuple[float, int]] = []
        self._var_inc = 1.0

    # -- variables -----------------------------------------------------
    def new_var(self) -> int:
        self._ensure_vars(self.nvars + 1)
        return self.nvars

    def _ensure_vars(self, n: int) -> None:
        while self.nvars < n:
            self.nvars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(True)
            heappush(self._heap, (0.0, self.nvars))

    # -- clauses -------------------------------------------------------
    def add_clause(self, clause: list[int]) -> None:
        for literal in clause:
            self._ensure_vars(abs(literal))
        self.clauses.append(list(clause))
        seen: set[int] = set()
        cleaned: list[int] = []
        for literal in clause:
            if -literal in seen:
                return  # tautology
            if literal not in seen:
                seen.add(literal)
                cleaned.append(literal)
        # Simplify against the root-level trail: literals already decided
        # at level 0 never change again, and a clause attached with a
        # falsified watch would otherwise miss its propagation trigger.
        final: list[int] = []
        for literal in cleaned:
            var = abs(literal)
            value = self._assign[var]
            if value != _UNASSIGNED and self._level[var] == 0:
                if (value if literal > 0 else -value) == 1:
                    return  # satisfied at root
                continue  # falsified at root: drop
            final.append(literal)
        if not final:
            self._unsat = True
        elif len(final) == 1:
            self._units.append(final[0])
        else:
            self._attach(final)

    def _attach(self, clause: list[int]) -> None:
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # -- assignment primitives -----------------------------------------
    def _value(self, literal: int) -> int:
        value = self._assign[abs(literal)]
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: list[int] | None) -> None:
        var = abs(literal)
        self._assign[var] = 1 if literal > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(literal)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for literal in reversed(self._trail[limit:]):
            var = abs(literal)
            self._phase[var] = literal > 0
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # -- propagation ---------------------------------------------------
    def _propagate(self) -> list[int] | None:
        """Two-watched-literal BCP; returns the conflicting clause."""
        while self._qhead < len(self._trail):
            literal = self._trail[self._qhead]
            self._qhead += 1
            falsified = -literal
            watchers = self._watches.get(falsified)
            if not watchers:
                continue
            kept: list[list[int]] = []
            n = len(watchers)
            for i in range(n):
                clause = watchers[i]
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(clause)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        break
                else:
                    kept.append(clause)
                    if self._value(first) == -1:  # conflict
                        kept.extend(watchers[i + 1:])
                        self._watches[falsified] = kept
                        self._qhead = len(self._trail)
                        return clause
                    self._enqueue(first, clause)
            self._watches[falsified] = kept
        return None

    # -- conflict analysis ---------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.nvars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heappush(self._heap, (-self._activity[var], var))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning; returns (learnt clause, backjump level)."""
        level = len(self._trail_lim)
        learnt: list[int] = []
        seen: set[int] = set()
        counter = 0
        index = len(self._trail) - 1
        p = 0
        reason: list[int] = conflict
        while True:
            for q in reason:
                var = abs(q)
                if q == p or var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == level:
                    counter += 1
                else:
                    learnt.append(q)
            while abs(self._trail[index]) not in seen:
                index -= 1
            p = self._trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(p)] or []
        learnt.insert(0, -p)
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest decision level in the clause.
        best = max(range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    # -- decision ------------------------------------------------------
    def _pick_branch(self) -> int | None:
        while self._heap:
            _, var = heappop(self._heap)
            if self._assign[var] == _UNASSIGNED:
                return var
        for var in range(1, self.nvars + 1):  # heap drained; rescan
            if self._assign[var] == _UNASSIGNED:
                return var
        return None

    # -- main loop -----------------------------------------------------
    def solve(
        self, assumptions: list[int] | None = None
    ) -> dict[int, bool] | None:
        """Return a satisfying assignment {var: bool} or None (UNSAT).

        ``assumptions`` are temporary unit constraints for this call
        only; permanent clauses (and anything learned) are kept, making
        repeated calls over a growing formula incremental.
        """
        if self._unsat:
            return None
        self._backtrack(0)
        while self._units:
            literal = self._units.pop()
            value = self._value(literal)
            if value == -1:
                self._unsat = True
                return None
            if value == 0:
                self._enqueue(literal, None)
        if self._propagate() is not None:
            self._unsat = True
            return None
        assumed = list(assumptions or [])
        for literal in assumed:
            self._ensure_vars(abs(literal))
        nassumed = len(assumed)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                current = len(self._trail_lim)
                if current == 0:
                    self._unsat = True
                    return None
                if current <= nassumed:
                    # Every decision so far is an assumption: the
                    # assumption set itself is contradictory.
                    self._backtrack(0)
                    return None
                self._var_inc /= 0.95
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                if len(learnt) > 1:
                    self._attach(learnt)
                self._enqueue(learnt[0], learnt if len(learnt) > 1 else None)
                continue
            current = len(self._trail_lim)
            if current < nassumed:
                literal = assumed[current]
                value = self._value(literal)
                if value == -1:
                    self._backtrack(0)
                    return None
                self._trail_lim.append(len(self._trail))
                if value == 0:
                    self._enqueue(literal, None)
                continue
            var = self._pick_branch()
            if var is None:
                model = {
                    v: self._assign[v] > 0 for v in range(1, self.nvars + 1)
                }
                self._backtrack(0)
                return model
            self._trail_lim.append(len(self._trail))
            self._enqueue(var if self._phase[var] else -var, None)


@dataclass
class ReferenceSolver:
    """The original snapshot-copy DPLL solver, kept as a differential
    oracle for :class:`Solver` (same API, no incrementality tricks)."""

    clauses: list[list[int]] = field(default_factory=list)
    nvars: int = 0

    def new_var(self) -> int:
        self.nvars += 1
        return self.nvars

    def add_clause(self, clause: list[int]) -> None:
        for literal in clause:
            self.nvars = max(self.nvars, abs(literal))
        self.clauses.append(list(clause))

    # ------------------------------------------------------------------
    def solve(
        self, assumptions: list[int] | None = None
    ) -> dict[int, bool] | None:
        """Return a satisfying assignment {var: bool} or None (UNSAT)."""
        assignment: dict[int, bool] = {}
        for literal in assumptions or []:
            var, value = abs(literal), literal > 0
            if assignment.get(var, value) != value:
                return None
            assignment[var] = value

        def backtrack() -> bool:
            """Flip the most recent un-flipped decision; False if exhausted."""
            nonlocal assignment
            while frames:
                snapshot, decided, tried_false = frames.pop()
                if not tried_false:
                    assignment = dict(snapshot)
                    assignment[decided] = False
                    frames.append((snapshot, decided, True))
                    return True
            return False

        # Iterative DPLL: snapshot the assignment before each decision.
        frames: list[tuple[dict[int, bool], int, bool]] = []
        while True:
            while self._propagate(assignment):  # conflict
                if not backtrack():
                    return None
            variable = self._pick_branch(assignment)
            if variable is None:
                return dict(assignment)
            frames.append((dict(assignment), variable, False))
            assignment[variable] = True

    # ------------------------------------------------------------------
    def _propagate(self, assignment: dict[int, bool]) -> bool:
        """Unit propagation; True on conflict."""
        changed = True
        while changed:
            changed = False
            for clause in self.clauses:
                unassigned: int | None = None
                satisfied = False
                count = 0
                for literal in clause:
                    var = abs(literal)
                    if var in assignment:
                        if assignment[var] == (literal > 0):
                            satisfied = True
                            break
                    else:
                        unassigned = literal
                        count += 1
                if satisfied:
                    continue
                if count == 0:
                    return True  # conflict
                if count == 1 and unassigned is not None:
                    assignment[abs(unassigned)] = unassigned > 0
                    changed = True
        return False

    def _pick_branch(self, assignment: dict[int, bool]) -> int | None:
        # Branch on the variable appearing in the most unresolved clauses.
        scores: dict[int, int] = {}
        for clause in self.clauses:
            if any(
                abs(l) in assignment and assignment[abs(l)] == (l > 0)
                for l in clause
            ):
                continue
            for literal in clause:
                var = abs(literal)
                if var not in assignment:
                    scores[var] = scores.get(var, 0) + 1
        if scores:
            return max(scores, key=lambda v: (scores[v], -v))
        for var in range(1, self.nvars + 1):
            if var not in assignment:
                return var
        return None


def solve(clauses: list[list[int]]) -> dict[int, bool] | None:
    """One-shot solve."""
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()
