"""Ground truth for the evaluation (Tables 3-4, Appendix C).

These tables drive the benchmark harness: every entry mirrors a row of the
paper, and the benchmarks assert that the reproduction's analysis output
matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ----------------------------------------------------------------------
# Table 3 — individual third-party apps and their violated properties.
# ----------------------------------------------------------------------
TABLE3_INDIVIDUAL: dict[str, set[str]] = {
    "TP1": {"P.13"},
    "TP2": {"P.12"},
    "TP3": {"S.4"},
    "TP4": {"P.29"},
    "TP5": {"P.28"},
    "TP6": {"P.13", "S.1"},
    "TP7": {"S.1"},
    "TP8": {"P.1"},
    "TP9": {"S.2"},
}

#: Nine individual apps violate ten properties (Sec. 6 headline numbers).
TABLE3_APP_COUNT = 9
TABLE3_DISTINCT_PROPERTY_COUNT = 10  # counting per-app property pairs

# ----------------------------------------------------------------------
# Table 4 — multi-app groups (app ids, events, violated properties).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Group:
    group_id: str
    apps: tuple[str, ...]
    violated: frozenset[str]


TABLE4_GROUPS: tuple[Group, ...] = (
    Group("G.1", ("O3", "O4", "O8", "TP12"), frozenset({"S.1", "S.2", "S.3"})),
    Group("G.2", ("O14", "O9", "O16", "TP3", "TP2"), frozenset({"S.2", "S.4"})),
    Group(
        "G.3",
        ("O7", "TP3", "O30", "TP21", "O31", "TP22", "O12", "TP19"),
        frozenset({"P.12", "P.13", "P.14", "P.17", "S.1", "S.2"}),
    ),
)

#: "three groups that have 17 apps violate 11 properties" (Sec. 6.1).
TABLE4_APP_COUNT = 17          # 4 + 5 + 8 (TP3 is counted in both groups)
TABLE4_PROPERTY_COUNT = 11     # 3 + 2 + 6

# ----------------------------------------------------------------------
# Appendix C — MalIoT ground truth.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MaliotEntry:
    app_id: str
    #: properties this app (or its environment) truly violates — a tuple so
    #: the same property violated for two different devices counts twice
    #: (App16/App17: "P.14 is violated multiple times")
    violations: tuple[str, ...]
    #: "P" (app-specific), "S" (general), "FP" (false positive expected),
    #: "O" (dynamic analysis required), "!" (outside attacker model)
    result: str
    #: ids of apps this one must be co-installed with for the violation
    environment: tuple[str, ...] = ()
    detectable: bool = True


MALIOT_GROUND_TRUTH: tuple[MaliotEntry, ...] = (
    MaliotEntry("App1", ("P.2",), "P"),
    MaliotEntry("App2", ("P.9",), "P"),
    MaliotEntry("App3", ("S.2",), "S"),
    MaliotEntry("App4", ("S.1",), "S"),
    MaliotEntry("App5", (), "FP"),
    MaliotEntry("App6", ("P.1", "P.13"), "P"),
    MaliotEntry("App7", ("S.4",), "S"),
    MaliotEntry("App8", ("S.5", "P.1"), "PS"),
    MaliotEntry("App9", ("P.27",), "O", detectable=False),
    MaliotEntry("App10", ("dynamic-permissions",), "!", detectable=False),
    MaliotEntry("App11", ("data-leak",), "!", detectable=False),
    MaliotEntry("App12", ("P.3",), "P", environment=("App13", "App14")),
    MaliotEntry("App13", ("P.3",), "P", environment=("App12", "App14")),
    MaliotEntry("App14", ("P.3",), "P", environment=("App12", "App13")),
    MaliotEntry("App15", ("S.1",), "S", environment=("App1",)),
    MaliotEntry("App16", ("P.14", "P.14"), "P", environment=("App17",)),
    MaliotEntry("App17", ("P.14", "P.14"), "P", environment=("App16",)),
)

#: Multi-app MalIoT environments and the property each must reveal.
MALIOT_ENVIRONMENTS: tuple[tuple[tuple[str, ...], str], ...] = (
    (("App12", "App13", "App14"), "P.3"),
    (("App1", "App15"), "S.1"),
    (("App16", "App17"), "P.14"),
)

#: Headline numbers (Sec. 6.2): 20 unique ground-truth violations across the
#: 17 apps; Soteria correctly identifies 17 (App9 needs dynamic analysis,
#: App10/App11 are outside the attacker model) and raises one false warning
#: (App5, call by reflection).
MALIOT_TOTAL_VIOLATIONS = 20
MALIOT_DETECTED = 17
MALIOT_FALSE_POSITIVES = 1
MALIOT_MISSED = 3


def maliot_violation_count() -> int:
    """Recompute the 20-violation headline from the per-app entries."""
    total = 0
    for entry in MALIOT_GROUND_TRUTH:
        if entry.result == "FP":
            continue
        total += len(entry.violations)
    return total


def maliot_detectable_count() -> int:
    total = 0
    for entry in MALIOT_GROUND_TRUTH:
        if entry.result == "FP" or not entry.detectable:
            continue
        total += len(entry.violations)
    return total
