"""Evaluation corpus (Soteria Sec. 6).

* ``apps/official`` — 35 "official market" apps O1-O35 (vetted; individually
  clean; some participate in the Table 4 multi-app groups),
* ``apps/thirdparty`` — 30 community apps TP1-TP30 (nine violate properties
  individually — Table 3),
* ``apps/maliot`` — the 17-app MalIoT suite with 20 ground-truth violations
  (Appendix C).

The original corpora are closed (fetched from the SmartThings market/forum
in 2017 and the IoTBench repository); these apps are reconstructions from
the paper's per-app descriptions, engineered so the violation structure of
Tables 3-4 and Appendix C reproduces exactly.
"""

from repro.corpus.loader import (
    app_ids,
    load_app,
    load_corpus,
    load_environment_sources,
)
from repro.corpus.batch import analyze_batch, analyze_corpus
from repro.corpus.diskcache import DiskCache, PIPELINE_VERSION
from repro.corpus.sweep import (
    SweepOutcome,
    environment_only_ids,
    groups_sharing_devices,
    pairs,
    sweep_dataset,
    sweep_environments,
)
from repro.corpus import groundtruth

__all__ = [
    "DiskCache",
    "PIPELINE_VERSION",
    "SweepOutcome",
    "analyze_batch",
    "analyze_corpus",
    "app_ids",
    "environment_only_ids",
    "groups_sharing_devices",
    "load_app",
    "load_corpus",
    "load_environment_sources",
    "pairs",
    "sweep_dataset",
    "sweep_environments",
    "groundtruth",
]
