/**
 *  Energy Budget Watch
 *
 *  User-defined budget threshold over the energy meter.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Energy Budget Watch",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Warn me when the whole-home meter passes my monthly budget.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "main_meter", "capability.energyMeter", title: "Main meter", required: true
    }
    section("Settings") {
        input "monthly_budget", "number", title: "Budget (kWh)", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(main_meter, "energy", energyHandler)
}

def energyHandler(evt) {
    if (evt.value > monthly_budget) {
        log.debug "budget exceeded"
        sendPush("Energy budget exceeded for this month.")
    }
}
