/**
 *  Laundry Monitor
 *
 *  Pure sensing app: the 3-watt cut point partitions the power domain.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Laundry Monitor",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Tell me when the washing machine's power draw says the cycle is done.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "washer_meter", "capability.powerMeter", title: "Washer power meter", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(washer_meter, "power", cycleHandler)
}

def cycleHandler(evt) {
    if (evt.value < 3) {
        log.debug "draw fell to idle, cycle finished"
        sendPush("The laundry is done.")
    }
}
