/**
 *  Welcome Glow
 *
 *  Table 4 group G.2 member: duplicates O9's hall-light command on the
 *  same door event.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Welcome Glow",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Greet anyone opening the front door with the hall light and a notification.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", glowHandler)
}

def glowHandler(evt) {
    log.debug "door open, glow and notify"
    hall_light.on()
    sendPush("The front door was opened.")
}
