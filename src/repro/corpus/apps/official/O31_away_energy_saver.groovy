/**
 *  Away Energy Saver
 *
 *  Table 4 group G.3 member: conflicts with O12 on the shared accent
 *  light when a mode-writing app joins the environment.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Away Energy Saver",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn the accent light off when the house switches to away.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "accent_light", "capability.switch", title: "Accent light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.away", awayHandler)
}

def awayHandler(evt) {
    log.debug "away mode, accent light off"
    accent_light.off()
}
