/**
 *  Open Door Hall Light
 *
 *  Table 4 group G.1 member: shares the front contact and hall light
 *  with O4, O8, and TP12.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Open Door Hall Light",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn the hall light on whenever the front door opens.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", doorOpenHandler)
}

def doorOpenHandler(evt) {
    log.debug "front door opened, hall light on"
    hall_light.on()
}
