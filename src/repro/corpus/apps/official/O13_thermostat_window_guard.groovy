/**
 *  Thermostat Window Guard
 *
 *  Complementary contact events drive the thermostat to different
 *  modes, so no general property fires.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Thermostat Window Guard",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Pause the thermostat while a window is open and resume when it shuts.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_window", "capability.contactSensor", title: "Window", required: true
        input "ther", "capability.thermostat", title: "Thermostat", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_window, "contact.open", windowOpenHandler)
    subscribe(front_window, "contact.closed", windowClosedHandler)
}

def windowOpenHandler(evt) {
    log.debug "window open, thermostat off"
    ther.off()
}

def windowClosedHandler(evt) {
    log.debug "window closed, thermostat back to auto"
    ther.auto()
}
