/**
 *  Auto Lock On Close
 *
 *  Lock-on-close only; the app never unlocks anything.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Auto Lock On Close",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Lock the deadbolt whenever the entry door finishes closing.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "entry_door", "capability.contactSensor", title: "Entry door", required: true
        input "door_lock", "capability.lock", title: "Deadbolt", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(entry_door, "contact.closed", closedHandler)
}

def closedHandler(evt) {
    log.debug "door closed, locking"
    door_lock.lock()
}
