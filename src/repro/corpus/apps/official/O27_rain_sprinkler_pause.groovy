/**
 *  Rain Sprinkler Pause
 *
 *  Wet report shuts the pump off; nothing restarts it automatically.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Rain Sprinkler Pause",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Stop the sprinkler pump when the rain sensor reports water.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "rain_sensor", "capability.waterSensor", title: "Rain sensor", required: true
        input "sprinkler_pump", "capability.switch", title: "Sprinkler pump", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(rain_sensor, "water.wet", rainHandler)
}

def rainHandler(evt) {
    log.debug "rain detected, pausing irrigation"
    sprinkler_pump.off()
}
