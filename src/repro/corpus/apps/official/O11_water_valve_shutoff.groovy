/**
 *  Water Valve Shutoff
 *
 *  The paper's Water-Leak-Detector shape: wet report closes the valve
 *  (P.30 holds by construction).
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Water Valve Shutoff",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Close the main water valve as soon as a leak is detected.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "leak_sensor", "capability.waterSensor", title: "Leak sensor", required: true
        input "valve_device", "capability.valve", title: "Main water valve", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(leak_sensor, "water.wet", leakHandler)
}

def leakHandler(evt) {
    log.debug "leak detected, closing the valve"
    valve_device.close()
}
