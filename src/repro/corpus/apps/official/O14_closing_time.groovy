/**
 *  Closing Time
 *
 *  Table 4 group G.2 member: races TP2's away-mode light command on the
 *  shared hall light.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Closing Time",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn the hall light off once the front door is closed.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.closed", doorClosedHandler)
}

def doorClosedHandler(evt) {
    log.debug "door closed, hall light off"
    hall_light.off()
}
