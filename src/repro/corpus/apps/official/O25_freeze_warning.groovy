/**
 *  Freeze Warning
 *
 *  User-defined frost threshold abstracts the temperature domain to two
 *  symbolic regions.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Freeze Warning",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Text me when the crawl-space temperature drops below my threshold.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "pipe_sensor", "capability.temperatureMeasurement", title: "Crawl-space sensor", required: true
    }
    section("Settings") {
        input "frost_temp", "number", title: "Alert below", required: true
        input "phone_number", "phone", title: "Phone number", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(pipe_sensor, "temperature", tempHandler)
}

def tempHandler(evt) {
    if (evt.value < frost_temp) {
        log.debug "freeze risk, texting"
        sendSms(phone_number, "Freeze warning: crawl-space is cold.")
    }
}
