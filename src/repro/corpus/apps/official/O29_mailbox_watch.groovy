/**
 *  Mailbox Watch
 *
 *  A single contact sensor and a notification; no actuators at all.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Mailbox Watch",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Notify me the moment the mailbox lid is opened.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "mail_contact", "capability.contactSensor", title: "Mailbox lid", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(mail_contact, "contact.open", mailHandler)
}

def mailHandler(evt) {
    log.debug "mailbox opened"
    sendPush("The mail has arrived.")
}
