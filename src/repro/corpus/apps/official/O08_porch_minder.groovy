/**
 *  Porch Minder
 *
 *  Table 4 group G.1 member: repeats TP12's porch-light command and
 *  mirrors O4's foyer lamp on the complementary event.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Porch Minder",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Douse the porch light once the door is open and glow the foyer after it shuts.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "porch_light", "capability.switch", title: "Porch light", required: true
        input "foyer_lamp", "capability.switch", title: "Foyer lamp", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", doorOpenHandler)
    subscribe(front_contact, "contact.closed", doorClosedHandler)
}

def doorOpenHandler(evt) {
    log.debug "door open, porch light out"
    porch_light.off()
}

def doorClosedHandler(evt) {
    log.debug "door closed, foyer lamp on"
    foyer_lamp.on()
}
