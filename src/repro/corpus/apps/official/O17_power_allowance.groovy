/**
 *  Power Allowance
 *
 *  The wattage threshold is a user preference, abstracted into the two
 *  symbolic regions below/at-or-above the setting.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Power Allowance",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Cut power to a plug once it draws more than your allowance.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "power_meter", "capability.powerMeter", title: "Meter on the plug", required: true
        input "wall_plug", "capability.switch", title: "Plug to control", required: true
    }
    section("Settings") {
        input "watt_cap", "number", title: "Maximum watts", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(power_meter, "power", powerHandler)
}

def powerHandler(evt) {
    if (evt.value > watt_cap) {
        log.debug "over the allowance, cutting the plug"
        wall_plug.off()
    }
}
