/**
 *  CO Responder
 *
 *  Alarm escalation on CO detection; the alarm is never silenced while
 *  the hazard persists.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "CO Responder",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Sound siren and strobe when carbon monoxide is detected.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "co_sensor", "capability.carbonMonoxideDetector", title: "CO detector", required: true
        input "siren_alarm", "capability.alarm", title: "Alarm", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(co_sensor, "carbonMonoxide.detected", coHandler)
}

def coHandler(evt) {
    log.debug "carbon monoxide detected, full alarm"
    siren_alarm.both()
}
