/**
 *  Welcome Foyer Lamp
 *
 *  Table 4 group G.1 member: complements O8, which lights the same lamp
 *  when the door closes.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Welcome Foyer Lamp",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Light the foyer lamp when the front door opens.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "foyer_lamp", "capability.switch", title: "Foyer lamp", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", welcomeHandler)
}

def welcomeHandler(evt) {
    log.debug "door open, lighting the foyer"
    foyer_lamp.on()
}
