/**
 *  Humidity Vent Fan
 *
 *  Numeric humidity readings are partitioned by the 45/60 percent
 *  comparison cut points (property abstraction, Sec. 4.2.1).
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Humidity Vent Fan",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Run the vent fan when humidity is high and rest it when the air is dry.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "humidity_sensor", "capability.relativeHumidityMeasurement", title: "Humidity sensor", required: true
        input "vent_fan", "capability.switch", title: "Vent fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(humidity_sensor, "humidity", humidityHandler)
}

def humidityHandler(evt) {
    if (evt.value > 60) {
        vent_fan.on()
    }
    if (evt.value < 45) {
        vent_fan.off()
    }
}
