/**
 *  Away Climate Prep
 *
 *  Table 4 group G.3 member: both outlets are switched on by the same
 *  mode handler; the conflict surfaces only when another app drives the
 *  mode (P.17 in the union).
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Away Climate Prep",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Power the server-closet AC and the pipe heater whenever the house goes away.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "ac_unit", "capability.switch", title: "Closet AC outlet", required: true
        input "space_heater", "capability.switch", title: "Pipe heater outlet", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.away", awayHandler)
}

def awayHandler(evt) {
    log.debug "away mode, powering closet AC and pipe heater"
    ac_unit.on()
    space_heater.on()
}
