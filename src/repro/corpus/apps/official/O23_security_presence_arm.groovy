/**
 *  Security Presence Arm
 *
 *  Disarm happens only on the arrival event, so P.9 holds.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Security Presence Arm",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Arm the security system when everyone leaves; disarm it on arrival.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "family_presence", "capability.presenceSensor", title: "Family presence", required: true
        input "home_security", "capability.securitySystem", title: "Security system", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(family_presence, "presence.present", arriveHandler)
    subscribe(family_presence, "presence.not present", departHandler)
}

def arriveHandler(evt) {
    log.debug "family home, disarming"
    home_security.disarm()
}

def departHandler(evt) {
    log.debug "house empty, arming away"
    home_security.armAway()
}
