/**
 *  Battery Guardian
 *
 *  A constant 20-percent cut point: the 0-100 battery domain reduces to
 *  three abstract regions.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Battery Guardian",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Remind me to change batteries when a sensor reports under 20 percent.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "sensor_battery", "capability.battery", title: "Battery to watch", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(sensor_battery, "battery", batteryHandler)
}

def batteryHandler(evt) {
    if (evt.value < 20) {
        log.debug "battery low"
        sendPush("A sensor battery is below 20 percent.")
    }
}
