/**
 *  Presence Mode Automator
 *
 *  Table 4 group G.3 member: the mode changes it publishes trigger the
 *  other G.3 apps' mode handlers.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Presence Mode Automator",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Set the home mode from the family presence sensor.",
    category: "Mode Magic",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.present", arriveHandler)
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def arriveHandler(evt) {
    log.debug "somebody arrived, switching to home"
    setLocationMode("home")
}

def departHandler(evt) {
    log.debug "everyone left, switching to away"
    setLocationMode("away")
}
