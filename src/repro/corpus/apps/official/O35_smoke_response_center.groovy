/**
 *  Smoke Response Center
 *
 *  The largest official model (180 states after reduction): smoke (3) x
 *  alarm (4) x shade (5) x mode (3).  The alarm is silenced only on the
 *  clear report, so P.10 holds.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Smoke Response Center",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Coordinate alarm and storm shades around the smoke detector and home mode.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "smoke_detector", "capability.smokeDetector", title: "Smoke detector", required: true
        input "the_alarm", "capability.alarm", title: "Alarm", required: true
        input "storm_shade", "capability.windowShade", title: "Storm shade", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(smoke_detector, "smoke", smokeHandler)
    subscribe(location, "mode.away", awayHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        log.debug "smoke detected, siren and shades shut"
        the_alarm.siren()
        storm_shade.close()
    }
    if (evt.value == "clear") {
        log.debug "air clear, standing down"
        the_alarm.off()
    }
}

def awayHandler(evt) {
    log.debug "away mode, closing the storm shade"
    storm_shade.close()
}
