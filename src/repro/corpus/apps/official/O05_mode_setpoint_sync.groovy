/**
 *  Mode Setpoint Sync
 *
 *  The setpoint comes from a user preference, so P.16 (no hard-coded
 *  mode-change setpoints) holds.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Mode Setpoint Sync",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Apply your preferred heating setpoint whenever the mode changes.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "ther", "capability.thermostat", title: "Thermostat", required: true
    }
    section("Settings") {
        input "comfort_temp", "number", title: "Heating setpoint", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode", modeChangeHandler)
}

def modeChangeHandler(evt) {
    log.debug "mode changed, applying the user setpoint"
    ther.setHeatingSetpoint(comfort_temp)
}
