/**
 *  Mode Accent Lighting
 *
 *  Table 4 group G.3 member: harmless alone (mode changes are the
 *  user's intent) but chained by O7's mode writes in the union model.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Mode Accent Lighting",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Switch the accent light on when the house goes to away mode.",
    category: "Mode Magic",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "accent_light", "capability.switch", title: "Accent light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.away", awayHandler)
}

def awayHandler(evt) {
    log.debug "away mode, accent light on for a lived-in look"
    accent_light.on()
}
