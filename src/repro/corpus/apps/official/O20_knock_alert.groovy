/**
 *  Knock Alert
 *
 *  Acceleration on the door slab is read as a knock.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Knock Alert",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Notify me when somebody knocks on the door.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "door_slab", "capability.accelerationSensor", title: "Door sensor", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(door_slab, "acceleration.active", knockHandler)
}

def knockHandler(evt) {
    log.debug "vibration on the door"
    sendPush("Somebody is knocking at the door.")
}
