/**
 *  Sleepy Sound Off
 *
 *  Stopping (not playing) on the sleeping report keeps P.28 satisfied.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Sleepy Sound Off",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Stop the bedroom speaker as soon as the sleep sensor says you are asleep.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "sleep_pad", "capability.sleepSensor", title: "Sleep sensor", required: true
        input "bedroom_speaker", "capability.musicPlayer", title: "Bedroom speaker", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(sleep_pad, "sleeping.sleeping", asleepHandler)
}

def asleepHandler(evt) {
    log.debug "asleep, stopping the music"
    bedroom_speaker.stop()
}
