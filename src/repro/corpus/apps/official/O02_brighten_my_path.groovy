/**
 *  Brighten My Path
 *
 *  Numeric attribute driven by a user-entered level; property
 *  abstraction collapses the 0-100 level domain to the user setting.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Brighten My Path",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Set a dimmer to your preferred level when motion is sensed.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "path_dimmer", "capability.switchLevel", title: "Dimmer to raise", required: true
        input "motion_sensor", "capability.motionSensor", title: "When there is motion", required: true
    }
    section("Settings") {
        input "brightness", "number", title: "Dimmer level", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(motion_sensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    log.debug "raising the path dimmer to the configured level"
    path_dimmer.setLevel(brightness)
}
