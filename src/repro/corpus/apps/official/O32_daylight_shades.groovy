/**
 *  Daylight Shades
 *
 *  Illuminance cut points at 200 and 8000 lux partition the 0-10000 raw
 *  domain into five abstract regions.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Daylight Shades",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Close the shades in harsh sun and open them again when it is dark.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "lux_sensor", "capability.illuminanceMeasurement", title: "Light sensor", required: true
        input "window_shade", "capability.windowShade", title: "Shade", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(lux_sensor, "illuminance", luxHandler)
}

def luxHandler(evt) {
    if (evt.value > 8000) {
        window_shade.close()
    }
    if (evt.value < 200) {
        window_shade.open()
    }
}
