/**
 *  Nursery Night Dimmer
 *
 *  User-entered dimmer level applied on the night mode change.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Nursery Night Dimmer",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Soften the nursery dimmer to your chosen level at night mode.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "nursery_dimmer", "capability.switchLevel", title: "Nursery dimmer", required: true
    }
    section("Settings") {
        input "soft_level", "number", title: "Night level", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.night", nightHandler)
}

def nightHandler(evt) {
    log.debug "night mode, dimming the nursery"
    nursery_dimmer.setLevel(soft_level)
}
