/**
 *  Presence Garage
 *
 *  Arrival opens and departure closes, matching P.6 exactly.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Presence Garage",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Open the garage when you arrive and close it after you leave.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "car_presence", "capability.presenceSensor", title: "Car presence", required: true
        input "garage_door", "capability.garageDoorControl", title: "Garage door", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(car_presence, "presence.present", arriveHandler)
    subscribe(car_presence, "presence.not present", departHandler)
}

def arriveHandler(evt) {
    log.debug "car home, opening the garage"
    garage_door.open()
}

def departHandler(evt) {
    log.debug "car gone, closing the garage"
    garage_door.close()
}
