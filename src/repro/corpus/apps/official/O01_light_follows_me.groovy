/**
 *  Light Follows Me
 *
 *  Classic market app: the hall light tracks the motion sensor.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Light Follows Me",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn a light on when there is motion and off when the motion stops.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "motion_sensor", "capability.motionSensor", title: "Motion here", required: true
        input "hall_light", "capability.switch", title: "Light to follow", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(motion_sensor, "motion.active", motionActiveHandler)
    subscribe(motion_sensor, "motion.inactive", motionInactiveHandler)
}

def motionActiveHandler(evt) {
    log.debug "motion active, turning the light on"
    hall_light.on()
}

def motionInactiveHandler(evt) {
    log.debug "motion stopped, turning the light off"
    hall_light.off()
}
