/**
 *  Entry Camera
 *
 *  Every motion event takes a picture, satisfying P.20 for all door
 *  states.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Entry Camera",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Photograph the entry whenever motion stirs or the door opens.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "entry_motion", "capability.motionSensor", title: "Entry motion", required: true
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "front_cam", "capability.imageCapture", title: "Entry camera", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(entry_motion, "motion.active", motionHandler)
    subscribe(front_contact, "contact.open", doorHandler)
}

def motionHandler(evt) {
    log.debug "motion at the entry, taking a photo"
    front_cam.take()
}

def doorHandler(evt) {
    log.debug "door opened, taking a photo"
    front_cam.take()
}
