/**
 *  Fan Comfort
 *
 *  The 72/78 degree comparisons become interval cut points in the
 *  abstracted temperature domain.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Fan Comfort",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Spin the ceiling fan up when it is hot and down when it cools off.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "room_sensor", "capability.temperatureMeasurement", title: "Room sensor", required: true
        input "ceiling_fan", "capability.switch", title: "Ceiling fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(room_sensor, "temperature", tempHandler)
}

def tempHandler(evt) {
    if (evt.value > 78) {
        ceiling_fan.on()
    }
    if (evt.value < 72) {
        ceiling_fan.off()
    }
}
