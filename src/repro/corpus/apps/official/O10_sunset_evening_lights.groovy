/**
 *  Sunset Evening Lights
 *
 *  Solar (abstract) events drive the schedule; no device state is read.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Sunset Evening Lights",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn the evening lights on at sunset and off again at sunrise.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "evening_lights", "capability.switch", title: "Evening lights", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "sunset", sunsetHandler)
    subscribe(location, "sunrise", sunriseHandler)
}

def sunsetHandler(evt) {
    log.debug "sunset, lights on"
    evening_lights.on()
}

def sunriseHandler(evt) {
    log.debug "sunrise, lights off"
    evening_lights.off()
}
