/**
 *  Doorway Lamp
 *
 *  Table 4 group G.2 member: issues the same command as O16 on the same
 *  event (a repeated-command pair in the union model).
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Doorway Lamp",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn the hall light on when the front door is opened.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", lampHandler)
}

def lampHandler(evt) {
    log.debug "door open, lamp on"
    hall_light.on()
}
