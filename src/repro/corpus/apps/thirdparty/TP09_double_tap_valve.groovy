/**
 *  Double Tap Valve
 *
 *  Table 3: violates S.2 — the handler issues the same close command
 *  twice on one path.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Double Tap Valve",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Close the main valve (twice, to be sure) when the basement gets wet.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "basement_sensor", "capability.waterSensor", title: "Basement sensor", required: true
        input "main_valve", "capability.valve", title: "Main valve", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(basement_sensor, "water.wet", leakHandler)
}

def leakHandler(evt) {
    log.debug "water! closing the valve twice for luck"
    main_valve.close()
    main_valve.close()
}
