/**
 *  Backwards Flood Siren
 *
 *  Table 3: violates P.29 — the developer swapped wet and dry, so the
 *  siren sounds on the dry report and stays quiet during a real leak.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Backwards Flood Siren",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Sound the pool alarm on water reports from the deck sensor.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "deck_sensor", "capability.waterSensor", title: "Deck sensor", required: true
        input "pool_alarm", "capability.alarm", title: "Pool alarm", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(deck_sensor, "water", waterHandler)
}

def waterHandler(evt) {
    if (evt.value == "dry") {
        log.debug "sensor reports... sounding the siren"
        pool_alarm.siren()
    }
}
