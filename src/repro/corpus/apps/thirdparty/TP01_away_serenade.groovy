/**
 *  Away Serenade
 *
 *  Table 3: violates P.13 — appliance (music) functionality used while
 *  the user is away.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Away Serenade",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Play the living-room speaker while nobody is home to scare off burglars.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
        input "living_room_speaker", "capability.musicPlayer", title: "Speaker", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def departHandler(evt) {
    log.debug "house empty, starting the deterrent playlist"
    living_room_speaker.play()
}
