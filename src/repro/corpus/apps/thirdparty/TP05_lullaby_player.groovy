/**
 *  Lullaby Player
 *
 *  Table 3: violates P.28 — the sound system starts playing exactly
 *  during sleeping hours.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Lullaby Player",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Start the crib speaker playing soft music when the baby falls asleep.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "sleep_pad", "capability.sleepSensor", title: "Crib sleep pad", required: true
        input "crib_speaker", "capability.musicPlayer", title: "Crib speaker", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(sleep_pad, "sleeping.sleeping", asleepHandler)
}

def asleepHandler(evt) {
    log.debug "baby asleep, starting the lullaby"
    crib_speaker.play()
}
