/**
 *  Dryer Done
 *
 *  Pure sensing with a 5-watt cut point; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Dryer Done",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Tell me when the dryer's power draw falls back to idle.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "dryer_meter", "capability.powerMeter", title: "Dryer meter", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(dryer_meter, "power", drawHandler)
}

def drawHandler(evt) {
    if (evt.value < 5) {
        log.debug "dryer idle"
        sendPush("The dryer is done.")
    }
}
