/**
 *  Knock Checker
 *
 *  Reads the contact state as a guard; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Knock Checker",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Ping me about knocks, but only when the door is actually closed.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "door_slab", "capability.accelerationSensor", title: "Knock sensor", required: true
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(door_slab, "acceleration.active", knockHandler)
}

def knockHandler(evt) {
    if (front_contact.currentValue("contact") == "closed") {
        log.debug "knock while closed, notifying"
        sendPush("Somebody knocked on the front door.")
    }
}
