/**
 *  Dog Walker Unlock
 *
 *  Table 3: violates P.1 — the door is unlocked exactly when the user
 *  is not at home.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Dog Walker Unlock",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Unlock the front door for the dog walker once the family has left.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
        input "front_door", "capability.lock", title: "Front door lock", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def departHandler(evt) {
    log.debug "family gone, letting the dog walker in"
    front_door.unlock()
}
