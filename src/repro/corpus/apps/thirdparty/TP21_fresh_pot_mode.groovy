/**
 *  Fresh Pot Mode
 *
 *  Table 4 group G.3 member: mode changes caused by other apps drag the
 *  coffee maker on (P.13 in the union).  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Fresh Pot Mode",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Brew a fresh pot whenever the home mode changes.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "coffee_maker", "capability.switch", title: "Coffee maker", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode", perkHandler)
}

def perkHandler(evt) {
    log.debug "mode changed, fresh pot"
    coffee_maker.on()
}
