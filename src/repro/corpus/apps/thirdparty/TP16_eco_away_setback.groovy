/**
 *  Eco Away Setback
 *
 *  The setback value is user-entered, so P.16 holds; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Eco Away Setback",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Drop the heating setpoint to your eco temperature when the house empties.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "ther", "capability.thermostat", title: "Thermostat", required: true
    }
    section("Settings") {
        input "eco_temp", "number", title: "Eco setpoint", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.away", awayHandler)
}

def awayHandler(evt) {
    log.debug "away, eco setback"
    ther.setHeatingSetpoint(eco_temp)
}
