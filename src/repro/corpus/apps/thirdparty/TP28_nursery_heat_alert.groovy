/**
 *  Nursery Heat Alert
 *
 *  User-defined limit over the nursery temperature; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Nursery Heat Alert",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Warn me if the nursery gets hotter than my comfort limit.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "nursery_sensor", "capability.temperatureMeasurement", title: "Nursery sensor", required: true
    }
    section("Settings") {
        input "hot_limit", "number", title: "Alert above", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(nursery_sensor, "temperature", heatHandler)
}

def heatHandler(evt) {
    if (evt.value > hot_limit) {
        log.debug "nursery hot"
        sendPush("The nursery is hotter than your limit.")
    }
}
