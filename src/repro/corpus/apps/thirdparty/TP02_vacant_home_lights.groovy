/**
 *  Vacant Home Lights
 *
 *  Table 3: violates P.12 — the light is switched on exactly when the
 *  user is away.  Also a Table 4 G.2 member (shared hall light).
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Vacant Home Lights",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn the hall light on once everyone has left, so the house never looks empty.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def departHandler(evt) {
    log.debug "everyone gone, hall light on"
    hall_light.on()
}
