/**
 *  Vacation Coffee Cycler
 *
 *  Table 3: violates P.13 and S.1 — the appliance is operated while
 *  away, and the handler drives it to conflicting states on one path.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Vacation Coffee Cycler",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Pulse the coffee maker after everyone leaves so the kitchen looks used.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
        input "coffee_maker", "capability.switch", title: "Coffee maker", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def departHandler(evt) {
    log.debug "simulating a quick brew"
    coffee_maker.on()
    coffee_maker.off()
}
