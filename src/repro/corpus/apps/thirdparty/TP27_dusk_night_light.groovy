/**
 *  Dusk Night Light
 *
 *  Illuminance cut points at 100 and 300 lux; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Dusk Night Light",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Fade the night light in when it gets dark and out when day returns.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "lux_sensor", "capability.illuminanceMeasurement", title: "Light sensor", required: true
        input "night_light", "capability.switch", title: "Night light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(lux_sensor, "illuminance", duskHandler)
}

def duskHandler(evt) {
    if (evt.value < 100) {
        night_light.on()
    }
    if (evt.value > 300) {
        night_light.off()
    }
}
