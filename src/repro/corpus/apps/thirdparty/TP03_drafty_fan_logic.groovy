/**
 *  Drafty Fan Logic
 *
 *  Table 3: violates S.4 — the night-mode event and the door-open event
 *  can co-occur and race the fan to opposite states.  Also a Table 4
 *  member of G.2 and G.3.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Drafty Fan Logic",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Run the box fan when the door lets air in, and rest it at night.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "fan_switch", "capability.switch", title: "Box fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", draftHandler)
    subscribe(location, "mode.night", nightHandler)
}

def draftHandler(evt) {
    log.debug "door open, fan on"
    fan_switch.on()
}

def nightHandler(evt) {
    log.debug "night mode, fan off"
    fan_switch.off()
}
