/**
 *  Vacation Power Trim
 *
 *  Table 4 group G.3 member: the fridge-outlet cutoff becomes a P.14
 *  violation once another app drives the away mode.  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Vacation Power Trim",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Cut the fridge outlet and accent light once the house switches to away.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "fridge_outlet", "capability.switch", title: "Fridge outlet", required: true
        input "accent_light", "capability.switch", title: "Accent light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.away", awayHandler)
}

def awayHandler(evt) {
    log.debug "away mode, trimming standby power"
    fridge_outlet.off()
    accent_light.off()
}
