/**
 *  Battery Sitter
 *
 *  The Fig. 11 ablation subject: a 101-value battery domain reduced to
 *  the two symbolic regions around the user threshold.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Battery Sitter",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Watch one battery and nag me when it sinks below my alert level.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "watched_battery", "capability.battery", title: "Battery to watch", required: true
    }
    section("Settings") {
        input "alert_level", "number", title: "Alert below", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(watched_battery, "battery", batteryHandler)
}

def batteryHandler(evt) {
    if (evt.value < alert_level) {
        log.debug "battery under the alert level"
        sendPush("Battery is below your alert level.")
    }
}
