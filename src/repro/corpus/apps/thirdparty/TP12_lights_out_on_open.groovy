/**
 *  Lights Out On Open
 *
 *  Table 4 group G.1 member: conflicts with O3 and duplicates O8 on the
 *  shared lights.  Verified clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Lights Out On Open",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Douse the hall and porch lights as soon as the front door opens.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
        input "porch_light", "capability.switch", title: "Porch light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", doorOpenHandler)
}

def doorOpenHandler(evt) {
    log.debug "door open, lights out"
    hall_light.off()
    porch_light.off()
}
