/**
 *  Doorbell Snap
 *
 *  A single effect-free camera command; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Doorbell Snap",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Photograph whoever opens the front gate.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "gate_contact", "capability.contactSensor", title: "Front gate", required: true
        input "door_cam", "capability.imageCapture", title: "Gate camera", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(gate_contact, "contact.open", gateHandler)
}

def gateHandler(evt) {
    log.debug "gate opened, taking a photo"
    door_cam.take()
}
