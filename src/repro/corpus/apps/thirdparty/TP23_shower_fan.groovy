/**
 *  Shower Fan
 *
 *  Humidity cut points at 50 and 65 percent; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Shower Fan",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Clear the bathroom steam automatically after a shower.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "bath_humidity", "capability.relativeHumidityMeasurement", title: "Bathroom humidity", required: true
        input "bath_fan", "capability.switch", title: "Extractor fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(bath_humidity, "humidity", steamHandler)
}

def steamHandler(evt) {
    if (evt.value > 65) {
        bath_fan.on()
    }
    if (evt.value < 50) {
        bath_fan.off()
    }
}
