/**
 *  Curling Iron Cutoff
 *
 *  Switches off on the inactive report only; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Curling Iron Cutoff",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Kill the curling iron outlet when the bathroom has been still for a while.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "bath_motion", "capability.motionSensor", title: "Bathroom motion", required: true
        input "curler_outlet", "capability.switch", title: "Curling iron outlet", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(bath_motion, "motion.inactive", stillHandler)
}

def stillHandler(evt) {
    log.debug "bathroom still, outlet off"
    curler_outlet.off()
}
