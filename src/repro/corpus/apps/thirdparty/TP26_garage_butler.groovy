/**
 *  Garage Butler
 *
 *  The largest third-party model (96 states after reduction): door (4)
 *  x presence (2) x contact (2) x fan (2) x mode (3).  P.6 holds in
 *  both directions.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Garage Butler",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Run the whole garage: door follows the car, fan follows the side door, all mode-aware.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "car_presence", "capability.presenceSensor", title: "Car presence", required: true
        input "garage_door", "capability.garageDoorControl", title: "Garage door", required: true
        input "side_contact", "capability.contactSensor", title: "Side door", required: true
        input "garage_fan", "capability.switch", title: "Garage fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(car_presence, "presence.present", arriveHandler)
    subscribe(car_presence, "presence.not present", departHandler)
    subscribe(side_contact, "contact.open", sideOpenHandler)
    subscribe(side_contact, "contact.closed", sideClosedHandler)
}

def arriveHandler(evt) {
    log.debug "car home, garage open"
    garage_door.open()
}

def departHandler(evt) {
    log.debug "car gone, garage closed"
    garage_door.close()
}

def sideOpenHandler(evt) {
    if (location.mode != "away") {
        log.debug "side door open while someone is around, fan on"
        garage_fan.on()
    }
}

def sideClosedHandler(evt) {
    log.debug "side door closed, fan off"
    garage_fan.off()
}
