/**
 *  Flood Siren
 *
 *  Sirens exactly on the wet report, satisfying P.29; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Flood Siren",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Sound the basement siren the instant the floor sensor gets wet.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "floor_sensor", "capability.waterSensor", title: "Floor sensor", required: true
        input "basement_alarm", "capability.alarm", title: "Basement siren", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(floor_sensor, "water.wet", floodHandler)
}

def floodHandler(evt) {
    log.debug "water on the floor, siren"
    basement_alarm.siren()
}
