/**
 *  Fireplace Fan
 *
 *  Verified clean; the 80/90 degree comparisons partition the
 *  temperature domain.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Fireplace Fan",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Circulate heat with the hearth fan when the mantel gets hot.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "mantel_sensor", "capability.temperatureMeasurement", title: "Mantel sensor", required: true
        input "hearth_fan", "capability.switch", title: "Hearth fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(mantel_sensor, "temperature", mantelHandler)
}

def mantelHandler(evt) {
    if (evt.value > 90) {
        hearth_fan.on()
    }
    if (evt.value < 80) {
        hearth_fan.off()
    }
}
