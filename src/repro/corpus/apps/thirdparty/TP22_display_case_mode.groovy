/**
 *  Display Case Mode
 *
 *  Table 4 group G.3 member: powering the secured case while away
 *  becomes a P.12 violation in the union.  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Display Case Mode",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Light the gun case display when the house goes to away mode.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "gun_case", "capability.switch", title: "Gun case display", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.away", awayHandler)
}

def awayHandler(evt) {
    log.debug "away mode, display case lit"
    gun_case.on()
}
