/**
 *  Basement Dehumidifier
 *
 *  Verified clean: the device turns on only in the high-humidity
 *  region, so P.18 holds.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Basement Dehumidifier",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Run the dehumidifier when the basement is muggy and rest it when dry.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "basement_humidity", "capability.relativeHumidityMeasurement", title: "Humidity sensor", required: true
        input "basement_dehumidifier", "capability.switch", title: "Dehumidifier", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(basement_humidity, "humidity", humidityHandler)
}

def humidityHandler(evt) {
    if (evt.value > 70) {
        basement_dehumidifier.on()
    }
    if (evt.value < 40) {
        basement_dehumidifier.off()
    }
}
