/**
 *  Commuter Garage
 *
 *  Arrival opens, departure closes; P.6 holds and the app is clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Commuter Garage",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Open the garage for the commuter car and close it behind them.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "car_presence", "capability.presenceSensor", title: "Car presence", required: true
        input "garage_door", "capability.garageDoorControl", title: "Garage door", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(car_presence, "presence.present", arriveHandler)
    subscribe(car_presence, "presence.not present", departHandler)
}

def arriveHandler(evt) {
    log.debug "car arriving, garage open"
    garage_door.open()
}

def departHandler(evt) {
    log.debug "car leaving, garage closed"
    garage_door.close()
}
