/**
 *  Sunrise Coffee
 *
 *  Solar event to a single appliance command; verified clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Sunrise Coffee",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Start the coffee maker with the sunrise.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "coffee_maker", "capability.switch", title: "Coffee maker", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "sunrise", sunriseHandler)
}

def sunriseHandler(evt) {
    log.debug "sunrise, brewing"
    coffee_maker.on()
}
