/**
 *  Entry Guard
 *
 *  48-state model used by the verification-overhead bench: contact (2)
 *  x alarm (4) x lamp (2) x mode (3).  P.26 holds: every open report
 *  can reach the siren state.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Entry Guard",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Siren and light the entry when the door opens; keep the lamp lit at night.",
    category: "Safety & Security",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_door_contact", "capability.contactSensor", title: "Front door", required: true
        input "entry_siren", "capability.alarm", title: "Entry siren", required: true
        input "entry_lamp", "capability.switch", title: "Entry lamp", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_door_contact, "contact", doorHandler)
    subscribe(location, "mode.night", nightfallHandler)
}

def doorHandler(evt) {
    if (evt.value == "open") {
        log.debug "door open, siren and lamp"
        entry_siren.siren()
        entry_lamp.on()
    }
}

def nightfallHandler(evt) {
    log.debug "night mode, entry lamp on"
    entry_lamp.on()
}
