/**
 *  Window AC Saver
 *
 *  Open window cuts the AC; nothing turns it back on.  Clean.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Window AC Saver",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Shut the window AC off whenever that window is opened.",
    category: "Green Living",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "window_contact", "capability.contactSensor", title: "Window", required: true
        input "window_ac", "capability.switch", title: "Window AC", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(window_contact, "contact.open", openHandler)
}

def openHandler(evt) {
    log.debug "window open, AC off"
    window_ac.off()
}
