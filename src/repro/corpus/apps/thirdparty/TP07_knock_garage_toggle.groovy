/**
 *  Knock Garage Toggle
 *
 *  Table 3: violates S.1 — one handler path drives the garage door to
 *  open and to closed.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Knock Garage Toggle",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Cycle the garage door when the door slab registers a knock.",
    category: "Convenience",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "door_slab", "capability.accelerationSensor", title: "Knock sensor", required: true
        input "garage_door", "capability.garageDoorControl", title: "Garage door", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(door_slab, "acceleration.active", knockHandler)
}

def knockHandler(evt) {
    log.debug "knock knock, cycling the garage"
    garage_door.open()
    garage_door.close()
}
