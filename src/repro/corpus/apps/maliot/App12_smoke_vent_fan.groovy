/**
 *  Smoke Vent Fan
 *
 *  GROUND-TRUTH: violates P.3 only with App13 and App14 installed — the
 *  fan it switches on starts the chain that ends with the door locked
 *  during smoke.  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Smoke Vent Fan",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Spin the hall fan up when smoke is detected to clear the air.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "smoke_detector", "capability.smokeDetector", title: "Smoke detector", required: true
        input "hall_fan", "capability.switch", title: "Hall fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(smoke_detector, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
    log.debug "smoke, fan on to clear the air"
    hall_fan.on()
}
