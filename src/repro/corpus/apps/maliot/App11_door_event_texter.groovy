/**
 *  Door Event Texter
 *
 *  GROUND-TRUTH: outside the attacker model (result !) — the app leaks
 *  device events over SMS, a sensitive-data flow that the state-model
 *  properties do not cover; the sink is recorded for scope reporting.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Door Event Texter",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Text every front-door event to the configured number.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
    }
    section("Settings") {
        input "phone_number", "phone", title: "Send texts to", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact", doorLogger)
}

def doorLogger(evt) {
    log.debug "forwarding the door event"
    sendSms(phone_number, "Front door is now ${evt.value}.")
}
