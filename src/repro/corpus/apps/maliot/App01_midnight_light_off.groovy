/**
 *  Midnight Light Off
 *
 *  GROUND-TRUTH: violates P.2 — the light is turned OFF exactly when
 *  the motion sensor goes active, leaving the walker in the dark.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Midnight Light Off",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Save power by turning the hall light off whenever motion is detected.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "motion_sensor", "capability.motionSensor", title: "Hall motion", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(motion_sensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    log.debug "motion... saving power"
    hall_light.off()
}
