/**
 *  Cloud Mode Sync
 *
 *  GROUND-TRUTH: violates P.27 at runtime (the cloud can answer with
 *  the wrong mode), but the value only exists dynamically — static
 *  analysis cannot decide it, so Soteria reports nothing (result O).
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Cloud Mode Sync",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Mirror the mode our cloud dashboard computes whenever presence changes.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence", syncHandler)
}

def syncHandler(evt) {
    httpGet("https://dashboard.example.com/desired-mode") { resp ->
        state.remote_mode = resp.data.toString()
    }
    log.debug "applying the cloud-computed mode"
    setLocationMode(state.remote_mode)
}
