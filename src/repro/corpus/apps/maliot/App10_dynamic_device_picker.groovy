/**
 *  Dynamic Device Picker
 *
 *  GROUND-TRUTH: outside the attacker model (result !) — dynamic device
 *  permissions are constructed at run time, which static analysis flags
 *  as out of scope rather than analyzing.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Dynamic Device Picker",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Build the device list dynamically from whatever the user owns.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    dynamicPage(name: "devicePicker", title: "Pick your devices") {
        section("Anything switchable") {
            input "any_switch", "capability.switch", title: "Switches", multiple: true
        }
        section("About") {
            paragraph "Devices are enumerated dynamically at install time."
        }
    }
}

def getVersion() {
    return "2.4"
}

def describeSelection() {
    log.debug "user selection is resolved dynamically"
    return any_switch
}
