/**
 *  Homecoming Lock
 *
 *  GROUND-TRUTH: violates P.3 only with App12 and App13 installed — its
 *  home-mode lock fires while smoke is present at the end of the chain.
 *  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Homecoming Lock",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Lock the front door once the family is home for the night.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_door", "capability.lock", title: "Front door lock", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.home", homecomingHandler)
}

def homecomingHandler(evt) {
    log.debug "family home, locking up"
    front_door.lock()
}
