/**
 *  Double Flash
 *
 *  GROUND-TRUTH: violates S.2 — the handler writes the same attribute
 *  value twice on a single path.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Double Flash",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Flick the desk lamp on (twice, for flaky bulbs) when motion starts.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "desk_motion", "capability.motionSensor", title: "Desk motion", required: true
        input "desk_lamp", "capability.switch", title: "Desk lamp", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(desk_motion, "motion.active", motionHandler)
}

def motionHandler(evt) {
    log.debug "motion, lamp on (and on again)"
    desk_lamp.on()
    desk_lamp.on()
}
