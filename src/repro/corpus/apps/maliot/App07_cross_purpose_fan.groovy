/**
 *  Cross Purpose Fan
 *
 *  GROUND-TRUTH: violates S.4 — the door-open and motion-active events
 *  may co-occur and race the fan to conflicting states.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Cross Purpose Fan",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Ventilate the terrarium on a fresh-air event, rest the fan when the room stirs.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "room_motion", "capability.motionSensor", title: "Room motion", required: true
        input "terrarium_fan", "capability.switch", title: "Terrarium fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", airHandler)
    subscribe(room_motion, "motion.active", stirHandler)
}

def airHandler(evt) {
    log.debug "fresh air, fan on"
    terrarium_fan.on()
}

def stirHandler(evt) {
    log.debug "room busy, fan off"
    terrarium_fan.off()
}
