/**
 *  Phantom Lock Helper
 *
 *  GROUND-TRUTH: violates S.5 and P.1 — lockUp() dispatches on an event
 *  value but is never subscribed, so the away mode can never reach a
 *  locked door despite the granted lock permission.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Phantom Lock Helper",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Mark the house away when everyone leaves; a helper is meant to lock up.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
        input "front_door", "capability.lock", title: "Front door lock", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence", presenceHandler)
}

def presenceHandler(evt) {
    if (evt.value == "not present") {
        log.debug "everyone left, flagging away"
        setLocationMode("away")
    }
}

def lockUp(evt) {
    if (evt.value == "away") {
        log.debug "locking the front door"
        front_door.lock()
    }
}
