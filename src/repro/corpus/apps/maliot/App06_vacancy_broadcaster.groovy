/**
 *  Vacancy Broadcaster
 *
 *  GROUND-TRUTH: violates P.1 and P.13 — the door is unlocked and the
 *  dimmer driven to a developer-hardcoded level exactly when the home
 *  is empty, advertising the vacancy.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Vacancy Broadcaster",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Open the house for the cleaning crew: unlock and set their favorite light level.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
        input "front_door", "capability.lock", title: "Front door lock", required: true
        input "mood_dimmer", "capability.switchLevel", title: "Mood dimmer", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def departHandler(evt) {
    log.debug "house empty, opening up for the crew"
    front_door.unlock()
    mood_dimmer.setLevel(15)
}
