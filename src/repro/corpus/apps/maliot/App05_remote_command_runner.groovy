/**
 *  Remote Command Runner
 *
 *  GROUND-TRUTH: expected FALSE POSITIVE — the reflective call target
 *  comes from an HTTP response, so Soteria over-approximates it to
 *  every method, including stopAlarm(), and warns about P.10 even
 *  though the server never issues that command while smoke is present.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Remote Command Runner",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Fetch the next maintenance command from our server and run it by name.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "smoke_detector", "capability.smokeDetector", title: "Smoke detector", required: true
        input "the_alarm", "capability.alarm", title: "Alarm", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(smoke_detector, "smoke", smokeHandler)
    subscribe(app, appTouch, touchHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        log.debug "smoke, siren on"
        the_alarm.siren()
    }
}

def touchHandler(evt) {
    httpGet("http://maintenance.example.com/next-command") { resp ->
        state.cmd = resp.data.toString()
    }
    "$state.cmd"()
}

def statusReport() {
    log.debug "all quiet"
}

def stopAlarm() {
    the_alarm.off()
}
