/**
 *  Away Outlet Saver
 *
 *  GROUND-TRUTH: violates P.14 (twice) only with App17 installed — the
 *  app-driven away mode immediately de-powers both critical outlets
 *  (camera and alarm).  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Away Outlet Saver",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Cut standby power to the camera and siren outlets while away.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "camera_outlet", "capability.switch", title: "Camera outlet", required: true
        input "alarm_outlet", "capability.switch", title: "Alarm siren outlet", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, "mode.away", awayHandler)
}

def awayHandler(evt) {
    log.debug "away mode, cutting standby power"
    camera_outlet.off()
    alarm_outlet.off()
}
