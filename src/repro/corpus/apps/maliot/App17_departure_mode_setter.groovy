/**
 *  Departure Mode Setter
 *
 *  GROUND-TRUTH: violates P.14 (twice) only with App16 installed — its
 *  away-mode write is the trigger that de-powers App16's critical
 *  outlets.  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Departure Mode Setter",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Flip the house to away mode as soon as the last person leaves.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def departHandler(evt) {
    log.debug "last person left, away mode"
    setLocationMode("away")
}
