/**
 *  Lock Toggler
 *
 *  GROUND-TRUTH: violates S.1 — one handler path drives the lock to
 *  locked and to unlocked.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Lock Toggler",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Cycle the deadbolt when the front door opens, to re-seat the bolt.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "front_contact", "capability.contactSensor", title: "Front door", required: true
        input "front_door", "capability.lock", title: "Deadbolt", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(front_contact, "contact.open", doorHandler)
}

def doorHandler(evt) {
    log.debug "re-seating the bolt"
    front_door.lock()
    front_door.unlock()
}
