/**
 *  Away Auto Disarm
 *
 *  GROUND-TRUTH: violates P.9 — the security system is disarmed exactly
 *  when the user goes away.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Away Auto Disarm",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Disarm the security system automatically once the family leaves.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "presence_sensor", "capability.presenceSensor", title: "Family presence", required: true
        input "home_security", "capability.securitySystem", title: "Security system", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(presence_sensor, "presence.not present", departHandler)
}

def departHandler(evt) {
    log.debug "family gone, disarming for the cleaner"
    home_security.disarm()
}
