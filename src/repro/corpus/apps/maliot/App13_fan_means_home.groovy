/**
 *  Fan Means Home
 *
 *  GROUND-TRUTH: violates P.3 only with App12 and App14 installed — it
 *  relays the fan event into a home-mode change.  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Fan Means Home",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "If the hall fan is running, somebody must be home — set the mode.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "hall_fan", "capability.switch", title: "Hall fan", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(hall_fan, "switch.on", fanOnHandler)
}

def fanOnHandler(evt) {
    log.debug "fan running, marking the house home"
    setLocationMode("home")
}
