/**
 *  Motion Light On
 *
 *  GROUND-TRUTH: violates S.1 only with App1 installed — the same
 *  motion event drives the shared hall light to conflicting states
 *  across the two apps.  Clean alone.
 *
 *  Reconstruction for the Soteria evaluation corpus (Sec. 6).
 */
definition(
    name: "Motion Light On",
    namespace: "soteria.repro",
    author: "Soteria Reproduction",
    description: "Turn the hall light on when the hall motion sensor fires.",
    category: "My Apps",
    iconUrl: "https://s3.amazonaws.com/smartapp-icons/Convenience/Cat-Convenience.png")

preferences {
    section("Devices") {
        input "motion_sensor", "capability.motionSensor", title: "Hall motion", required: true
        input "hall_light", "capability.switch", title: "Hall light", required: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(motion_sensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    log.debug "motion, hall light on"
    hall_light.on()
}
