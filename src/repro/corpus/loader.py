"""Corpus loading: map app ids (O1, TP12, App5) to parsed SmartApps."""

from __future__ import annotations

import functools
import re
from importlib import resources

from repro.platform.smartapp import SmartApp

_DATASETS = {"official": "O", "thirdparty": "TP", "maliot": "App"}


def _apps_dir(dataset: str):
    if dataset not in _DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; pick from {sorted(_DATASETS)}")
    return resources.files("repro.corpus") / "apps" / dataset


def _id_from_filename(dataset: str, filename: str) -> str:
    """``O01_light_follows_me.groovy`` -> ``O1``; ``App05_x.groovy`` -> ``App5``."""
    stem = filename.rsplit(".", 1)[0]
    prefix = stem.split("_", 1)[0]
    match = re.match(r"([A-Za-z]+)0*(\d+)$", prefix)
    if not match:
        return prefix
    return f"{match.group(1)}{match.group(2)}"


@functools.lru_cache(maxsize=None)
def _sources(dataset: str) -> dict[str, str]:
    found: dict[str, str] = {}
    for entry in sorted(_apps_dir(dataset).iterdir(), key=lambda e: e.name):
        if not entry.name.endswith(".groovy"):
            continue
        found[_id_from_filename(dataset, entry.name)] = entry.read_text(
            encoding="utf-8"
        )
    return found


def app_ids(dataset: str) -> list[str]:
    """All app ids in a dataset, in numeric order."""
    ids = list(_sources(dataset))
    return sorted(ids, key=lambda i: int(re.sub(r"\D", "", i)))


def load_source(app_id: str) -> str:
    """Raw Groovy source of one corpus app."""
    for dataset, prefix in _DATASETS.items():
        if app_id.startswith("App" if prefix == "App" else prefix) and (
            prefix != "O" or not app_id.startswith("App")
        ):
            sources = _sources(dataset)
            if app_id in sources:
                return sources[app_id]
    raise KeyError(f"unknown corpus app {app_id!r}")


def load_app(app_id: str) -> SmartApp:
    """Parse one corpus app; the SmartApp name is the corpus id."""
    return SmartApp.from_source(load_source(app_id), name=app_id)


def load_corpus(dataset: str) -> dict[str, SmartApp]:
    """All apps of one dataset as {id: SmartApp}."""
    return {app_id: load_app(app_id) for app_id in app_ids(dataset)}


def load_environment_sources(app_ids_list: list[str]) -> list[SmartApp]:
    """Parsed apps for a multi-app environment (Table 4 groups etc.)."""
    return [load_app(app_id) for app_id in app_ids_list]
