"""Corpus loading: map app ids (O1, TP12, App5) to parsed SmartApps.

Besides the three bundled datasets, callers can :func:`register_app`
*synthetic* sources (the scenario generator's output) under fresh ids;
registered apps resolve through :func:`load_source`/:func:`load_app` like
corpus apps, so they flow through the batch driver, the sweep engine's
channel enumeration (``groups_sharing_devices`` over a mixed universe),
and the disk caches without special cases.

Registration is scoped, not append-only: :func:`unregister_app` releases
an id (and its parsed app) again, and :func:`scoped_registration` wraps a
whole campaign — the fleet driver screens a million households'
synthetic apps, the fuzz driver thousands of generated cases, and the
registry comes back exactly as it was.  Callers that *re*-register a
freed id should derive ids from the source content (the fuzz and fleet
drivers use digest-derived ids) so an id never silently changes meaning
for code that cached per-id derivations while it was bound.
"""

from __future__ import annotations

import contextlib
import functools
import re
from importlib import resources

from repro.platform.smartapp import SmartApp

#: dataset name -> id prefix of its apps (``official/O01_*.groovy`` -> O1).
_DATASETS = {"official": "O", "thirdparty": "TP", "maliot": "App"}

#: Synthetic sources registered at runtime: app id -> Groovy source.
_REGISTERED: dict[str, str] = {}

#: Parsed registered apps, evicted together with their registration
#: (corpus apps live in the :func:`_load_corpus_app` lru instead, which
#: never needs per-id eviction).
_REGISTERED_APPS: dict[str, SmartApp] = {}

#: id prefix -> dataset, for prefix-based dispatch in :func:`load_source`.
_PREFIX_DATASET = {prefix: dataset for dataset, prefix in _DATASETS.items()}

#: A corpus app id: alphabetic prefix + decimal index (``TP12``, ``App5``).
_APP_ID = re.compile(r"([A-Za-z]+)(\d+)$")


def _apps_dir(dataset: str):
    if dataset not in _DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; pick from {sorted(_DATASETS)}")
    return resources.files("repro.corpus") / "apps" / dataset


def _id_from_filename(dataset: str, filename: str) -> str:
    """``O01_light_follows_me.groovy`` -> ``O1``; ``App05_x.groovy`` -> ``App5``."""
    stem = filename.rsplit(".", 1)[0]
    prefix = stem.split("_", 1)[0]
    match = re.match(r"([A-Za-z]+)0*(\d+)$", prefix)
    if not match:
        return prefix
    return f"{match.group(1)}{match.group(2)}"


@functools.lru_cache(maxsize=None)
def _sources(dataset: str) -> dict[str, str]:
    directory = _apps_dir(dataset)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"corpus dataset {dataset!r} has no apps directory at {directory}; "
            f"expected the reconstructed {dataset} apps "
            f"({_DATASETS[dataset]}*.groovy) under src/repro/corpus/apps/"
            f"{dataset}/ — see src/repro/corpus/README.md"
        )
    found: dict[str, str] = {}
    for entry in sorted(directory.iterdir(), key=lambda e: e.name):
        if not entry.name.endswith(".groovy"):
            continue
        app_id = _id_from_filename(dataset, entry.name)
        match = _APP_ID.fullmatch(app_id)
        if match is None or match.group(1) != _DATASETS[dataset]:
            # Stray helper file (no "<prefix><number>_" stem): not a corpus
            # app, and load_source could never resolve it — skip it.
            continue
        found[app_id] = entry.read_text(encoding="utf-8")
    return found


def app_ids(dataset: str) -> list[str]:
    """All app ids in a dataset, in numeric order.

    ``_sources`` admits only ids of the dataset's ``<prefix><number>``
    shape, so the numeric suffix always exists here.
    """
    return sorted(_sources(dataset), key=lambda i: int(re.sub(r"\D", "", i)))


def register_app(app_id: str, source: str) -> None:
    """Make a synthetic app resolvable through the loader.

    ``load_source``/``load_app`` memoize per id, so an id is permanently
    bound to its first source: re-registering the identical source is a
    no-op, a different source (or a corpus id) raises ``ValueError`` —
    callers wanting a fresh app pick a fresh id.
    """
    existing: str | None = _REGISTERED.get(app_id)
    if existing is None:
        try:
            existing = load_source(app_id)
        except KeyError:
            existing = None
    if existing is not None:
        if existing != source:
            raise ValueError(
                f"app id {app_id!r} is already bound to a different source"
            )
        return
    _REGISTERED[app_id] = source


def registered_ids() -> list[str]:
    """Ids of every registered synthetic app, in registration order."""
    return list(_REGISTERED)


def unregister_app(app_id: str) -> bool:
    """Release one registered synthetic app (id + cached parse).

    Returns whether the id was registered; unknown ids are a no-op
    (False), and corpus ids are never registered so they are untouchable
    here.  After unregistering, the id is free again — re-binding it to a
    *different* source is legal, which is why campaign drivers use
    content-derived ids.
    """
    removed = _REGISTERED.pop(app_id, None) is not None
    _REGISTERED_APPS.pop(app_id, None)
    return removed


@contextlib.contextmanager
def scoped_registration():
    """Restore the synthetic-app registry on exit.

    Every id registered inside the ``with`` block is unregistered when it
    closes (exception or not); ids registered before the block — and
    re-registrations of them, which are no-ops — survive.  The fleet and
    fuzz drivers wrap whole campaigns in this so per-household /
    per-case synthetic apps never accumulate process-wide.
    """
    before = set(_REGISTERED)
    try:
        yield
    finally:
        for app_id in [i for i in _REGISTERED if i not in before]:
            unregister_app(app_id)


def load_source(app_id: str) -> str:
    """Raw Groovy source of one corpus (or registered synthetic) app.

    For corpus ids the dataset is resolved from the alphabetic prefix
    (``O`` -> official, ``TP`` -> thirdparty, ``App`` -> maliot); ids with
    an unknown prefix or no entry raise a uniform :class:`KeyError`.
    """
    registered = _REGISTERED.get(app_id)
    if registered is not None:
        return registered
    match = _APP_ID.fullmatch(app_id)
    dataset = _PREFIX_DATASET.get(match.group(1)) if match else None
    if dataset is not None:
        sources = _sources(dataset)
        if app_id in sources:
            return sources[app_id]
    raise KeyError(f"unknown corpus app {app_id!r}")


@functools.lru_cache(maxsize=None)
def _load_corpus_app(app_id: str) -> SmartApp:
    return SmartApp.from_source(load_source(app_id), name=app_id)


def load_app(app_id: str) -> SmartApp:
    """Parse one corpus (or registered synthetic) app; the SmartApp name
    is the app id.

    Cached: the same app is parsed at most once per process (the
    benchmarks and test fixtures previously re-parsed per fixture).
    Corpus parses live in an lru for the process lifetime; registered
    parses are evicted with :func:`unregister_app`, so scoped campaigns
    do not leak parsed modules either.
    """
    if app_id in _REGISTERED:
        app = _REGISTERED_APPS.get(app_id)
        if app is None:
            app = SmartApp.from_source(_REGISTERED[app_id], name=app_id)
            _REGISTERED_APPS[app_id] = app
        return app
    return _load_corpus_app(app_id)


def load_corpus(dataset: str) -> dict[str, SmartApp]:
    """All apps of one dataset as {id: SmartApp}."""
    return {app_id: load_app(app_id) for app_id in app_ids(dataset)}


def load_environment_sources(app_ids_list: list[str]) -> list[SmartApp]:
    """Parsed apps for a multi-app environment (Table 4 groups etc.)."""
    return [load_app(app_id) for app_id in app_ids_list]
