"""Multi-app sweep engine: union-model analysis over app groups (Sec. 6.1).

The paper's multi-app evaluation (Table 4, Appendix C environments) runs
Algorithm 2 over hand-picked groups of co-installed apps.  This module
turns that into a corpus-scale workload:

* :func:`pairs` / :func:`groups_sharing_devices` enumerate *candidate
  co-installations* from the corpus itself — apps interact when they share
  a device (equal permission handles, the reproduction's device-identity
  convention) or the location-mode broadcast channel.  Passing a paper
  group's app ids as the universe recovers that group as one connected
  component; passing a whole dataset opens arbitrary-group and
  arbitrary-pair sweeps the paper never ran.
* :func:`sweep_environments` fans union-model construction + checking out
  over worker processes, reusing per-app analyses through the batch
  driver's two cache layers (memory + optional ``cache_dir`` disk store)
  so no app source is ever parsed twice.  ``cache_dir`` additionally
  layers a *sweep-level* store (:class:`repro.corpus.diskcache.SweepCache`,
  keyed on the sorted member source digests + the backend/encoding
  knobs): a warm sweep serves finished
  environment analyses and skips union checking entirely.

State explosion is no longer a reason to skip anything: the default
``auto`` backend checks groups under the state budget explicitly and
hands bigger clusters — the 13-app MalIoT cluster at 82 944 states
included — to the symbolic (BDD) backend, which never materializes the
product (:mod:`repro.model.encoder`).  A failed :class:`SweepOutcome`
(``environment is None``) now means the group's analysis genuinely
errored, not "too big to try".
"""

from __future__ import annotations

import functools
import os
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.corpus.batch import (
    DATASETS,
    _resolve_jobs,
    _source_key,
    analyze_batch,
    run_in_pool,
)
from repro.corpus.diskcache import SweepCache, resolve_cache_dir
from repro.corpus.loader import app_ids, load_app, load_source
from repro.ir import build_ir
from repro.model.extractor import StateExplosionError
from repro.model.union import estimate_union_states
from repro.pipeline.runner import default_pipeline, pipeline_for
from repro.platform.events import EventKind
from repro.soteria import AppAnalysis, EnvironmentAnalysis

#: Name of the abstract broadcast channel shared by every app that reads
#: or writes the location mode (``setLocationMode`` / mode subscriptions).
MODE_CHANNEL = "location.mode"

#: Default union-state budget per candidate environment.  This is no
#: longer a skip threshold: under the default ``auto`` backend it is the
#: explicit/symbolic crossover — every curated paper group fits under it
#: with an order of magnitude to spare (the largest, Table 4's G.3,
#: unions to 1 536 states) and stays on the explicit checker, while
#: bigger corpus-enumerated clusters are checked symbolically.
DEFAULT_MAX_UNION_STATES = 10_000


# ======================================================================
# Candidate-environment enumeration
# ======================================================================
def _universe(universe: str | Iterable[str]) -> list[str]:
    """Normalize a dataset name (or ``"all"``) or explicit ids to a list."""
    if isinstance(universe, str):
        if universe == "all":
            return [app_id for name in DATASETS for app_id in app_ids(name)]
        return app_ids(universe)
    return list(dict.fromkeys(universe))


_COMMENT = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


@functools.lru_cache(maxsize=None)
def _app_channels(app_id: str) -> tuple[tuple[str, ...], bool, bool]:
    """(device handles, reads mode?, writes mode?) for one corpus app.

    Mode subscriptions come from the IR; mode *writes* and guard reads
    have no IR-level record, so they are detected textually in the
    comment-stripped source — a sound over-approximation for candidate
    enumeration (dead code can still flag an app, comments cannot).
    """
    source = _COMMENT.sub("", load_source(app_id))
    ir = build_ir(load_app(app_id))
    handles = tuple(sorted({perm.handle for perm in ir.devices()}))
    reads_mode = any(
        sub.event.kind is EventKind.MODE for sub in ir.subscriptions
    ) or "location.mode" in source
    writes_mode = "setLocationMode" in source or "sendLocationEvent" in source
    return handles, reads_mode, writes_mode


def interaction_channels(
    universe: str | Iterable[str],
) -> dict[str, tuple[str, ...]]:
    """Shared channels within a universe of corpus apps.

    Maps channel name -> the apps on it (universe order).  A channel is a
    device handle held by at least two apps, or :data:`MODE_CHANNEL` when
    some app writes the location mode and another reads or writes it
    (a broadcast with one participant interacts with nobody).
    """
    ids = _universe(universe)
    by_handle: dict[str, list[str]] = {}
    mode_apps: list[str] = []
    mode_writers = 0
    for app_id in ids:
        handles, reads_mode, writes_mode = _app_channels(app_id)
        for handle in handles:
            by_handle.setdefault(handle, []).append(app_id)
        if reads_mode or writes_mode:
            mode_apps.append(app_id)
            mode_writers += writes_mode
    channels = {
        handle: tuple(apps)
        for handle, apps in sorted(by_handle.items())
        if len(apps) > 1
    }
    if mode_writers and len(mode_apps) > 1:
        channels[MODE_CHANNEL] = tuple(mode_apps)
    return channels


def pairs(
    universe: str | Iterable[str],
) -> Iterable[tuple[str, str, tuple[str, ...]]]:
    """Candidate co-installation pairs: apps sharing at least one channel.

    Yields ``(app_a, app_b, shared_channels)`` with apps in universe order
    — the arbitrary-pair sweep workload (``sweep_environments`` over
    ``[(a, b) for a, b, _ in pairs(...)]``).
    """
    ids = _universe(universe)
    position = {app_id: index for index, app_id in enumerate(ids)}
    shared: dict[tuple[str, str], list[str]] = {}
    for channel, apps in interaction_channels(ids).items():
        for i, first in enumerate(apps):
            for second in apps[i + 1 :]:
                if channel == MODE_CHANNEL and not (
                    _app_channels(first)[2] or _app_channels(second)[2]
                ):
                    # Two mode *readers* alone cannot interact — the
                    # broadcast needs a writer inside the pair.
                    continue
                key = tuple(sorted((first, second), key=position.__getitem__))
                shared.setdefault(key, []).append(channel)
    for (first, second), channels in sorted(
        shared.items(), key=lambda item: (position[item[0][0]], position[item[0][1]])
    ):
        yield first, second, tuple(channels)


def groups_sharing_devices(
    universe: str | Iterable[str], min_size: int = 2
) -> list[tuple[str, ...]]:
    """Maximal candidate co-installations: connected components of the
    channel-sharing graph over ``universe``.

    Passing a curated group's ids (a Table 4 group, a MalIoT environment)
    recovers exactly that group as a single component — the paper's
    multi-app scenarios are the special case of a universe that is already
    one interaction cluster.  Passing a dataset name enumerates every
    maximal cluster of that dataset, most of which the paper never
    analyzed.  Components smaller than ``min_size`` (isolated apps) are
    dropped; apps within a component and components themselves keep
    universe order.
    """
    ids = _universe(universe)
    parent: dict[str, str] = {app_id: app_id for app_id in ids}

    def find(app_id: str) -> str:
        while parent[app_id] != app_id:
            parent[app_id] = parent[parent[app_id]]
            app_id = parent[app_id]
        return app_id

    for apps in interaction_channels(ids).values():
        root = find(apps[0])
        for other in apps[1:]:
            parent[find(other)] = root

    components: dict[str, list[str]] = {}
    for app_id in ids:
        components.setdefault(find(app_id), []).append(app_id)
    return [
        tuple(members)
        for members in components.values()
        if len(members) >= min_size
    ]


# ======================================================================
# The sweep itself
# ======================================================================
@dataclass(frozen=True)
class SweepOutcome:
    """Result of analyzing one candidate environment.

    ``environment is None`` means the group's analysis *failed* outright
    (``error`` carries the reason) — with the symbolic backend in the
    loop, "too big for the budget" is no longer one of those reasons
    unless the caller forces ``backend="explicit"``.  ``cached`` marks
    results served from the sweep-level disk cache.
    """

    group: tuple[str, ...]
    environment: EnvironmentAnalysis | None
    error: str | None = None
    cached: bool = False

    @property
    def failed(self) -> bool:
        return self.environment is None

    @property
    def skipped(self) -> bool:
        """Backwards-compatible alias of :attr:`failed` (pre-symbolic
        sweeps reported oversized groups as "skipped")."""
        return self.failed

    @property
    def backend(self) -> str | None:
        """Checker backend that produced the result (None when failed)."""
        if self.environment is None:
            return None
        return self.environment.backend

    def violated_ids(self) -> set[str]:
        if self.environment is None:
            return set()
        return self.environment.violated_ids()


def environment_only_ids(environment: EnvironmentAnalysis) -> set[str]:
    """Property ids only the union model reveals (the Table 4 numbers):
    multi-app violations plus ids no member app violates individually."""
    individual: set[str] = set()
    for analysis in environment.analyses:
        individual |= analysis.violated_ids()
    return {
        violation.property_id
        for violation in environment.violations
        if len(violation.apps) > 1 or violation.property_id not in individual
    }


def union_outcome(
    group: tuple[str, ...],
    analyses: list[AppAnalysis],
    max_union_states: int | None,
    backend: str = "auto",
    encoding: str = "auto",
    kernel: str = "auto",
    cache_dir: str | None = None,
) -> SweepOutcome:
    """Build + check one union model from precomputed per-app analyses.

    Runs through the staged pipeline over ``cache_dir`` when given: the
    union/check artifacts persist per stage, so a re-sweep with different
    knobs (a new catalog, a forced encoding) replays the member models
    and the union skeleton from the store.

    Public because it is the shared per-environment check unit: the
    sweep workers below and the fleet screening driver
    (:mod:`repro.fleet.driver`) both funnel through it, so a household
    check and a sweep check can never drift apart semantically.
    """
    pipeline = (
        default_pipeline() if cache_dir is None else pipeline_for(cache_dir)
    )
    try:
        environment = pipeline.environment_analysis(
            list(analyses),
            max_union_states=max_union_states,
            backend=backend,
            encoding=encoding,
            kernel=kernel,
        )
    except StateExplosionError as exc:
        # Only reachable with backend="explicit": auto hands oversized
        # unions to the symbolic checker, which has no state budget.
        return SweepOutcome(group=group, environment=None, error=str(exc))
    return SweepOutcome(group=group, environment=environment)


#: Internal alias: the sweep paths below (and the failure-injection
#: tests) reference the module global, so patching ``_union_outcome``
#: still intercepts every sweep-side check.
_union_outcome = union_outcome


def _sweep_worker(
    group: tuple[str, ...],
    analyses: list[AppAnalysis],
    max_union_states: int | None,
    backend: str,
    encoding: str,
    kernel: str,
    cache_dir: str | None = None,
) -> tuple[tuple[str, ...], SweepOutcome]:
    return group, _union_outcome(
        group, analyses, max_union_states, backend, encoding, kernel, cache_dir
    )


def sweep_environments(
    groups: Iterable[Sequence[str]],
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    max_union_states: int | None = DEFAULT_MAX_UNION_STATES,
    backend: str = "auto",
    encoding: str = "auto",
    kernel: str = "auto",
) -> list[SweepOutcome]:
    """Union-model analysis over many app groups, in input order.

    Per-app analyses are computed once through :func:`analyze_batch`
    (worker processes for cache misses; ``cache_dir`` layers the
    disk-backed cache, so a warm sweep re-parses nothing).  Union
    construction + checking then fans out over worker processes — each
    group ships its precomputed analyses to a worker, no re-parsing there
    either.

    ``backend`` picks the union checker per group (see
    :func:`repro.soteria.analyze_environment`): the default ``auto``
    checks groups within ``max_union_states`` explicitly and larger ones
    symbolically, so *every* group is checked — oversized clusters are no
    longer skipped.  Forcing ``backend="explicit"`` restores the old
    budget behavior: groups beyond it come back as failed outcomes
    carrying the explosion error.  ``encoding`` selects the symbolic
    relation encoding (``auto`` | ``monolithic`` | ``partitioned``);
    ``auto`` partitions wide unions, which is what lets the all-corpus
    82-app union check end to end.

    With a ``cache_dir``, finished environment analyses are also stored
    sweep-level, keyed on the sorted member source digests + pipeline
    version + the backend/encoding/kernel knobs: a warm sweep run serves
    every unchanged group from disk and skips union checking entirely,
    and a forced ``--backend``/``--encoding``/``--kernel`` validation run
    is never served a result a differently-configured sweep produced.

    One outcome per input group, in input order — duplicate groups are
    analyzed once and each occurrence gets the shared result.
    """
    requested = [tuple(group) for group in groups]
    ordered = list(dict.fromkeys(requested))

    # Sweep-level cache probe: groups served from disk never touch the
    # batch driver or a worker.
    outcomes: dict[tuple[str, ...], SweepOutcome] = {}
    disk_path = resolve_cache_dir(cache_dir)
    sweeps = SweepCache(disk_path) if disk_path is not None else None
    digests: dict[tuple[str, ...], list[str]] = {}
    if sweeps is not None:
        for group in ordered:
            digests[group] = [_source_key(app_id)[1] for app_id in group]
            cached = sweeps.get(digests[group], backend, encoding, kernel)
            if cached is not None:
                outcomes[group] = SweepOutcome(
                    group=group, environment=cached, cached=True
                )

    pending_groups = [group for group in ordered if group not in outcomes]
    member_ids = list(dict.fromkeys(a for group in pending_groups for a in group))
    analyses = analyze_batch(member_ids, jobs=jobs, cache_dir=cache_dir)

    # Budget-check in the parent only when the caller forces the explicit
    # backend: the estimate is a cheap domain product over deduplicated
    # attributes, so doomed groups are failed without shipping their
    # analyses to any worker.  The StateExplosionError catch in
    # _union_outcome stays as the backstop.
    worker_cache = None if disk_path is None else str(disk_path)
    payloads: list[
        tuple[
            tuple[str, ...], list[AppAnalysis], int | None, str, str, str,
            str | None,
        ]
    ] = []
    for group in pending_groups:
        group_analyses = [analyses[app_id] for app_id in group]
        if backend == "explicit" and max_union_states is not None:
            total = estimate_union_states([a.model for a in group_analyses])
            if total > max_union_states:
                outcomes[group] = SweepOutcome(
                    group=group,
                    environment=None,
                    error=f"union of {list(group)}: {total} states exceed budget",
                )
                continue
        payloads.append(
            (group, group_analyses, max_union_states, backend, encoding,
             kernel, worker_cache)
        )

    # min_parallel=2: a sweep payload is a whole union-model check, so
    # even two groups are worth a pool (unlike batch's cheap per-app jobs).
    worker_count = _resolve_jobs(jobs, len(payloads), min_parallel=2)
    if len(payloads) > 1 and worker_count > 1:
        outcomes.update(run_in_pool(_sweep_worker, payloads, worker_count))
    for (group, group_analyses, budget, chosen, chosen_encoding,
         chosen_kernel, group_cache) in payloads:
        if group not in outcomes:
            outcomes[group] = _union_outcome(
                group, group_analyses, budget, chosen, chosen_encoding,
                chosen_kernel, group_cache,
            )

    if sweeps is not None:
        for group in pending_groups:
            outcome = outcomes[group]
            if outcome.environment is not None:
                try:
                    sweeps.put(
                        digests[group], outcome.environment, backend,
                        encoding, kernel,
                    )
                except Exception:
                    # Best-effort, like the per-app store: an unwritable
                    # cache volume degrades to future misses.
                    pass
    return [outcomes[group] for group in requested]


def sweep_dataset(
    dataset: str = "all",
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    pairwise: bool = False,
    max_union_states: int | None = DEFAULT_MAX_UNION_STATES,
    backend: str = "auto",
    encoding: str = "auto",
    kernel: str = "auto",
    all_corpus: bool = False,
) -> list[SweepOutcome]:
    """Sweep one dataset's candidate environments (or all of them).

    ``pairwise`` analyzes every device-sharing pair instead of the maximal
    sharing groups — many more, much smaller, union models.

    ``all_corpus`` is the paper's whole-deployment scenario taken to the
    limit: *one* environment containing every app of ``dataset`` (all 82
    corpus apps for ``"all"``), regardless of device sharing.  Its domain
    product is astronomically beyond any explicit budget (~2^115 states
    for the full corpus), so it rides the symbolic backend's partitioned
    encoding end to end — no skip, no state-budget bailout.
    """
    if all_corpus:
        groups: list[Sequence[str]] = [tuple(_universe(dataset))]
    elif pairwise:
        groups = [
            (first, second) for first, second, _channels in pairs(dataset)
        ]
    else:
        groups = groups_sharing_devices(dataset)
    return sweep_environments(
        groups,
        jobs=jobs,
        cache_dir=cache_dir,
        max_union_states=max_union_states,
        backend=backend,
        encoding=encoding,
        kernel=kernel,
    )
