"""Multi-app sweep engine: union-model analysis over app groups (Sec. 6.1).

The paper's multi-app evaluation (Table 4, Appendix C environments) runs
Algorithm 2 over hand-picked groups of co-installed apps.  This module
turns that into a corpus-scale workload:

* :func:`pairs` / :func:`groups_sharing_devices` enumerate *candidate
  co-installations* from the corpus itself — apps interact when they share
  a device (equal permission handles, the reproduction's device-identity
  convention) or the location-mode broadcast channel.  Passing a paper
  group's app ids as the universe recovers that group as one connected
  component; passing a whole dataset opens arbitrary-group and
  arbitrary-pair sweeps the paper never ran.
* :func:`sweep_environments` fans union-model construction + checking out
  over worker processes, reusing per-app analyses through the batch
  driver's two cache layers (memory + optional ``cache_dir`` disk store)
  so no app source is ever parsed twice.

State explosion is a *result*, not an error: a candidate group whose union
exceeds the state budget comes back as a skipped :class:`SweepOutcome`
with the error text, and the sweep carries on.
"""

from __future__ import annotations

import functools
import os
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.corpus.batch import DATASETS, _resolve_jobs, analyze_batch, run_in_pool
from repro.corpus.loader import app_ids, load_app, load_source
from repro.ir import build_ir
from repro.model.extractor import StateExplosionError
from repro.model.union import union_state_count
from repro.platform.events import EventKind
from repro.soteria import AppAnalysis, EnvironmentAnalysis, analyze_environment

#: Name of the abstract broadcast channel shared by every app that reads
#: or writes the location mode (``setLocationMode`` / mode subscriptions).
MODE_CHANNEL = "location.mode"

#: Default union-state budget per candidate environment.  Every curated
#: paper group fits with an order of magnitude to spare (the largest,
#: Table 4's G.3, unions to 1 536 states); corpus-enumerated clusters
#: beyond it are reported as skipped rather than checked for hours.
DEFAULT_MAX_UNION_STATES = 10_000


# ======================================================================
# Candidate-environment enumeration
# ======================================================================
def _universe(universe: str | Iterable[str]) -> list[str]:
    """Normalize a dataset name (or ``"all"``) or explicit ids to a list."""
    if isinstance(universe, str):
        if universe == "all":
            return [app_id for name in DATASETS for app_id in app_ids(name)]
        return app_ids(universe)
    return list(dict.fromkeys(universe))


_COMMENT = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


@functools.lru_cache(maxsize=None)
def _app_channels(app_id: str) -> tuple[tuple[str, ...], bool, bool]:
    """(device handles, reads mode?, writes mode?) for one corpus app.

    Mode subscriptions come from the IR; mode *writes* and guard reads
    have no IR-level record, so they are detected textually in the
    comment-stripped source — a sound over-approximation for candidate
    enumeration (dead code can still flag an app, comments cannot).
    """
    source = _COMMENT.sub("", load_source(app_id))
    ir = build_ir(load_app(app_id))
    handles = tuple(sorted({perm.handle for perm in ir.devices()}))
    reads_mode = any(
        sub.event.kind is EventKind.MODE for sub in ir.subscriptions
    ) or "location.mode" in source
    writes_mode = "setLocationMode" in source or "sendLocationEvent" in source
    return handles, reads_mode, writes_mode


def interaction_channels(
    universe: str | Iterable[str],
) -> dict[str, tuple[str, ...]]:
    """Shared channels within a universe of corpus apps.

    Maps channel name -> the apps on it (universe order).  A channel is a
    device handle held by at least two apps, or :data:`MODE_CHANNEL` when
    some app writes the location mode and another reads or writes it
    (a broadcast with one participant interacts with nobody).
    """
    ids = _universe(universe)
    by_handle: dict[str, list[str]] = {}
    mode_apps: list[str] = []
    mode_writers = 0
    for app_id in ids:
        handles, reads_mode, writes_mode = _app_channels(app_id)
        for handle in handles:
            by_handle.setdefault(handle, []).append(app_id)
        if reads_mode or writes_mode:
            mode_apps.append(app_id)
            mode_writers += writes_mode
    channels = {
        handle: tuple(apps)
        for handle, apps in sorted(by_handle.items())
        if len(apps) > 1
    }
    if mode_writers and len(mode_apps) > 1:
        channels[MODE_CHANNEL] = tuple(mode_apps)
    return channels


def pairs(
    universe: str | Iterable[str],
) -> Iterable[tuple[str, str, tuple[str, ...]]]:
    """Candidate co-installation pairs: apps sharing at least one channel.

    Yields ``(app_a, app_b, shared_channels)`` with apps in universe order
    — the arbitrary-pair sweep workload (``sweep_environments`` over
    ``[(a, b) for a, b, _ in pairs(...)]``).
    """
    ids = _universe(universe)
    position = {app_id: index for index, app_id in enumerate(ids)}
    shared: dict[tuple[str, str], list[str]] = {}
    for channel, apps in interaction_channels(ids).items():
        for i, first in enumerate(apps):
            for second in apps[i + 1 :]:
                if channel == MODE_CHANNEL and not (
                    _app_channels(first)[2] or _app_channels(second)[2]
                ):
                    # Two mode *readers* alone cannot interact — the
                    # broadcast needs a writer inside the pair.
                    continue
                key = tuple(sorted((first, second), key=position.__getitem__))
                shared.setdefault(key, []).append(channel)
    for (first, second), channels in sorted(
        shared.items(), key=lambda item: (position[item[0][0]], position[item[0][1]])
    ):
        yield first, second, tuple(channels)


def groups_sharing_devices(
    universe: str | Iterable[str], min_size: int = 2
) -> list[tuple[str, ...]]:
    """Maximal candidate co-installations: connected components of the
    channel-sharing graph over ``universe``.

    Passing a curated group's ids (a Table 4 group, a MalIoT environment)
    recovers exactly that group as a single component — the paper's
    multi-app scenarios are the special case of a universe that is already
    one interaction cluster.  Passing a dataset name enumerates every
    maximal cluster of that dataset, most of which the paper never
    analyzed.  Components smaller than ``min_size`` (isolated apps) are
    dropped; apps within a component and components themselves keep
    universe order.
    """
    ids = _universe(universe)
    parent: dict[str, str] = {app_id: app_id for app_id in ids}

    def find(app_id: str) -> str:
        while parent[app_id] != app_id:
            parent[app_id] = parent[parent[app_id]]
            app_id = parent[app_id]
        return app_id

    for apps in interaction_channels(ids).values():
        root = find(apps[0])
        for other in apps[1:]:
            parent[find(other)] = root

    components: dict[str, list[str]] = {}
    for app_id in ids:
        components.setdefault(find(app_id), []).append(app_id)
    return [
        tuple(members)
        for members in components.values()
        if len(members) >= min_size
    ]


# ======================================================================
# The sweep itself
# ======================================================================
@dataclass(frozen=True)
class SweepOutcome:
    """Result of analyzing one candidate environment."""

    group: tuple[str, ...]
    environment: EnvironmentAnalysis | None
    error: str | None = None

    @property
    def skipped(self) -> bool:
        return self.environment is None

    def violated_ids(self) -> set[str]:
        if self.environment is None:
            return set()
        return self.environment.violated_ids()


def environment_only_ids(environment: EnvironmentAnalysis) -> set[str]:
    """Property ids only the union model reveals (the Table 4 numbers):
    multi-app violations plus ids no member app violates individually."""
    individual: set[str] = set()
    for analysis in environment.analyses:
        individual |= analysis.violated_ids()
    return {
        violation.property_id
        for violation in environment.violations
        if len(violation.apps) > 1 or violation.property_id not in individual
    }


def _union_outcome(
    group: tuple[str, ...],
    analyses: list[AppAnalysis],
    max_union_states: int | None,
) -> SweepOutcome:
    """Build + check one union model from precomputed per-app analyses."""
    try:
        environment = analyze_environment(
            list(analyses), max_union_states=max_union_states
        )
    except StateExplosionError as exc:
        return SweepOutcome(group=group, environment=None, error=str(exc))
    return SweepOutcome(group=group, environment=environment)


def _sweep_worker(
    group: tuple[str, ...],
    analyses: list[AppAnalysis],
    max_union_states: int | None,
) -> tuple[tuple[str, ...], SweepOutcome]:
    return group, _union_outcome(group, analyses, max_union_states)


def sweep_environments(
    groups: Iterable[Sequence[str]],
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    max_union_states: int | None = DEFAULT_MAX_UNION_STATES,
) -> list[SweepOutcome]:
    """Union-model analysis over many app groups, in input order.

    Per-app analyses are computed once through :func:`analyze_batch`
    (worker processes for cache misses; ``cache_dir`` layers the
    disk-backed cache, so a warm sweep re-parses nothing).  Union
    construction + checking then fans out over worker processes — each
    group ships its precomputed analyses to a worker, no re-parsing there
    either.  Groups whose union exceeds ``max_union_states`` (None =
    the default build budget) come back as skipped outcomes carrying the
    error text.  One outcome per input group, in input order — duplicate
    groups are analyzed once and each occurrence gets the shared result.
    """
    requested = [tuple(group) for group in groups]
    ordered = list(dict.fromkeys(requested))
    member_ids = list(dict.fromkeys(a for group in ordered for a in group))
    analyses = analyze_batch(member_ids, jobs=jobs, cache_dir=cache_dir)

    # Budget-check in the parent: the union's state count is a cheap
    # domain product over deduplicated attributes, so oversized groups
    # are skipped without shipping their analyses to any worker.  The
    # StateExplosionError catch in _union_outcome stays as the backstop
    # (analyze_environment enforces the same budget).
    outcomes: dict[tuple[str, ...], SweepOutcome] = {}
    payloads: list[tuple[tuple[str, ...], list[AppAnalysis], int | None]] = []
    for group in ordered:
        group_analyses = [analyses[app_id] for app_id in group]
        if max_union_states is not None:
            total = union_state_count([a.model for a in group_analyses])
            if total > max_union_states:
                outcomes[group] = SweepOutcome(
                    group=group,
                    environment=None,
                    error=f"union of {list(group)}: {total} states exceed budget",
                )
                continue
        payloads.append((group, group_analyses, max_union_states))

    # min_parallel=2: a sweep payload is a whole union-model check, so
    # even two groups are worth a pool (unlike batch's cheap per-app jobs).
    worker_count = _resolve_jobs(jobs, len(payloads), min_parallel=2)
    if len(payloads) > 1 and worker_count > 1:
        outcomes.update(run_in_pool(_sweep_worker, payloads, worker_count))
    for group, group_analyses, budget in payloads:
        if group not in outcomes:
            outcomes[group] = _union_outcome(group, group_analyses, budget)
    return [outcomes[group] for group in requested]


def sweep_dataset(
    dataset: str = "all",
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    pairwise: bool = False,
    max_union_states: int | None = DEFAULT_MAX_UNION_STATES,
) -> list[SweepOutcome]:
    """Sweep one dataset's candidate environments (or all of them).

    ``pairwise`` analyzes every device-sharing pair instead of the maximal
    sharing groups — many more, much smaller, union models.
    """
    if pairwise:
        groups: list[Sequence[str]] = [
            (first, second) for first, second, _channels in pairs(dataset)
        ]
    else:
        groups = groups_sharing_devices(dataset)
    return sweep_environments(
        groups, jobs=jobs, cache_dir=cache_dir, max_union_states=max_union_states
    )
