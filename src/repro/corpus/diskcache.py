"""Disk-backed analysis caches: per-app and sweep-level results.

The in-memory cache of :mod:`repro.corpus.batch` dies with the process, so
every fresh ``analyze_corpus`` run — a new benchmark invocation, a CI job,
a CLI call — re-analyzes all 82 apps from source.  This module persists
finished analyses under a cache directory so cross-process reruns are
near-instant: a warm sweep only unpickles.

Two stores share one directory:

* :class:`DiskCache` — one :class:`~repro.soteria.AppAnalysis` per app;
* :class:`SweepCache` — one :class:`~repro.soteria.EnvironmentAnalysis`
  per analyzed app *group*, keyed on the sorted member source digests, so
  a warm ``soteria sweep`` skips union-model checking entirely.  Checker
  backends produce identical violation sets (the differential suite
  enforces it), so the backend is deliberately *not* part of the key — a
  symbolic run can serve a later explicit request and vice versa.

Keying and layout
-----------------
An app entry is keyed on the triple **(app id, source SHA-256, pipeline
version)**; a sweep entry on **(sorted member source SHA-256s, pipeline
version)**.  The version is a directory level, the rest makes up the file
name::

    <cache-dir>/
      v<PIPELINE_VERSION>/
        O1-<sha256 of O1's source>.pkl
        TP12-<sha256 of TP12's source>.pkl
        ...
        sweeps/
          <sha256 over the sorted member digests>.pkl

* Editing an app changes its source hash — the old app entry and every
  sweep entry containing it simply stop being referenced (stale files are
  cleaned up lazily by :meth:`DiskCache.prune`).
* Bumping :data:`PIPELINE_VERSION` (any change to the analysis semantics:
  extraction, abstraction, union construction, property catalog)
  invalidates every entry at once, because lookups only ever see the
  current version directory.

Entries are written atomically (temp file + ``os.replace``) so concurrent
writers — the batch driver's worker processes, parallel CI shards sharing
a cache volume — never expose a torn pickle.  Unreadable entries (corrupt
file, pickle from an incompatible interpreter) are treated as misses and
deleted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections.abc import Sequence
from pathlib import Path

from repro.soteria import AppAnalysis, EnvironmentAnalysis

#: Version of the analysis pipeline baked into every cache path.  Bump this
#: whenever a change anywhere in the pipeline (IR, abstraction, model
#: extraction, property catalog) can alter an :class:`AppAnalysis`, so
#: stale results are never served across code changes.
PIPELINE_VERSION = "3"   # 3: AppAnalysis/EnvironmentAnalysis gained
                         # backend/encoding fields (partitioned encoding PR)

#: Environment variable consulted when no cache directory is passed
#: explicitly (CLI ``--cache-dir`` and the ``cache_dir=`` parameters win).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class DiskCache:
    """One cache directory holding pickled :class:`AppAnalysis` entries."""

    def __init__(self, root: str | os.PathLike, version: str = PIPELINE_VERSION):
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, app_id: str, digest: str) -> Path:
        return self.version_dir / f"{app_id}-{digest}.pkl"

    # ------------------------------------------------------------------
    def get(self, app_id: str, digest: str) -> AppAnalysis | None:
        """The cached analysis for (app id, source digest), or None.

        Counts a hit/miss; a corrupt or unreadable entry counts as a miss
        and is removed so the next write replaces it cleanly.
        """
        analysis = _read_pickle(self.path_for(app_id, digest), AppAnalysis)
        if analysis is None:
            self.misses += 1
            return None
        self.hits += 1
        return analysis

    def put(self, app_id: str, digest: str, analysis: AppAnalysis) -> None:
        """Persist one analysis atomically (temp file + rename)."""
        _write_pickle(self.path_for(app_id, digest), analysis, prefix=app_id)
        self.writes += 1

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Entry files of the *current* pipeline version, sorted by name."""
        if not self.version_dir.is_dir():
            return []
        return sorted(p for p in self.version_dir.iterdir() if p.suffix == ".pkl")

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self.entries()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def prune(self) -> int:
        """Delete entries of other pipeline versions; returns the count.

        Lazy garbage collection: stale-version directories are unreachable
        by lookups, this just reclaims the disk.
        """
        removed = 0
        if not self.root.is_dir():
            return 0

        def clear(directory: Path) -> int:
            count = 0
            for entry in list(directory.iterdir()):
                if entry.is_dir():
                    count += clear(entry)
                else:
                    try:
                        entry.unlink()
                        count += 1
                    except OSError:
                        pass
            try:
                directory.rmdir()
            except OSError:
                pass
            return count

        for child in self.root.iterdir():
            if not child.is_dir() or child == self.version_dir:
                continue
            removed += clear(child)
        return removed


class SweepCache:
    """Sweep-level result store: one environment analysis per app group.

    Keyed on the *sorted* member source digests (group order is
    irrelevant: the union's violation set does not depend on it) plus the
    pipeline version and the requested backend/encoding knobs, so a warm
    ``soteria sweep`` run serves finished
    :class:`~repro.soteria.EnvironmentAnalysis` objects without building,
    encoding, or checking any union model — while a forced
    ``--backend``/``--encoding`` run never silently reuses a result
    produced by a different checker path.  Editing any member app
    changes its digest and silently invalidates every group containing it.
    """

    def __init__(self, root: str | os.PathLike, version: str = PIPELINE_VERSION):
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @property
    def sweep_dir(self) -> Path:
        return self.root / f"v{self.version}" / "sweeps"

    @staticmethod
    def key_for(
        digests: Sequence[str], backend: str = "auto", encoding: str = "auto"
    ) -> str:
        """The group key: SHA-256 over the sorted member source digests
        plus the backend/encoding knobs the sweep was asked to use (a
        forced ``--encoding partitioned`` validation run must never be
        served a result the ``auto`` path produced)."""
        joined = "\n".join(sorted(digests)) + f"\n#{backend}/{encoding}"
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def path_for(
        self, digests: Sequence[str], backend: str = "auto", encoding: str = "auto"
    ) -> Path:
        return self.sweep_dir / f"{self.key_for(digests, backend, encoding)}.pkl"

    # ------------------------------------------------------------------
    def get(
        self,
        digests: Sequence[str],
        backend: str = "auto",
        encoding: str = "auto",
    ) -> EnvironmentAnalysis | None:
        """The cached environment analysis for a member-digest set, or None."""
        environment = _read_pickle(
            self.path_for(digests, backend, encoding), EnvironmentAnalysis
        )
        if environment is None:
            self.misses += 1
            return None
        self.hits += 1
        return environment

    def put(
        self,
        digests: Sequence[str],
        environment: EnvironmentAnalysis,
        backend: str = "auto",
        encoding: str = "auto",
    ) -> None:
        """Persist one environment analysis atomically."""
        _write_pickle(
            self.path_for(digests, backend, encoding), environment, prefix="sweep"
        )
        self.writes += 1

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Sweep entries of the current pipeline version, sorted by name."""
        if not self.sweep_dir.is_dir():
            return []
        return sorted(p for p in self.sweep_dir.iterdir() if p.suffix == ".pkl")

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self.entries()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }


# ----------------------------------------------------------------------
def _read_pickle(path: Path, expected: type) -> object | None:
    """Load one entry; corrupt or mistyped files are deleted misses."""
    try:
        with open(path, "rb") as handle:
            value = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:
        value = None
    if not isinstance(value, expected):
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return value


def _write_pickle(path: Path, value: object, prefix: str) -> None:
    """Write one entry atomically (temp file + ``os.replace``)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{prefix}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def resolve_cache_dir(cache_dir: str | os.PathLike | None) -> Path | None:
    """An explicit cache dir, else the ``REPRO_CACHE_DIR`` env, else None."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env is not None and env.strip():
        return Path(env.strip())
    return None
