"""Disk-backed analysis cache: :class:`AppAnalysis` results across processes.

The in-memory cache of :mod:`repro.corpus.batch` dies with the process, so
every fresh ``analyze_corpus`` run — a new benchmark invocation, a CI job,
a CLI call — re-analyzes all 82 apps from source.  This module persists
finished analyses under a cache directory so cross-process reruns are
near-instant: a warm sweep only unpickles.

Keying and layout
-----------------
An entry is keyed on the triple **(app id, source SHA-256, pipeline
version)**.  The version is a directory level, the other two make up the
file name::

    <cache-dir>/
      v<PIPELINE_VERSION>/
        O1-<sha256 of O1's source>.pkl
        TP12-<sha256 of TP12's source>.pkl
        ...

* Editing an app changes its source hash — the old entry simply stops
  being referenced (stale files are cleaned up lazily by :meth:`prune`).
* Bumping :data:`PIPELINE_VERSION` (any change to the analysis semantics:
  extraction, abstraction, property catalog) invalidates every entry at
  once, because lookups only ever see the current version directory.

Entries are written atomically (temp file + ``os.replace``) so concurrent
writers — the batch driver's worker processes, parallel CI shards sharing
a cache volume — never expose a torn pickle.  Unreadable entries (corrupt
file, pickle from an incompatible interpreter) are treated as misses and
deleted.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

from repro.soteria import AppAnalysis

#: Version of the analysis pipeline baked into every cache path.  Bump this
#: whenever a change anywhere in the pipeline (IR, abstraction, model
#: extraction, property catalog) can alter an :class:`AppAnalysis`, so
#: stale results are never served across code changes.
PIPELINE_VERSION = "2"

#: Environment variable consulted when no cache directory is passed
#: explicitly (CLI ``--cache-dir`` and the ``cache_dir=`` parameters win).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class DiskCache:
    """One cache directory holding pickled :class:`AppAnalysis` entries."""

    def __init__(self, root: str | os.PathLike, version: str = PIPELINE_VERSION):
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, app_id: str, digest: str) -> Path:
        return self.version_dir / f"{app_id}-{digest}.pkl"

    # ------------------------------------------------------------------
    def get(self, app_id: str, digest: str) -> AppAnalysis | None:
        """The cached analysis for (app id, source digest), or None.

        Counts a hit/miss; a corrupt or unreadable entry counts as a miss
        and is removed so the next write replaces it cleanly.
        """
        path = self.path_for(app_id, digest)
        try:
            with open(path, "rb") as handle:
                analysis = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(analysis, AppAnalysis):
            self.misses += 1
            return None
        self.hits += 1
        return analysis

    def put(self, app_id: str, digest: str, analysis: AppAnalysis) -> None:
        """Persist one analysis atomically (temp file + rename)."""
        path = self.path_for(app_id, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{app_id}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(analysis, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Entry files of the *current* pipeline version, sorted by name."""
        if not self.version_dir.is_dir():
            return []
        return sorted(p for p in self.version_dir.iterdir() if p.suffix == ".pkl")

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self.entries()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def prune(self) -> int:
        """Delete entries of other pipeline versions; returns the count.

        Lazy garbage collection: stale-version directories are unreachable
        by lookups, this just reclaims the disk.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        for child in self.root.iterdir():
            if not child.is_dir() or child == self.version_dir:
                continue
            for entry in list(child.iterdir()):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                child.rmdir()
            except OSError:
                pass
        return removed


def resolve_cache_dir(cache_dir: str | os.PathLike | None) -> Path | None:
    """An explicit cache dir, else the ``REPRO_CACHE_DIR`` env, else None."""
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    if env is not None and env.strip():
        return Path(env.strip())
    return None
