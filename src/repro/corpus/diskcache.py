"""Whole-result disk caches: facades over the stage artifact store.

Historically this module *was* the persistence layer: one pickled
:class:`~repro.soteria.AppAnalysis` per app, one
:class:`~repro.soteria.EnvironmentAnalysis` per swept group.  Since the
staged-pipeline refactor the general mechanism lives in
:mod:`repro.pipeline.store` — every pipeline stage persists its own
content-addressed artifact — and the classes here are thin facades that
store finished results as the two *coarsest* stages of that layout:

* :class:`DiskCache` — stage ``analysis``: one :class:`AppAnalysis` per
  (app id, source SHA-256), the batch driver's O(1) whole-result probe;
* :class:`SweepCache` — stage ``sweep``: one :class:`EnvironmentAnalysis`
  per analyzed app *group*, keyed on the sorted member source digests
  plus the requested backend/encoding knobs, so a warm ``soteria sweep``
  skips union-model checking entirely;
* :class:`FleetCache` — stage ``fleet``: one compact
  :class:`~repro.fleet.telemetry.HouseholdVerdict` per *canonical*
  household form (:mod:`repro.fleet.canon`) and knob set, so a warm
  ``soteria fleet`` run — or a different fleet whose households are
  isomorphic to an earlier one's — checks nothing at all.

Keying and layout
-----------------
An app entry is keyed on the triple **(app id, source SHA-256, pipeline
version)**; a sweep entry on **(sorted member source SHA-256s, knobs,
pipeline version)**.  Both live inside the shared artifact-store tree::

    <cache-dir>/
      v<PIPELINE_VERSION>/
        parse/ ir/ model/ kripke/ union/ check/   (per-stage artifacts)
        analysis/
          O1-<sha256 of O1's source>.pkl
          TP12-<sha256 of TP12's source>.pkl
        sweep/
          <sha256 over the sorted member digests + knobs>.pkl

* Editing an app changes its source hash — the old entries (and every
  sweep entry containing it) simply stop being referenced (stale files
  are cleaned up lazily by :meth:`DiskCache.prune`).
* Bumping :data:`~repro.pipeline.store.PIPELINE_VERSION` (any change to
  the analysis semantics: extraction, abstraction, union construction,
  property catalog, result dataclasses) invalidates every entry at once,
  because lookups only ever see the current version directory.

Entries are written atomically (temp file + ``os.replace``) so concurrent
writers — the batch driver's worker processes, parallel CI shards sharing
a cache volume — never expose a torn pickle.  Unreadable entries (corrupt
file, pickle from an incompatible interpreter) are treated as misses and
deleted.
"""

from __future__ import annotations

import hashlib
import os
from collections.abc import Sequence
from pathlib import Path

from repro.fleet.telemetry import HouseholdVerdict
from repro.pipeline.store import (
    CACHE_DIR_ENV,
    PIPELINE_VERSION,
    ArtifactStore,
    _read_pickle,
    _write_pickle,
    resolve_cache_dir,
)
from repro.soteria import AppAnalysis, EnvironmentAnalysis

__all__ = [
    "CACHE_DIR_ENV",
    "PIPELINE_VERSION",
    "DiskCache",
    "FleetCache",
    "SweepCache",
    "resolve_cache_dir",
]


class DiskCache:
    """Whole-analysis store: stage ``analysis`` of the artifact tree."""

    STAGE = "analysis"

    def __init__(self, root: str | os.PathLike, version: str = PIPELINE_VERSION):
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    @property
    def stage_dir(self) -> Path:
        return self.version_dir / self.STAGE

    def path_for(self, app_id: str, digest: str) -> Path:
        return self.stage_dir / f"{app_id}-{digest}.pkl"

    # ------------------------------------------------------------------
    def get(self, app_id: str, digest: str) -> AppAnalysis | None:
        """The cached analysis for (app id, source digest), or None.

        Counts a hit/miss; a corrupt or unreadable entry counts as a miss
        and is removed so the next write replaces it cleanly.
        """
        analysis = _read_pickle(self.path_for(app_id, digest), AppAnalysis)
        if analysis is None:
            self.misses += 1
            return None
        self.hits += 1
        return analysis

    def put(self, app_id: str, digest: str, analysis: AppAnalysis) -> None:
        """Persist one analysis atomically (temp file + rename)."""
        _write_pickle(self.path_for(app_id, digest), analysis, prefix=app_id)
        self.writes += 1

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Entry files of the *current* pipeline version, sorted by name."""
        if not self.stage_dir.is_dir():
            return []
        return sorted(p for p in self.stage_dir.iterdir() if p.suffix == ".pkl")

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self.entries()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def prune(self) -> int:
        """Delete entries of other pipeline versions; returns the count.

        Lazy garbage collection over the *whole* artifact tree (every
        stage, not just this facade's): stale-version directories are
        unreachable by lookups, this just reclaims the disk.
        """
        return ArtifactStore(self.root, version=self.version).prune()


class SweepCache:
    """Sweep-level result store: stage ``sweep`` of the artifact tree.

    Keyed on the *sorted* member source digests (group order is
    irrelevant: the union's violation set does not depend on it) plus the
    pipeline version and the requested backend/encoding/kernel knobs, so a warm
    ``soteria sweep`` run serves finished
    :class:`~repro.soteria.EnvironmentAnalysis` objects without building,
    encoding, or checking any union model — while a forced
    ``--backend``/``--encoding`` run never silently reuses a result
    produced by a different checker path.  Editing any member app
    changes its digest and silently invalidates every group containing it.
    """

    STAGE = "sweep"

    def __init__(self, root: str | os.PathLike, version: str = PIPELINE_VERSION):
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @property
    def sweep_dir(self) -> Path:
        return self.root / f"v{self.version}" / self.STAGE

    @staticmethod
    def key_for(
        digests: Sequence[str],
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
    ) -> str:
        """The group key: SHA-256 over the sorted member source digests
        plus the backend/encoding/kernel knobs the sweep was asked to use
        (a forced ``--encoding partitioned`` or ``--kernel reference``
        validation run must never be served a result the ``auto`` path
        produced)."""
        joined = "\n".join(sorted(digests)) + f"\n#{backend}/{encoding}/{kernel}"
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def path_for(
        self,
        digests: Sequence[str],
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
    ) -> Path:
        return self.sweep_dir / (
            f"{self.key_for(digests, backend, encoding, kernel)}.pkl"
        )

    # ------------------------------------------------------------------
    def get(
        self,
        digests: Sequence[str],
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
    ) -> EnvironmentAnalysis | None:
        """The cached environment analysis for a member-digest set, or None."""
        environment = _read_pickle(
            self.path_for(digests, backend, encoding, kernel), EnvironmentAnalysis
        )
        if environment is None:
            self.misses += 1
            return None
        self.hits += 1
        return environment

    def put(
        self,
        digests: Sequence[str],
        environment: EnvironmentAnalysis,
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
    ) -> None:
        """Persist one environment analysis atomically."""
        _write_pickle(
            self.path_for(digests, backend, encoding, kernel),
            environment,
            prefix="sweep",
        )
        self.writes += 1

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Sweep entries of the current pipeline version, sorted by name."""
        if not self.sweep_dir.is_dir():
            return []
        return sorted(p for p in self.sweep_dir.iterdir() if p.suffix == ".pkl")

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self.entries()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }


class FleetCache:
    """Fleet-level verdict store: stage ``fleet`` of the artifact tree.

    Keyed on the *canonical household form*
    (:func:`repro.fleet.canon.household_key`) — not on member digests —
    plus the pipeline version and the checker knobs the screen ran
    under: isomorphic households (renamed devices/apps, permuted
    members) share one entry by construction, and a forced
    ``--backend``/``--encoding``/``--kernel`` run is never served a
    verdict a differently-configured screen produced.  The stored value
    is the compact :class:`~repro.fleet.telemetry.HouseholdVerdict`,
    kept small on purpose: a million-household screen touches this tier
    once per canonical household.
    """

    STAGE = "fleet"

    def __init__(self, root: str | os.PathLike, version: str = PIPELINE_VERSION):
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    @property
    def fleet_dir(self) -> Path:
        return self.root / f"v{self.version}" / self.STAGE

    @staticmethod
    def key_for(
        canonical_key: str,
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
        max_union_states: int | None = None,
    ) -> str:
        """Entry key: SHA-256 over the canonical household key plus the
        checker knobs (including the explicit/symbolic crossover, which
        changes the resolved backend and therefore the verdict's
        provenance)."""
        joined = (
            f"{canonical_key}\n#{backend}/{encoding}/{kernel}"
            f"/{max_union_states}"
        )
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    def path_for(
        self,
        canonical_key: str,
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
        max_union_states: int | None = None,
    ) -> Path:
        return self.fleet_dir / (
            f"{self.key_for(canonical_key, backend, encoding, kernel, max_union_states)}.pkl"
        )

    # ------------------------------------------------------------------
    def get(
        self,
        canonical_key: str,
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
        max_union_states: int | None = None,
    ) -> HouseholdVerdict | None:
        """The cached verdict for one canonical household, or None."""
        verdict = _read_pickle(
            self.path_for(canonical_key, backend, encoding, kernel, max_union_states),
            HouseholdVerdict,
        )
        if verdict is None:
            self.misses += 1
            return None
        self.hits += 1
        return verdict

    def put(
        self,
        canonical_key: str,
        verdict: HouseholdVerdict,
        backend: str = "auto",
        encoding: str = "auto",
        kernel: str = "auto",
        max_union_states: int | None = None,
    ) -> None:
        """Persist one household verdict atomically."""
        _write_pickle(
            self.path_for(canonical_key, backend, encoding, kernel, max_union_states),
            verdict,
            prefix="fleet",
        )
        self.writes += 1

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Fleet entries of the current pipeline version, sorted by name."""
        if not self.fleet_dir.is_dir():
            return []
        return sorted(p for p in self.fleet_dir.iterdir() if p.suffix == ".pkl")

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self.entries()),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
