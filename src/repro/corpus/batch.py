"""Batch analysis driver for the evaluation corpus (Sec. 6 sweeps).

``load_corpus`` + :func:`repro.analyze_app` over all 82 apps is the inner
loop of every paper benchmark, the CLI ``corpus`` command, and the example
scripts.  This module turns that loop into a single call:

* **Cache** — one completed :class:`~repro.soteria.AppAnalysis` per app,
  keyed on the SHA-256 of the app's source text.  Repeated sweeps in one
  process (test fixtures, benchmark rounds, interactive use) parse and
  analyze each app at most once.  The loader memoizes sources per
  process, so the hash key matters when those caches are refreshed: after
  editing an app and clearing ``loader._sources``/``loader.load_app``,
  only that app's entry misses — every unchanged analysis is reused.
* **Workers** — cache misses are analyzed in parallel with
  :mod:`concurrent.futures` worker processes.  The pool is best-effort:
  environments without working multiprocessing (restricted sandboxes) fall
  back to in-process serial analysis transparently.

The cache stores finished analyses only; entries are never mutated by the
driver, so shared use across fixtures is safe as long as callers treat the
results as read-only (which every benchmark does).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
from collections.abc import Iterable

from repro.corpus.loader import app_ids, load_app, load_source
from repro.soteria import AppAnalysis, analyze_app

#: All dataset names, in the paper's presentation order.
DATASETS = ("official", "thirdparty", "maliot")

#: Finished analyses keyed on (app id, SHA-256 of the app source).
_CACHE: dict[tuple[str, str], AppAnalysis] = {}

#: Environment override for the worker count (0 or 1 forces serial).
_JOBS_ENV = "REPRO_BATCH_JOBS"


def _source_key(app_id: str) -> tuple[str, str]:
    digest = hashlib.sha256(load_source(app_id).encode("utf-8")).hexdigest()
    return (app_id, digest)


def _analyze_worker(app_id: str) -> tuple[str, AppAnalysis]:
    """Worker-process entry: load (package data) and analyze one app."""
    return app_id, analyze_app(load_app(app_id))


def _resolve_jobs(jobs: int | None, pending: int) -> int:
    if jobs is None:
        env = os.environ.get(_JOBS_ENV)
        if env is not None and env.strip().isdigit():
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    # A worker pool only pays off for a real sweep: spawning interpreters
    # for a couple of cache misses costs more than the analyses.
    if pending < 4:
        return 1
    return max(1, min(jobs, pending))


def _analyze_in_pool(
    pending: list[str], worker_count: int
) -> dict[str, AppAnalysis]:
    """Analyze ``pending`` ids in worker processes, best-effort.

    Per-app failures (or unpicklable results) are left out of the returned
    mapping for the caller's serial retry; completed siblings are kept.
    Environments without usable multiprocessing return an empty mapping.
    """
    fresh: dict[str, AppAnalysis] = {}
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=worker_count
        ) as pool:
            futures = {pool.submit(_analyze_worker, a): a for a in pending}
            for future in concurrent.futures.as_completed(futures):
                try:
                    app_id, analysis = future.result()
                except Exception:
                    continue  # retried serially so the error surfaces
                fresh[app_id] = analysis
    except Exception:
        # No usable multiprocessing here (restricted sandbox, missing
        # semaphores): fall back to fully serial analysis.
        pass
    return fresh


def analyze_batch(
    ids: Iterable[str], jobs: int | None = None
) -> dict[str, AppAnalysis]:
    """Analyze a list of corpus app ids, reusing cached results.

    ``jobs`` caps the worker processes (None = auto from ``REPRO_BATCH_JOBS``
    or the CPU count; 0/1 = serial).  Results come back in input order.
    """
    ordered = list(dict.fromkeys(ids))
    keys = {app_id: _source_key(app_id) for app_id in ordered}
    results: dict[str, AppAnalysis] = {}
    pending: list[str] = []
    for app_id in ordered:
        cached = _CACHE.get(keys[app_id])
        if cached is not None:
            results[app_id] = cached
        else:
            pending.append(app_id)

    worker_count = _resolve_jobs(jobs, len(pending))

    def commit(app_id: str, analysis: AppAnalysis) -> None:
        _CACHE[keys[app_id]] = analysis
        results[app_id] = analysis

    if pending and worker_count > 1:
        # Commit pool results immediately: if a later serial retry raises
        # (the per-app error a worker swallowed), the completed siblings
        # stay cached and a rerun only redoes the failing app.
        for app_id, analysis in _analyze_in_pool(pending, worker_count).items():
            commit(app_id, analysis)
    for app_id in pending:
        if app_id not in results:
            commit(app_id, analyze_app(load_app(app_id)))
    return {app_id: results[app_id] for app_id in ordered}


def analyze_corpus(
    dataset: str = "all", jobs: int | None = None
) -> dict[str, AppAnalysis]:
    """Analyze every app of one dataset (or ``"all"`` 82 apps) in one call."""
    if dataset == "all":
        ids = [app_id for name in DATASETS for app_id in app_ids(name)]
    else:
        ids = app_ids(dataset)
    return analyze_batch(ids, jobs=jobs)


def cache_info() -> dict[str, int]:
    """Cache statistics (size only; hits are implicit in call latency)."""
    return {"entries": len(_CACHE)}


def clear_cache() -> None:
    """Drop every cached analysis (tests and memory-sensitive callers)."""
    _CACHE.clear()
