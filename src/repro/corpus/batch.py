"""Batch analysis driver for the evaluation corpus (Sec. 6 sweeps).

``load_corpus`` + :func:`repro.analyze_app` over all 82 apps is the inner
loop of every paper benchmark, the CLI ``corpus`` command, and the example
scripts.  This module turns that loop into a single call:

* **Cache** — one completed :class:`~repro.soteria.AppAnalysis` per app,
  keyed on the SHA-256 of the app's source text.  Two layers:

  - an in-process dict (``_CACHE``): repeated sweeps in one process (test
    fixtures, benchmark rounds, interactive use) parse and analyze each
    app at most once;
  - optionally, a disk-backed store (:class:`repro.corpus.diskcache.DiskCache`)
    under ``cache_dir`` (or ``$REPRO_CACHE_DIR``): fresh processes reuse
    analyses from earlier runs, additionally keyed on the pipeline
    version so results never survive a semantic change to the analysis.

  The loader memoizes sources per process, so the hash key matters when
  those caches are refreshed: after editing an app and clearing
  ``loader._sources``/``loader.load_app``, only that app's entry misses —
  every unchanged analysis is reused.
* **Workers** — cache misses are analyzed in parallel with
  :mod:`concurrent.futures` worker processes.  The pool is best-effort:
  environments without working multiprocessing (restricted sandboxes) fall
  back to in-process serial analysis transparently.

Misses run through the staged pipeline (:mod:`repro.pipeline`): with a
``cache_dir`` configured, each app's per-stage artifacts
(parse/ir/model/kripke/check) persist next to the whole-analysis blob,
so later environment sweeps and service submissions replay the per-app
stages from the same store.

The caches store finished analyses only; entries are never mutated by the
driver, so shared use across fixtures is safe as long as callers treat the
results as read-only (which every benchmark does).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
from collections.abc import Iterable

from repro.corpus.diskcache import DiskCache, resolve_cache_dir
from repro.corpus.loader import app_ids, load_app, load_source
from repro.pipeline.runner import default_pipeline, pipeline_for
from repro.soteria import AppAnalysis

#: All dataset names, in the paper's presentation order.
DATASETS = ("official", "thirdparty", "maliot")

#: Finished analyses keyed on (app id, SHA-256 of the app source).
_CACHE: dict[tuple[str, str], AppAnalysis] = {}

#: Lifetime cache-effectiveness counters, reported by :func:`cache_info`.
_STATS = {"memory_hits": 0, "disk_hits": 0, "misses": 0}

#: Environment override for the worker count (0 or 1 forces serial).
_JOBS_ENV = "REPRO_BATCH_JOBS"


def _source_key(app_id: str) -> tuple[str, str]:
    digest = hashlib.sha256(load_source(app_id).encode("utf-8")).hexdigest()
    return (app_id, digest)


def _disk_put(disk: DiskCache, key: tuple[str, str], analysis: AppAnalysis) -> None:
    """Persist best-effort: an unwritable cache volume (read-only CI
    restore, full disk) must not fail the analysis that produced the
    result — cache problems degrade to future misses."""
    try:
        disk.put(*key, analysis)
    except Exception:
        # OSError (read-only volume, full disk) and pickling failures
        # (unpicklable analysis in a serial-only environment) alike.
        pass


def _analyze_one(app_id: str, cache_dir: str | os.PathLike | None = None) -> AppAnalysis:
    """The single compute entry behind every batch miss.

    Runs the staged pipeline for one corpus app — with a disk-backed
    artifact store when ``cache_dir`` is given, so per-stage artifacts
    (parse/ir/model/kripke/check) persist alongside the whole-analysis
    blob and later environment sweeps replay the per-app stages from
    disk instead of recomputing them.
    """
    pipeline = default_pipeline() if cache_dir is None else pipeline_for(cache_dir)
    return pipeline.app_analysis(load_app(app_id))


def _analyze_worker(
    app_id: str, cache_dir: str | None = None
) -> tuple[str, AppAnalysis]:
    """Worker-process entry: load (package data) and analyze one app."""
    return app_id, _analyze_one(app_id, cache_dir)


def _resolve_jobs(jobs: int | None, pending: int, min_parallel: int = 4) -> int:
    """Worker count for ``pending`` tasks (explicit arg > env > CPU count).

    ``min_parallel`` is the pool-worthiness cutoff: below it the work runs
    serially.  The default of 4 is calibrated for cheap per-app analyses
    (spawning interpreters for a couple of cache misses costs more than
    the analyses); callers with expensive tasks — union-model checking in
    the sweep engine — pass 2 so even a pair of tasks parallelizes.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if jobs is None:
        env = os.environ.get(_JOBS_ENV)
        if env is None:
            jobs = os.cpu_count() or 1
        else:
            try:
                jobs = int(env.strip())
            except ValueError:
                raise ValueError(
                    f"{_JOBS_ENV} must be an integer worker count, "
                    f"got {env!r}"
                ) from None
            if jobs < 0:
                raise ValueError(
                    f"{_JOBS_ENV} must be non-negative, got {env!r}"
                )
    if pending < min_parallel:
        return 1
    return max(1, min(jobs, pending))


def run_in_pool(worker, payloads, worker_count: int) -> dict:
    """Run ``worker(*payload)`` over worker processes, best-effort.

    ``worker`` must be a module-level callable (picklable) returning a
    ``(key, value)`` pair; the result maps key -> value.  Failed payloads
    (worker exceptions, unpicklable results) are simply absent, for the
    caller's serial retry where the error can surface; completed siblings
    are kept.  Environments without usable multiprocessing (restricted
    sandboxes, missing semaphores) return an empty mapping so callers
    fall back to fully serial execution.
    """
    done: dict = {}
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=worker_count
        ) as pool:
            futures = [pool.submit(worker, *payload) for payload in payloads]
            for future in concurrent.futures.as_completed(futures):
                try:
                    key, value = future.result()
                except Exception:
                    continue  # retried serially so the error surfaces
                done[key] = value
    except Exception:
        pass
    return done


def analyze_batch(
    ids: Iterable[str],
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> dict[str, AppAnalysis]:
    """Analyze a list of corpus app ids, reusing cached results.

    ``jobs`` caps the worker processes (None = auto from ``REPRO_BATCH_JOBS``
    or the CPU count; 0/1 = serial).  ``cache_dir`` (default:
    ``$REPRO_CACHE_DIR`` if set) layers a disk-backed cache under the
    in-memory one: analyses found on disk skip re-analysis, fresh analyses
    are persisted for the next process.  Results come back in input order.
    """
    disk_path = resolve_cache_dir(cache_dir)
    disk = DiskCache(disk_path) if disk_path is not None else None

    ordered = list(dict.fromkeys(ids))
    keys = {app_id: _source_key(app_id) for app_id in ordered}
    results: dict[str, AppAnalysis] = {}
    pending: list[str] = []
    for app_id in ordered:
        cached = _CACHE.get(keys[app_id])
        if cached is not None:
            _STATS["memory_hits"] += 1
            results[app_id] = cached
            if disk is not None and not disk.path_for(*keys[app_id]).exists():
                # Write-back: analyses computed before the disk layer was
                # configured still persist for the next process.
                _disk_put(disk, keys[app_id], cached)
            continue
        if disk is not None:
            stored = disk.get(*keys[app_id])
            if stored is not None:
                _STATS["disk_hits"] += 1
                _CACHE[keys[app_id]] = stored
                results[app_id] = stored
                continue
        pending.append(app_id)

    worker_count = _resolve_jobs(jobs, len(pending))

    def commit(app_id: str, analysis: AppAnalysis) -> None:
        _STATS["misses"] += 1
        _CACHE[keys[app_id]] = analysis
        results[app_id] = analysis
        if disk is not None:
            _disk_put(disk, keys[app_id], analysis)

    if pending and worker_count > 1:
        # Commit pool results immediately: if a later serial retry raises
        # (the per-app error a worker swallowed), the completed siblings
        # stay cached and a rerun only redoes the failing app.
        worker_cache = None if disk_path is None else str(disk_path)
        pool_results = run_in_pool(
            _analyze_worker,
            [(app_id, worker_cache) for app_id in pending],
            worker_count,
        )
        for app_id, analysis in pool_results.items():
            commit(app_id, analysis)
    for app_id in pending:
        if app_id not in results:
            commit(app_id, _analyze_one(app_id, disk_path))
    return {app_id: results[app_id] for app_id in ordered}


def analyze_corpus(
    dataset: str = "all",
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> dict[str, AppAnalysis]:
    """Analyze every app of one dataset (or ``"all"`` 82 apps) in one call."""
    if dataset == "all":
        ids = [app_id for name in DATASETS for app_id in app_ids(name)]
    else:
        ids = app_ids(dataset)
    return analyze_batch(ids, jobs=jobs, cache_dir=cache_dir)


def cache_info() -> dict[str, int]:
    """Cache statistics: in-memory size plus lifetime hit/miss counters.

    ``memory_hits``/``disk_hits`` count lookups served by each layer,
    ``misses`` counts analyses actually (re)computed.  Counters reset with
    :func:`clear_cache`.
    """
    return {
        "entries": len(_CACHE),
        "hits": _STATS["memory_hits"] + _STATS["disk_hits"],
        "memory_hits": _STATS["memory_hits"],
        "disk_hits": _STATS["disk_hits"],
        "misses": _STATS["misses"],
    }


def clear_cache() -> None:
    """Drop every cached analysis and reset the hit/miss counters.

    In-memory only: disk-cache directories belong to their callers.
    """
    _CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0
