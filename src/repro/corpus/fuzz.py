"""Differential fuzzing driver: generated scenarios through both backends.

PR 3 left the repository with two independent union-model checkers — the
explicit Kripke path and the BDD-symbolic path — plus a differential test
suite pinned to the 30 curated paper environments.  This module turns that
fixed guarantee into an *unbounded property*: every scenario the generator
(:mod:`repro.gen`) can synthesize is a differential test case, and every
violation template it injects is a metamorphic oracle.

For each case (a solo app, a generated device-sharing cluster, or a
cluster mixing a synthetic app into a corpus app's device neighborhood)
the driver

1. parses and analyzes every member through the full pipeline,
2. checks the environment on **both** backends — and, with
   ``encoding="both"``, on both symbolic relation encodings (monolithic
   and partitioned), a three-way differential — comparing violation
   sets and per-formula verdicts (the differential oracle),
3. asserts every injected violation is flagged by its matching property
   (the metamorphic oracle), and
4. on failure, shrinks the input to a minimal reproducer
   (:mod:`repro.gen.shrink`) and hands the sources back for persisting.

Cases are planned, generated, and checked deterministically from the
seed; worker processes only change wall-clock time, never verdicts.

Analyses run through the staged pipeline (:mod:`repro.pipeline`) behind
the :mod:`repro.soteria` facades: within one case the explicit and
symbolic runs share every per-app parse/ir/model artifact, and the two
symbolic encodings of a three-way differential share the union skeleton
— the campaign re-derives nothing a differential sibling already built.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import random
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.corpus.batch import _resolve_jobs, run_in_pool
from repro.corpus.loader import (
    app_ids,
    load_app,
    register_app,
    scoped_registration,
)
from repro.gen.generator import GenConfig, GeneratedApp, generate_app, generate_cluster
from repro.gen.shrink import shrink_app, shrink_cluster
from repro.gen.templates import BENIGN_PATTERNS
from repro.ir import build_ir
from repro.soteria import AppAnalysis, analyze_app, analyze_environment

#: Union-state ceiling for a fuzz case: the generator's budgets keep
#: cases far below it; anything above indicates a generator/estimator
#: disagreement and is reported as a case error instead of ground to a
#: halt on the explicit backend.
EXPLICIT_CEILING = 25_000


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign's parameters (picklable: ships to workers)."""

    seed: int | str = 0
    count: int = 25
    #: Probability that a case is a generated cluster (vs a solo app).
    cluster_rate: float = 0.4
    #: Dataset to mix synthetic apps into (None = purely synthetic).
    #: When set, half of the cluster cases pair a corpus app with a
    #: synthetic app generated onto one of its device handles.
    mix_dataset: str | None = None
    #: Shrink failing cases to minimal reproducers.
    shrink: bool = True
    #: Symbolic relation encoding(s) differential-tested against the
    #: explicit oracle: "auto" | "monolithic" | "partitioned" run one
    #: symbolic pass with that encoding; "both" cross-checks monolithic
    #: AND partitioned on every case (the three-way differential).
    encoding: str = "auto"
    #: BDD kernel(s) the symbolic passes run on: "auto" | "reference" |
    #: "fast" pick one kernel; "both" runs every symbolic pass on the
    #: reference AND the fast kernel, turning each case into a
    #: cross-kernel differential (explicit vs reference vs fast).
    kernel: str = "auto"
    #: Checker backends differential-tested: "auto" keeps the classic
    #: explicit-vs-symbolic pair; "both" adds a SAT (``bmc``) pass per
    #: case, making each case a three-way explicit/symbolic/BMC
    #: differential over violation sets and per-formula verdicts.
    backend: str = "auto"
    gen: GenConfig = field(default_factory=GenConfig)


@dataclass
class CaseResult:
    """Outcome of one fuzz case."""

    index: int
    kind: str                      # "app" | "cluster" | "mixed"
    app_ids: tuple[str, ...]
    sources: tuple[str, ...]       # generated member sources
    injected: tuple[str, ...]      # property ids injected across members
    detected: tuple[str, ...]      # injected ids actually flagged
    status: str                    # "ok" | "mismatch" | "missed" | "error"
    detail: str = ""
    state_estimate: int = 0
    #: Corpus members of a mixed case (prefix of ``app_ids``; their
    #: sources are referenced by id, never copied into ``sources``).
    corpus_ids: tuple[str, ...] = ()
    #: Minimal reproducer sources (populated for failing cases).
    shrunk: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class FuzzReport:
    """Aggregate of one campaign; identical for identical (seed, config)."""

    config: FuzzConfig
    results: list[CaseResult]

    def failures(self) -> list[CaseResult]:
        return [r for r in self.results if not r.ok]

    def injected_total(self) -> int:
        return sum(len(r.injected) for r in self.results)

    def detected_total(self) -> int:
        return sum(len(r.detected) for r in self.results)

    def detection_rate(self) -> float:
        injected = self.injected_total()
        return 1.0 if not injected else self.detected_total() / injected

    @property
    def ok(self) -> bool:
        return not self.failures()


# ======================================================================
# Case construction
# ======================================================================
#: Capabilities the generator can attach fragments to — corpus devices
#: with these capabilities are mixing points for synthetic apps.
_GENERATABLE_CAPS = frozenset(
    slot.capability
    for fragment in BENIGN_PATTERNS
    for slot in fragment.slots
)


def _finalize_ids(apps: list[GeneratedApp], register: bool) -> list[GeneratedApp]:
    """Rename members to digest-derived ids and register their sources.

    The digest makes ids collision-free across seeds and configs inside
    one process (loader registration binds an id to one source forever),
    while staying deterministic for reproducibility.
    """
    digest = hashlib.sha256(
        "\0".join(app.source for app in apps).encode("utf-8")
    ).hexdigest()[:10]
    renamed = [
        replace(app, app_id=f"Gen{digest}m{member}")
        for member, app in enumerate(apps)
    ]
    if register:
        for app in renamed:
            register_app(app.app_id, app.source)
    return renamed


@functools.lru_cache(maxsize=None)
def _mix_candidates(dataset: str) -> tuple[tuple[str, str, str], ...]:
    """Corpus mixing points: (app id, device handle, capability).

    Cached per process: every mixed case (and every worker) reuses one
    IR pass over the dataset instead of rebuilding 30+ IRs per case.
    """
    found: list[tuple[str, str, str]] = []
    for app_id in app_ids(dataset):
        try:
            ir = build_ir(load_app(app_id))
        except Exception:
            continue
        for perm in ir.devices():
            if perm.capability in _GENERATABLE_CAPS:
                found.append((app_id, perm.handle, perm.capability))
    return tuple(found)


@dataclass
class _Case:
    kind: str
    corpus_ids: tuple[str, ...]
    apps: list[GeneratedApp]


def _plan_case(index: int, config: FuzzConfig, register: bool = True) -> _Case:
    """Deterministically materialize case ``index`` of the campaign."""
    rng = random.Random(f"soteria-fuzz:{config.seed}:{index}")
    cluster_roll = rng.random()
    mix_roll = rng.random()
    if cluster_roll >= config.cluster_rate:
        app = generate_app(config.seed, index, config=config.gen)
        return _Case("app", (), _finalize_ids([app], register))
    if config.mix_dataset is not None and mix_roll < 0.5:
        candidates = _mix_candidates(config.mix_dataset)
        if candidates:
            corpus_id, handle, capability = rng.choice(candidates)
            synthetic = generate_app(
                config.seed,
                f"{index}.mix",
                config=config.gen,
                forced_share=(capability, handle, "mix"),
                budget=48,
            )
            return _Case(
                "mixed", (corpus_id,), _finalize_ids([synthetic], register)
            )
    apps = generate_cluster(config.seed, index, config=config.gen)
    return _Case("cluster", (), _finalize_ids(apps, register))


# ======================================================================
# The differential + metamorphic checks
# ======================================================================
def _violation_keys(environment) -> list[tuple[str, tuple[str, ...]]]:
    return sorted((v.property_id, v.devices) for v in environment.violations)


def _compare_runs(explicit, other, tag: str) -> str:
    """Disagreement description between the explicit oracle and one other
    backend run; "" = full agreement."""
    if _violation_keys(explicit) != _violation_keys(other):
        return (
            "violation sets differ: explicit="
            f"{_violation_keys(explicit)} {tag}={_violation_keys(other)}"
        )
    if explicit.checked_properties != other.checked_properties:
        return f"checked property lists differ ({tag})"
    for property_id, explicit_results in explicit.check_results.items():
        other_results = other.check_results.get(property_id, [])
        if len(explicit_results) != len(other_results):
            return f"{property_id}: formula counts differ ({tag})"
        for exp, got in zip(explicit_results, other_results):
            if exp.holds != got.holds:
                return (
                    f"{property_id}: verdicts differ on {exp.formula} "
                    f"(explicit={exp.holds}, {tag}={got.holds})"
                )
    return ""


def _differential(
    analyses: list[AppAnalysis],
    encoding: str = "auto",
    kernel: str = "auto",
    backend: str = "auto",
) -> tuple[int, str]:
    """Every backend/encoding/kernel over one environment; "" = agreement.

    The explicit checker is the oracle; each requested symbolic encoding
    (one of ``auto``/``monolithic``/``partitioned``, or both concrete
    encodings for ``"both"``) must match it on violation sets and on
    every per-formula verdict.  ``kernel="both"`` additionally runs every
    symbolic pass on the reference AND the fast BDD kernel, so each case
    cross-checks the kernels against the explicit oracle *and* against
    each other.  ``backend="both"`` adds a SAT (``bmc``) pass, making the
    case a three-way explicit/symbolic/BMC differential.
    """
    explicit = analyze_environment(list(analyses), backend="explicit")
    encodings = (
        ("monolithic", "partitioned") if encoding == "both" else (encoding,)
    )
    kernels = ("reference", "fast") if kernel == "both" else (kernel,)
    for chosen, chosen_kernel in (
        (enc, ker) for enc in encodings for ker in kernels
    ):
        symbolic = analyze_environment(
            list(analyses), backend="symbolic", encoding=chosen,
            kernel=chosen_kernel,
        )
        detail = _compare_runs(
            explicit, symbolic, f"symbolic/{symbolic.encoding}/{symbolic.kernel}"
        )
        if detail:
            return explicit.state_estimate, detail
    if backend == "both":
        bmc = analyze_environment(
            list(analyses),
            backend="bmc",
            encoding=encoding if encoding != "both" else "auto",
            kernel=kernel if kernel != "both" else "auto",
        )
        detail = _compare_runs(explicit, bmc, "bmc")
        if detail:
            return explicit.state_estimate, detail
    return explicit.state_estimate, ""


def _member_analyses(case: _Case) -> list[AppAnalysis]:
    analyses = [analyze_app(load_app(app_id)) for app_id in case.corpus_ids]
    analyses.extend(
        analyze_app(app.source, name=app.app_id) for app in case.apps
    )
    return analyses


def _sources_disagree(
    sources: list[str],
    encoding: str = "auto",
    kernel: str = "auto",
    backend: str = "auto",
) -> bool:
    """Shrink predicate for mismatch cases: do the backends still differ?"""
    try:
        analyses = [analyze_app(source) for source in sources]
        _estimate, detail = _differential(analyses, encoding, kernel, backend)
        return bool(detail)
    except Exception:
        return False


def _still_missed(property_id: str):
    """Shrink predicate factory for missed-injection cases."""

    def predicate(source: str) -> bool:
        try:
            return property_id not in analyze_app(source).violated_ids()
        except Exception:
            return False

    return predicate


def _check_case(index: int, config: FuzzConfig) -> CaseResult:
    # The case's synthetic apps are registered only for the duration of
    # the check: a long campaign (or a fleet run sharing the process)
    # must not accumulate thousands of one-shot registry entries.
    with scoped_registration():
        return _check_case_registered(index, config)


def _check_case_registered(index: int, config: FuzzConfig) -> CaseResult:
    case = _plan_case(index, config)
    ids = case.corpus_ids + tuple(app.app_id for app in case.apps)
    sources = tuple(app.source for app in case.apps)
    injected = tuple(pid for app in case.apps for pid in app.injected)
    base = dict(
        index=index, kind=case.kind, app_ids=ids, sources=sources,
        injected=injected, detected=(), corpus_ids=case.corpus_ids,
    )
    try:
        analyses = _member_analyses(case)
    except Exception as exc:
        result = CaseResult(
            **base, status="error",
            detail=f"pipeline error: {type(exc).__name__}: {exc}",
        )
        _shrink_result(result, config, case=case, error_type=type(exc).__name__)
        return result

    # Metamorphic oracle: each member's injected property must be flagged
    # by that member's own analysis.
    detected: list[str] = []
    missed: list[tuple[int, str]] = []
    offset = len(case.corpus_ids)
    for member, app in enumerate(case.apps):
        violated = analyses[offset + member].violated_ids()
        for pid in app.injected:
            if pid in violated:
                detected.append(pid)
            else:
                missed.append((member, pid))
    base["detected"] = tuple(detected)

    # Differential oracle over the environment.
    try:
        estimate, detail = _differential(
            analyses, config.encoding, config.kernel, config.backend
        )
    except Exception as exc:
        result = CaseResult(
            **base, status="error",
            detail=f"union checking error: {type(exc).__name__}: {exc}",
        )
        _shrink_result(result, config, case=case, error_type=type(exc).__name__)
        return result
    if estimate > EXPLICIT_CEILING:
        detail = detail or (
            f"state estimate {estimate} blew the fuzz ceiling "
            f"{EXPLICIT_CEILING} (generator budget bug)"
        )

    if detail:
        result = CaseResult(
            **base, status="mismatch", detail=detail, state_estimate=estimate
        )
    elif missed:
        listed = ", ".join(f"{ids[offset + m]}:{pid}" for m, pid in missed)
        result = CaseResult(
            **base, status="missed", state_estimate=estimate,
            detail=f"injected violations undetected: {listed}",
        )
    else:
        result = CaseResult(**base, status="ok", state_estimate=estimate)
    if not result.ok:
        _shrink_result(result, config, missed=missed, case=case)
    return result


def _same_error(
    error_type: str,
    corpus_sources: list[str],
    encoding: str = "auto",
    kernel: str = "auto",
    backend: str = "auto",
):
    """Shrink predicate factory for pipeline-error cases: does analyzing
    the candidate sources still raise the same exception type?"""

    def predicate(candidates: list[str]) -> bool:
        try:
            analyses = [
                analyze_app(source) for source in corpus_sources + candidates
            ]
            _differential(analyses, encoding, kernel, backend)
        except Exception as exc:
            return type(exc).__name__ == error_type
        return False

    return predicate


def _shrink_result(
    result: CaseResult,
    config: FuzzConfig,
    missed: list[tuple[int, str]] | None = None,
    case: _Case | None = None,
    error_type: str | None = None,
) -> None:
    """Attach minimal reproducer sources to a failing result."""
    if not config.shrink or not result.sources:
        return
    # Corpus members are not shrinkable sources; only generated apps are
    # minimized (corpus apps are referenced by id in the meta and kept as
    # fixed context while shrinking).
    protected = [app.protected_methods for app in (case.apps if case else [])]
    corpus_sources = [
        load_app(app_id).source for app_id in (case.corpus_ids if case else ())
    ]
    if result.status == "mismatch":

        def predicate(candidates: list[str]) -> bool:
            return _sources_disagree(
                corpus_sources + candidates,
                config.encoding,
                config.kernel,
                config.backend,
            )

        result.shrunk = tuple(
            shrink_cluster(list(result.sources), predicate, protected)
        )
    elif result.status == "error" and error_type is not None:
        result.shrunk = tuple(
            shrink_cluster(
                list(result.sources),
                _same_error(
                    error_type,
                    corpus_sources,
                    config.encoding,
                    config.kernel,
                    config.backend,
                ),
                protected,
            )
        )
    elif result.status == "missed" and missed and case is not None:
        shrunk = list(result.sources)
        for member, property_id in missed:
            app = case.apps[member]
            shrunk[member] = shrink_app(
                app.source,
                _still_missed(property_id),
                protected=app.protected_methods,
            )
        result.shrunk = tuple(shrunk)
    else:
        result.shrunk = result.sources


# ======================================================================
# The campaign driver
# ======================================================================
def _fuzz_worker(index: int, config: FuzzConfig) -> tuple[int, CaseResult]:
    return index, _check_case(index, config)


def run_fuzz(
    seed: int | str = 0,
    count: int = 25,
    jobs: int | None = None,
    config: FuzzConfig | None = None,
    out_dir: str | os.PathLike | None = None,
) -> FuzzReport:
    """Run one differential fuzz campaign.

    Fully deterministic in ``(seed, count, config)``: the same campaign
    generates byte-identical sources and identical verdicts regardless of
    ``jobs``.  Failing cases are shrunk and, when ``out_dir`` is given,
    persisted as replayable reproducers (see :func:`write_reproducer`).
    """
    if config is None:
        config = FuzzConfig(seed=seed, count=count)
    else:
        config = replace(config, seed=seed, count=count)

    payloads = [(index, config) for index in range(count)]
    worker_count = _resolve_jobs(jobs, len(payloads), min_parallel=2)
    results: dict[int, CaseResult] = {}
    if len(payloads) > 1 and worker_count > 1:
        results.update(run_in_pool(_fuzz_worker, payloads, worker_count))
    for index, _config in payloads:
        if index not in results:
            results[index] = _check_case(index, config)

    report = FuzzReport(
        config=config, results=[results[index] for index in range(count)]
    )
    if out_dir is not None:
        for result in report.failures():
            write_reproducer(result, config, out_dir)
    return report


def write_reproducer(
    result: CaseResult, config: FuzzConfig, out_dir: str | os.PathLike
) -> Path:
    """Persist one failing case as a replayable directory.

    Layout: ``case-<index>/app<k>.groovy`` (the shrunk sources) plus
    ``meta.json`` recording the verdict, injected properties, member ids
    (including corpus members, which are referenced by id rather than
    copied), and the campaign coordinates to regenerate the unshrunk
    case.  Replay with ``soteria fuzz --replay <dir>``.
    """
    directory = Path(out_dir) / f"case-{result.index}"
    directory.mkdir(parents=True, exist_ok=True)
    sources = result.shrunk or result.sources
    for member, source in enumerate(sources):
        (directory / f"app{member}.groovy").write_text(source, encoding="utf-8")
    meta = {
        "status": result.status,
        "detail": result.detail,
        "kind": result.kind,
        "seed": config.seed,
        "index": result.index,
        # Everything needed to regenerate the *unshrunk* case: rerun the
        # campaign with this exact configuration and look up the index.
        "config": {
            "count": config.count,
            "cluster_rate": config.cluster_rate,
            "mix_dataset": config.mix_dataset,
            "encoding": config.encoding,
            "kernel": config.kernel,
            "backend": config.backend,
        },
        "app_ids": list(result.app_ids),
        "corpus_members": list(result.corpus_ids),
        "injected": list(result.injected),
        "replay": "soteria fuzz --replay <this directory>",
    }
    (directory / "meta.json").write_text(
        json.dumps(meta, indent=2) + "\n", encoding="utf-8"
    )
    return directory


def replay(directory: str | os.PathLike) -> tuple[bool, str]:
    """Re-run the differential check over a persisted reproducer.

    Returns ``(reproduced, message)``: ``reproduced`` is True when the
    recorded failure still shows (backends disagree, or a recorded
    injected property is still undetected).
    """
    directory = Path(directory)
    sources = [
        path.read_text(encoding="utf-8")
        for path in sorted(directory.glob("app*.groovy"))
    ]
    meta: dict = {}
    meta_path = directory / "meta.json"
    if meta_path.is_file():
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    for corpus_id in reversed(meta.get("corpus_members", [])):
        try:
            sources.insert(0, load_app(corpus_id).source)
        except KeyError:
            return False, (
                f"meta.json names unknown corpus member {corpus_id!r}; "
                "cannot rebuild the environment"
            )
    if not sources:
        return False, f"no app*.groovy files under {directory}"

    encoding = meta.get("config", {}).get("encoding", "auto")
    kernel = meta.get("config", {}).get("kernel", "auto")
    backend = meta.get("config", {}).get("backend", "auto")
    try:
        analyses = [analyze_app(source) for source in sources]
    except Exception as exc:
        return True, f"pipeline error reproduced: {type(exc).__name__}: {exc}"
    try:
        _estimate, detail = _differential(analyses, encoding, kernel, backend)
    except Exception as exc:
        return True, f"union checking error reproduced: {type(exc).__name__}: {exc}"
    if detail:
        return True, f"backend disagreement reproduced: {detail}"
    union_violated = set()
    for analysis in analyses:
        union_violated |= analysis.violated_ids()
    still_missed = [
        pid for pid in meta.get("injected", []) if pid not in union_violated
    ]
    if meta.get("status") == "missed" and still_missed:
        return True, f"missed injection reproduced: {', '.join(still_missed)}"
    return False, "failure did not reproduce (backends agree on this input)"
