"""Soteria orchestrator: the four-stage pipeline of Fig. 3.

:func:`analyze_app` — single-app analysis: source -> IR -> state model ->
general-property checks at model construction -> CTL model checking of the
applicable app-specific properties.

:func:`analyze_environment` — multi-app analysis: per-app models, the
Algorithm-2 union model, general checks over the combined rule set, and
model checking on the union through one of two interchangeable backends:

* ``explicit`` — materialize the union product, build the Kripke
  structure, check with :class:`repro.mc.explicit.ExplicitChecker`;
* ``symbolic`` — compile the apps' rules to BDDs over shared attribute
  variables (:mod:`repro.model.encoder`) and check with
  :class:`repro.mc.symbolic.SymbolicModelChecker`, never enumerating the
  product;
* ``auto`` (default) — explicit while the domain-product estimate fits
  the budget (small models check faster explicitly and keep the Kripke
  structure around for callers), symbolic beyond it.

The symbolic backend additionally takes an ``encoding`` knob
(``monolithic`` | ``partitioned`` | ``auto``): the partitioned encoding
keeps the transition relation as a disjunctive fragment partition with
early quantification and is what checks the 82-app all-corpus union
(see :mod:`repro.model.encoder`).

All backends and encodings produce identical violation sets — the
differential test suite asserts per-formula agreement — so the choice is
purely a performance/scalability decision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ir import AppIR, build_ir
from repro.mc.explicit import CheckResult, ExplicitChecker
from repro.model import (
    StateModel,
    build_kripke,
    build_union_model,
    build_union_skeleton,
    estimate_union_states,
    extract_model,
)
from repro.model.encoder import ENCODINGS
from repro.model.extractor import StateExplosionError
from repro.model.kripke import KripkeStructure
from repro.platform.capabilities import CapabilityDatabase, default_database
from repro.platform.smartapp import SmartApp
from repro.properties.catalog import PropertyCatalog, Violation, default_catalog
from repro.properties.general import check_general_properties
from repro.properties.roles import device_roles, merge_roles

#: Union-state estimate beyond which the ``auto`` backend switches from
#: explicit to symbolic checking when no explicit budget is passed.  This
#: is the sweep engine's historical skip budget: every curated paper group
#: fits under it with room to spare, so ``auto`` keeps those on the (for
#: small models faster) explicit path and reserves BDDs for the clusters
#: the old budget used to reject.
AUTO_SYMBOLIC_THRESHOLD = 10_000

#: Recognized checker backends.
BACKENDS = ("auto", "explicit", "symbolic")


@dataclass
class AppAnalysis:
    """Everything Soteria derives from one app.

    ``kripke`` is None when the app was checked symbolically (a model
    whose domain product exceeds the extractor's explicit budget is never
    materialized — ``backend`` records which checker ran, and
    ``state_estimate`` the domain-product size either way).
    """

    app: SmartApp
    ir: AppIR
    model: StateModel
    kripke: KripkeStructure | None
    violations: list[Violation] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)
    check_results: dict[str, list[CheckResult]] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    backend: str = "explicit"
    state_estimate: int = 0

    def violated_ids(self) -> set[str]:
        return {v.property_id for v in self.violations}

    def has_violations(self) -> bool:
        return bool(self.violations)


@dataclass
class EnvironmentAnalysis:
    """Multi-app analysis over the union state model (Algorithm 2).

    ``kripke`` is populated by the explicit backend only: the symbolic
    backend never materializes the union product, so there is no explicit
    structure to hand out (``backend`` records which one ran, and
    ``state_estimate`` the domain-product size either way).
    """

    analyses: list[AppAnalysis]
    union_model: StateModel
    kripke: KripkeStructure | None
    violations: list[Violation] = field(default_factory=list)
    checked_properties: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    backend: str = "explicit"
    state_estimate: int = 0
    check_results: dict[str, list[CheckResult]] = field(default_factory=dict)
    #: Relation encoding the symbolic backend used (``monolithic`` or
    #: ``partitioned``); None when the explicit backend ran.
    encoding: str | None = None

    def multi_app_violations(self) -> list[Violation]:
        """Violations involving two or more apps (the Table 4 kind)."""
        return [v for v in self.violations if len(v.apps) > 1]

    def violated_ids(self) -> set[str]:
        return {v.property_id for v in self.violations}


# ======================================================================
def _validate_knobs(backend: str, encoding: str) -> None:
    """Fail fast on a misspelled knob — even when the value would never
    be consulted on this particular input (e.g. a small model resolving
    to the explicit backend must still reject a bogus encoding)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if encoding not in ENCODINGS:
        raise ValueError(
            f"unknown encoding {encoding!r}; expected one of {', '.join(ENCODINGS)}"
        )


def analyze_app(
    source: str | SmartApp,
    name: str | None = None,
    db: CapabilityDatabase | None = None,
    catalog: PropertyCatalog | None = None,
    abstract_numeric: bool = True,
    backend: str = "auto",
    encoding: str = "auto",
) -> AppAnalysis:
    """Run the full Soteria pipeline on a single app.

    ``backend`` picks the CTL checker: ``explicit`` materializes the
    Kripke structure (raising
    :class:`~repro.model.extractor.StateExplosionError` past the
    extractor budget, the pre-symbolic behaviour), ``symbolic`` compiles
    the app's rules to BDDs without enumerating a single state, and
    ``auto`` (the default) stays explicit while the model fits the budget
    and falls back to the symbolic checker when it does not — so no app
    is too wide to analyze.  ``encoding`` is the symbolic relation
    encoding (see :mod:`repro.model.encoder`).  The symbolic path leaves
    ``kripke`` as None and skips the determinism (DET) check, which is
    defined on materialized transitions.
    """
    _validate_knobs(backend, encoding)
    db = db or default_database()
    catalog = catalog or default_catalog()
    app = source if isinstance(source, SmartApp) else SmartApp.from_source(source, name)

    timings: dict[str, float] = {}
    start = time.perf_counter()
    ir = build_ir(app, db)
    timings["ir"] = time.perf_counter() - start

    start = time.perf_counter()
    chosen = "explicit" if backend == "auto" else backend
    model: StateModel | None = None
    if chosen == "explicit":
        try:
            model = extract_model(ir, db=db, abstract_numeric=abstract_numeric)
        except StateExplosionError:
            if backend == "explicit":
                raise
            chosen = "symbolic"  # auto: too wide to enumerate — go symbolic
    if model is None:
        model = extract_model(
            ir, db=db, abstract_numeric=abstract_numeric, materialize=False
        )
    timings["model"] = time.perf_counter() - start

    kripke: KripkeStructure | None = None
    if chosen == "explicit":
        start = time.perf_counter()
        kripke = build_kripke(model)
        timings["kripke"] = time.perf_counter() - start
        checker = ExplicitChecker(kripke)
        labels = kripke.labels
    else:
        from repro.mc.symbolic import SymbolicModelChecker
        from repro.model.encoder import SymbolicUnionModel

        start = time.perf_counter()
        # The union skeleton of one model is the model itself with
        # rule_origins populated; the empty ``written`` set keeps the
        # single-app fire-on-change semantics (no self-stimulation).
        skeleton = build_union_skeleton([model], db=db)
        checker = SymbolicModelChecker(
            SymbolicUnionModel(skeleton, encoding=encoding, written=frozenset())
        )
        timings["encode"] = time.perf_counter() - start
        labels = checker.labels

    analysis = AppAnalysis(
        app=app,
        ir=ir,
        model=model,
        kripke=kripke,
        timings=timings,
        backend=chosen,
        state_estimate=estimate_union_states([model]),
    )

    # General properties: checked at state-model construction.
    start = time.perf_counter()
    origins = [(app.name, s) for s in model.all_rules()]
    analysis.violations.extend(check_general_properties(origins, ir=ir, db=db))
    analysis.violations.extend(_determinism_violations(model))
    timings["general"] = time.perf_counter() - start

    # App-specific properties: CTL model checking.
    start = time.perf_counter()
    _check_app_specific(analysis, [ir], model, checker, labels, catalog)
    timings["properties"] = time.perf_counter() - start
    return analysis


def resolve_backend(
    backend: str, estimate: int, max_union_states: int | None = None
) -> str:
    """Pick the checker backend for a union of ``estimate`` product states.

    ``auto`` goes symbolic once the estimate exceeds the explicit budget
    (``max_union_states`` when given, else :data:`AUTO_SYMBOLIC_THRESHOLD`)
    — the clusters the old sweep skipped are exactly the ones the BDD
    backend exists for.  Explicit and symbolic are honored as-is.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend != "auto":
        return backend
    budget = max_union_states if max_union_states is not None else AUTO_SYMBOLIC_THRESHOLD
    return "symbolic" if estimate > budget else "explicit"


def analyze_environment(
    sources: list[str | SmartApp | AppAnalysis],
    db: CapabilityDatabase | None = None,
    catalog: PropertyCatalog | None = None,
    shared_devices: dict[tuple[str, str], str] | None = None,
    max_union_states: int | None = None,
    backend: str = "auto",
    encoding: str = "auto",
) -> EnvironmentAnalysis:
    """Analyze a group of apps installed together.

    Each element of ``sources`` may be raw Groovy source, a parsed
    :class:`SmartApp`, or a finished :class:`AppAnalysis` — precomputed
    analyses (e.g. from the corpus batch driver's caches) are reused
    as-is, so union construction skips the per-app pipeline entirely.

    ``backend`` selects the union checker: ``"explicit"``, ``"symbolic"``,
    or ``"auto"`` (the default — explicit under the state budget, symbolic
    above it; see :func:`resolve_backend`).  ``max_union_states`` caps the
    *explicit* union's state count (default: the
    :func:`repro.model.build_union_model` budget); crossing it with
    ``backend="explicit"`` raises
    :class:`~repro.model.extractor.StateExplosionError` before any state
    is enumerated, while ``auto`` switches to the symbolic backend, which
    has no budget because it never materializes states.

    ``encoding`` picks the symbolic backend's relation representation:
    ``monolithic`` (one fused relation BDD), ``partitioned`` (disjunctive
    partition, one cluster per app/event fragment, with early
    quantification — the encoding that scales to the all-corpus union),
    or ``auto`` (partitioned above
    :data:`repro.model.encoder.PARTITION_FRAGMENT_THRESHOLD` fragments).
    The resolved choice lands in :attr:`EnvironmentAnalysis.encoding`.
    """
    _validate_knobs(backend, encoding)
    db = db or default_database()
    catalog = catalog or default_catalog()
    analyses = [
        source if isinstance(source, AppAnalysis) else analyze_app(source, db=db, catalog=catalog)
        for source in sources
    ]

    models = [a.model for a in analyses]
    estimate = estimate_union_states(models, shared_devices)
    chosen = resolve_backend(backend, estimate, max_union_states)

    timings: dict[str, float] = {}
    kripke: KripkeStructure | None = None
    used_encoding: str | None = None
    if chosen == "explicit":
        start = time.perf_counter()
        union_kwargs = (
            {} if max_union_states is None else {"max_states": max_union_states}
        )
        union = build_union_model(
            models, db=db, shared_devices=shared_devices, **union_kwargs
        )
        timings["union"] = time.perf_counter() - start

        start = time.perf_counter()
        kripke = build_kripke(union)
        timings["kripke"] = time.perf_counter() - start
        checker = ExplicitChecker(kripke)
        labels = kripke.labels
    else:
        from repro.mc.symbolic import SymbolicModelChecker
        from repro.model.encoder import SymbolicUnionModel

        start = time.perf_counter()
        union = build_union_skeleton(models, db=db, shared_devices=shared_devices)
        timings["union"] = time.perf_counter() - start

        start = time.perf_counter()
        symbolic = SymbolicUnionModel(union, encoding=encoding)
        checker = SymbolicModelChecker(symbolic)
        timings["encode"] = time.perf_counter() - start
        labels = checker.labels
        used_encoding = symbolic.encoding

    environment = EnvironmentAnalysis(
        analyses=analyses,
        union_model=union,
        kripke=kripke,
        timings=timings,
        backend=chosen,
        state_estimate=estimate,
        encoding=used_encoding,
    )

    # General properties over the combined rule set.
    start = time.perf_counter()
    environment.violations.extend(check_general_properties(union.rule_origins))
    timings["general"] = time.perf_counter() - start

    # App-specific properties on the union model.
    start = time.perf_counter()
    irs = [a.ir for a in analyses]
    _check_app_specific(environment, irs, union, checker, labels, catalog)
    timings["properties"] = time.perf_counter() - start
    return environment


# ======================================================================
def _determinism_violations(model: StateModel) -> list[Violation]:
    pairs = model.nondeterministic_pairs()
    violations = []
    seen: set[tuple[str, str]] = set()
    for first, second in pairs:
        key = (first.event.label(), f"{first.target}|{second.target}")
        if key in seen:
            continue
        seen.add(key)
        violations.append(
            Violation(
                property_id="DET",
                apps=tuple(sorted({first.app, second.app})),
                description=(
                    f"nondeterministic model: event {first.event.label()} from "
                    f"{model.state_label(first.source)} reaches both "
                    f"{model.state_label(first.target)} and "
                    f"{model.state_label(second.target)}"
                ),
                via_reflection=first.via_reflection or second.via_reflection,
            )
        )
    return violations


def _check_app_specific(
    analysis: AppAnalysis | EnvironmentAnalysis,
    irs: list[AppIR],
    model: StateModel,
    checker,
    labels,
    catalog: PropertyCatalog,
) -> None:
    """Check the applicable catalog properties through any CTL backend.

    ``checker`` is anything with an explicit-compatible
    ``check(formula) -> CheckResult`` (the explicit checker or the
    symbolic model checker); ``labels`` maps witness states to their
    atomic propositions for violation diagnosis — the Kripke labelling
    for the explicit backend, the checker's decoded-state labels for the
    symbolic one.
    """
    device_map: dict[str, str] = {}
    for ir in irs:
        for perm in ir.devices():
            device_map.setdefault(perm.handle, perm.capability)
    roles = merge_roles([device_roles(ir) for ir in irs])
    capabilities = set(device_map.values())
    if model.attribute_index("location", "mode") is not None:
        capabilities.add("location-mode")

    app_names = tuple(model.apps)
    for spec in catalog.applicable(capabilities, roles):
        analysis.checked_properties.append(spec.id)
        results: list[CheckResult] = []
        seen_bindings: set[tuple[str, ...]] = set()
        for formula, binding in spec.formulas(model, device_map, roles):
            result = checker.check(formula)
            results.append(result)
            if result.holds:
                continue
            devices = tuple(sorted(binding.values()))
            if devices in seen_bindings:
                continue
            seen_bindings.add(devices)
            reflective = _counterexample_reflective(result, labels)
            trace = tuple(
                model.state_label(state.state) for state in result.counterexample
            )
            culprit_apps = _culprit_apps(result, labels) or app_names
            analysis.violations.append(
                Violation(
                    property_id=spec.id,
                    apps=culprit_apps,
                    description=f"{spec.description} (devices: {', '.join(devices)})",
                    formula=str(formula),
                    devices=devices,
                    via_reflection=reflective,
                    counterexample=trace,
                )
            )
        analysis.check_results[spec.id] = results


def _counterexample_reflective(result: CheckResult, labels) -> bool:
    """Did the violating step come only from reflective call targets?"""
    states = result.counterexample or result.failing_states[:1]
    if not states:
        return False
    final = states[-1]
    return "via-reflection" in labels.get(final, frozenset())


def _culprit_apps(result: CheckResult, labels) -> tuple[str, ...]:
    apps: set[str] = set()
    for state in result.counterexample:
        for prop in labels.get(state, frozenset()):
            if prop.startswith("app:"):
                apps.add(prop[4:])
    return tuple(sorted(apps))
