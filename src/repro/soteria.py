"""Soteria orchestrator: the four-stage pipeline of Fig. 3.

:func:`analyze_app` — single-app analysis: source -> IR -> state model ->
general-property checks at model construction -> CTL model checking of the
applicable app-specific properties.

:func:`analyze_environment` — multi-app analysis: per-app models, the
Algorithm-2 union model, general checks over the combined rule set, and
model checking on the union through interchangeable backends:

* ``explicit`` — materialize the union product, build the Kripke
  structure, check with :class:`repro.mc.explicit.ExplicitChecker`;
* ``symbolic`` — compile the apps' rules to BDDs over shared attribute
  variables (:mod:`repro.model.encoder`) and check with
  :class:`repro.mc.symbolic.SymbolicModelChecker`, never enumerating the
  product;
* ``bmc`` — answer with the SAT engines first: incremental bounded model
  checking over the same fragment semantics compiled to clauses
  (:mod:`repro.mc.cnf`), an IC3/PDR proof attempt for properties BMC
  cannot refute (:mod:`repro.mc.ic3`), and the BDD checker only when
  both are inconclusive;
* ``portfolio`` — race a shallow BMC pass against the BDD checker per
  formula; the first conclusive verdict wins
  (:class:`repro.mc.portfolio.PortfolioChecker`);
* ``auto`` (default) — explicit while the domain-product estimate fits
  the budget (small models check faster explicitly and keep the Kripke
  structure around for callers), symbolic beyond it.

The symbolic backend additionally takes an ``encoding`` knob
(``monolithic`` | ``partitioned`` | ``auto``): the partitioned encoding
keeps the transition relation as a disjunctive fragment partition with
early quantification and is what checks the 82-app all-corpus union
(see :mod:`repro.model.encoder`).

All backends and encodings produce identical violation sets — the
differential test suite asserts per-formula agreement — so the choice is
purely a performance/scalability decision.

Since the staged-pipeline refactor both functions are thin facades over
:class:`repro.pipeline.Pipeline`: every stage runs through the
content-addressed artifact store (:mod:`repro.pipeline.store`), so
repeated analyses of unchanged sources — including the per-app stages of
an environment whose members were analyzed before — replay from the
store instead of recomputing.  Signatures and results are unchanged.
"""

from __future__ import annotations

from repro.pipeline.results import AppAnalysis, EnvironmentAnalysis
from repro.pipeline.runner import default_pipeline
from repro.pipeline.stages import (
    AUTO_SYMBOLIC_THRESHOLD,
    BACKENDS,
    resolve_backend,
)
from repro.platform.capabilities import CapabilityDatabase
from repro.platform.smartapp import SmartApp
from repro.properties.catalog import PropertyCatalog, Violation

__all__ = [
    "AUTO_SYMBOLIC_THRESHOLD",
    "BACKENDS",
    "AppAnalysis",
    "EnvironmentAnalysis",
    "SmartApp",
    "Violation",
    "analyze_app",
    "analyze_environment",
    "resolve_backend",
]


def analyze_app(
    source: str | SmartApp,
    name: str | None = None,
    db: CapabilityDatabase | None = None,
    catalog: PropertyCatalog | None = None,
    abstract_numeric: bool = True,
    backend: str = "auto",
    encoding: str = "auto",
    kernel: str = "auto",
) -> AppAnalysis:
    """Run the full Soteria pipeline on a single app.

    ``backend`` picks the CTL checker: ``explicit`` materializes the
    Kripke structure (raising
    :class:`~repro.model.extractor.StateExplosionError` past the
    extractor budget, the pre-symbolic behaviour), ``symbolic`` compiles
    the app's rules to BDDs without enumerating a single state, and
    ``auto`` (the default) stays explicit while the model fits the budget
    and falls back to the symbolic checker when it does not — so no app
    is too wide to analyze.  ``encoding`` is the symbolic relation
    encoding (see :mod:`repro.model.encoder`) and ``kernel`` the BDD
    kernel backing it (``reference`` | ``fast`` | ``auto`` — see
    :mod:`repro.mc.kernel`).  The symbolic path leaves
    ``kripke`` as None and skips the determinism (DET) check, which is
    defined on materialized transitions — the skip is recorded in
    :attr:`AppAnalysis.skipped_properties`.
    """
    return default_pipeline().app_analysis(
        source,
        name=name,
        db=db,
        catalog=catalog,
        abstract_numeric=abstract_numeric,
        backend=backend,
        encoding=encoding,
        kernel=kernel,
    )


def analyze_environment(
    sources: list[str | SmartApp | AppAnalysis],
    db: CapabilityDatabase | None = None,
    catalog: PropertyCatalog | None = None,
    shared_devices: dict[tuple[str, str], str] | None = None,
    max_union_states: int | None = None,
    backend: str = "auto",
    encoding: str = "auto",
    kernel: str = "auto",
) -> EnvironmentAnalysis:
    """Analyze a group of apps installed together.

    Each element of ``sources`` may be raw Groovy source, a parsed
    :class:`SmartApp`, or a finished :class:`AppAnalysis` — precomputed
    analyses (e.g. from the corpus batch driver's caches) are reused
    as-is, so union construction skips the per-app pipeline entirely.
    Raw members are analyzed with the same ``backend``/``encoding``/
    ``kernel``/``db``/``catalog`` as the environment itself.

    ``backend`` selects the union checker: ``"explicit"``, ``"symbolic"``,
    ``"bmc"``/``"portfolio"`` (the SAT/BDD portfolio — see the module
    docstring), or ``"auto"`` (the default — explicit under the state
    budget, symbolic above it; see :func:`resolve_backend`).  ``max_union_states`` caps the
    *explicit* union's state count (default: the
    :func:`repro.model.build_union_model` budget); crossing it with
    ``backend="explicit"`` raises
    :class:`~repro.model.extractor.StateExplosionError` before any state
    is enumerated, while ``auto`` switches to the symbolic backend, which
    has no budget because it never materializes states.

    ``encoding`` picks the symbolic backend's relation representation:
    ``monolithic`` (one fused relation BDD), ``partitioned`` (disjunctive
    partition, one cluster per app/event fragment, with early
    quantification — the encoding that scales to the all-corpus union),
    or ``auto`` (partitioned above
    :data:`repro.model.encoder.PARTITION_FRAGMENT_THRESHOLD` fragments).
    The resolved choice lands in :attr:`EnvironmentAnalysis.encoding`.

    ``kernel`` picks the BDD engine behind the symbolic backend:
    ``fast`` (the array-backed default), ``reference`` (the dict-of-node
    oracle), or ``dd`` where the optional ``dd`` package is installed;
    ``auto`` resolves to ``fast``.  All kernels produce identical
    violation sets — the cross-kernel differential suite enforces it.
    The resolved choice lands in :attr:`EnvironmentAnalysis.kernel`.
    """
    return default_pipeline().environment_analysis(
        sources,
        db=db,
        catalog=catalog,
        shared_devices=shared_devices,
        max_union_states=max_union_states,
        backend=backend,
        encoding=encoding,
        kernel=kernel,
    )
