"""Concrete event-trace simulation over an extracted state model.

The state model's labelled transitions are deterministic by construction
(nondeterminism is reported as a violation at extraction time), so a
concrete event sequence induces a unique run.  Residual transition guards
(user-input comparisons the static analysis could not decide) are resolved
by a caller-provided oracle, defaulting to "condition holds".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.predicates import Atom
from repro.model.statemodel import State, StateModel, Transition
from repro.platform.events import Event


@dataclass(frozen=True)
class SimulationStep:
    """One fired event and its effect."""

    event: Event
    source: State
    target: State
    transitions: tuple[Transition, ...]   # rules that fired (may be several apps)

    @property
    def changed(self) -> bool:
        return self.source != self.target


@dataclass
class TraceResult:
    """Outcome of replaying a whole event trace."""

    initial: State
    steps: list[SimulationStep] = field(default_factory=list)

    @property
    def final(self) -> State:
        if self.steps:
            return self.steps[-1].target
        return self.initial

    def visited(self) -> list[State]:
        states = [self.initial]
        states.extend(step.target for step in self.steps)
        return states


#: Guard oracle: decides residual atoms at run time (True = holds).
GuardOracle = Callable[[Atom], bool]


def _default_oracle(_atom: Atom) -> bool:
    return True


class Simulator:
    """Replays events against a (deterministic) state model."""

    def __init__(
        self,
        model: StateModel,
        initial: State | None = None,
        oracle: GuardOracle | None = None,
    ) -> None:
        self.model = model
        if initial is None:
            initial = self._default_initial()
        if initial not in model.states:
            raise ValueError(f"initial state {initial!r} is not in the model")
        self.state: State = initial
        self.oracle = oracle or _default_oracle
        self._by_source: dict[State, list[Transition]] = {}
        for transition in model.transitions:
            self._by_source.setdefault(transition.source, []).append(transition)

    #: Conventional "rest" values per attribute (sensor quiet, nothing
    #: detected); attributes not listed default to their first domain value.
    _REST_VALUES = {
        "motion": "inactive",
        "water": "dry",
        "smoke": "clear",
        "carbonMonoxide": "clear",
        "contact": "closed",
        "acceleration": "inactive",
        "sound": "not detected",
        "tamper": "clear",
        "presence": "present",
        "sleeping": "not sleeping",
    }

    # ------------------------------------------------------------------
    def _default_initial(self) -> State:
        """A conventional rest state (quiet sensors, first actuator value)."""
        if not self.model.states:
            raise ValueError("model has no states")
        values = []
        for attr in self.model.attributes:
            rest = self._REST_VALUES.get(attr.attribute)
            if rest is not None and rest in attr.domain:
                values.append(rest)
            else:
                values.append(attr.domain[0])
        state = tuple(values)
        if state in set(self.model.states):
            return state
        return self.model.states[0]

    def applicable(self, event: Event) -> list[Transition]:
        """Transitions enabled by ``event`` from the current state."""
        found = []
        for transition in self._by_source.get(self.state, []):
            if not transition.event.matches(event) and not event.matches(
                transition.event
            ):
                continue
            if all(self.oracle(atom) for atom in transition.condition):
                found.append(transition)
        return found

    def fire(self, event: Event) -> SimulationStep:
        """Apply one event; returns the step taken (possibly a no-op)."""
        enabled = self.applicable(event)
        source = self.state
        if not enabled:
            step = SimulationStep(
                event=event, source=source, target=source, transitions=()
            )
            return step
        # Deterministic models agree on the target; with multiple apps the
        # transitions compose by applying each app's updates in turn.
        target = source
        fired: list[Transition] = []
        for transition in enabled:
            target = self._compose(target, transition)
            fired.append(transition)
        self.state = target
        return SimulationStep(
            event=event, source=source, target=target, transitions=tuple(fired)
        )

    def _compose(self, state: State, transition: Transition) -> State:
        """Apply a transition's attribute deltas to ``state``."""
        values = list(state)
        for index, (src_val, dst_val) in enumerate(
            zip(transition.source, transition.target)
        ):
            if src_val != dst_val:
                values[index] = dst_val
        return tuple(values)

    def run(self, events: list[Event]) -> TraceResult:
        """Replay a whole trace."""
        result = TraceResult(initial=self.state)
        for event in events:
            result.steps.append(self.fire(event))
        return result

    def reset(self, state: State | None = None) -> None:
        self.state = state if state is not None else self._default_initial()
