"""Runtime simulation and dynamic policy enforcement (extension).

Soteria is a static analyzer; its follow-on work (IoTGuard, NDSS'19, by the
same group) enforces the same policies *dynamically*.  This package is that
natural extension built on Soteria's artifacts:

* :class:`~repro.runtime.simulator.Simulator` replays concrete event traces
  against an extracted state model — the transition rules become an
  executable interpreter of the app;
* :class:`~repro.runtime.monitor.RuntimeMonitor` evaluates the AG-invariant
  slice of the property catalog on every prospective transition and blocks
  the handler actions that would enter a violating state.
"""

from repro.runtime.simulator import SimulationStep, Simulator, TraceResult
from repro.runtime.monitor import EnforcementDecision, RuntimeMonitor

__all__ = [
    "SimulationStep",
    "Simulator",
    "TraceResult",
    "EnforcementDecision",
    "RuntimeMonitor",
]
