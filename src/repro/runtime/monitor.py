"""Dynamic policy enforcement over simulated runs (IoTGuard-style).

The AG-invariant slice of Soteria's property catalog — formulas of the form
``AG phi`` with propositional ``phi`` over attribute/event/action labels —
can be enforced online: before committing a handler's transition, evaluate
``phi`` on the prospective target's label set and *block* the transition
when it fails, reporting which property would have been violated.

Formulas outside that slice (EF/AF response properties) cannot be decided
from a single prospective state and are left to the static checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mc import ctl
from repro.model.kripke import action_prop, event_prop
from repro.model.statemodel import State, StateModel, Transition
from repro.platform.events import Event
from repro.runtime.simulator import GuardOracle, SimulationStep, Simulator


@dataclass(frozen=True)
class EnforcementDecision:
    """Outcome of feeding one event through the monitor."""

    event: Event
    allowed: tuple[Transition, ...]
    blocked: tuple[tuple[Transition, str], ...]   # (transition, property id)
    state: State

    @property
    def intervened(self) -> bool:
        return bool(self.blocked)


def _propositional(formula: ctl.Formula) -> bool:
    """Is the formula free of temporal operators?"""
    if isinstance(formula, (ctl.Bool, ctl.Prop)):
        return True
    if isinstance(formula, ctl.Not):
        return _propositional(formula.operand)
    if isinstance(formula, (ctl.And, ctl.Or, ctl.Implies)):
        return _propositional(formula.left) and _propositional(formula.right)
    return False


def _evaluate(formula: ctl.Formula, labels: set[str]) -> bool:
    if isinstance(formula, ctl.Bool):
        return formula.value
    if isinstance(formula, ctl.Prop):
        return formula.name in labels
    if isinstance(formula, ctl.Not):
        return not _evaluate(formula.operand, labels)
    if isinstance(formula, ctl.And):
        return _evaluate(formula.left, labels) and _evaluate(formula.right, labels)
    if isinstance(formula, ctl.Or):
        return _evaluate(formula.left, labels) or _evaluate(formula.right, labels)
    if isinstance(formula, ctl.Implies):
        return (not _evaluate(formula.left, labels)) or _evaluate(
            formula.right, labels
        )
    raise TypeError(f"not propositional: {type(formula).__name__}")


def invariant_operand(formula: ctl.Formula) -> ctl.Formula | None:
    """The propositional body of an enforceable ``AG phi``, else None."""
    if isinstance(formula, ctl.AG) and _propositional(formula.operand):
        return formula.operand
    return None


class RuntimeMonitor:
    """Blocks transitions whose target state would violate a policy."""

    def __init__(
        self,
        model: StateModel,
        policies: list[tuple[str, ctl.Formula]],
        initial: State | None = None,
        oracle: GuardOracle | None = None,
    ) -> None:
        self.model = model
        self.simulator = Simulator(model, initial=initial, oracle=oracle)
        self.policies: list[tuple[str, ctl.Formula]] = []
        self.skipped: list[str] = []
        for property_id, formula in policies:
            operand = invariant_operand(formula)
            if operand is None:
                self.skipped.append(property_id)
            else:
                self.policies.append((property_id, operand))
        self.log: list[EnforcementDecision] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_analysis(cls, analysis, **kwargs) -> "RuntimeMonitor":
        """Build a monitor from an :class:`~repro.soteria.AppAnalysis` (or
        environment analysis), enforcing every checked catalog formula."""
        policies: list[tuple[str, ctl.Formula]] = []
        if hasattr(analysis, "check_results"):
            for property_id, results in analysis.check_results.items():
                for result in results:
                    policies.append((property_id, result.formula))
        model = getattr(analysis, "model", None) or analysis.union_model
        return cls(model, policies, **kwargs)

    # ------------------------------------------------------------------
    def _labels_for(self, transition: Transition, target: State) -> set[str]:
        labels: set[str] = set()
        for attr, value in zip(self.model.attributes, target):
            labels.add(f"attr:{attr.device}.{attr.attribute}={value}")
        labels.add(event_prop(transition.event.label()))
        labels.add(f"evkind:{transition.event.kind.value}")
        for action in transition.actions:
            prop = action_prop(action)
            if prop is not None:
                labels.add(prop)
        if transition.sends:
            labels.add("sent-notification")
        if transition.app:
            labels.add(f"app:{transition.app}")
        if transition.via_reflection:
            labels.add("via-reflection")
        return labels

    def _violates(self, transition: Transition, target: State) -> str | None:
        labels = self._labels_for(transition, target)
        for property_id, operand in self.policies:
            if not _evaluate(operand, labels):
                return property_id
        return None

    # ------------------------------------------------------------------
    def feed(self, event: Event) -> EnforcementDecision:
        """Process one event: apply safe transitions, block violating ones."""
        enabled = self.simulator.applicable(event)
        allowed: list[Transition] = []
        blocked: list[tuple[Transition, str]] = []
        state = self.simulator.state
        for transition in enabled:
            prospective = self.simulator._compose(state, transition)
            verdict = self._violates(transition, prospective)
            if verdict is None:
                allowed.append(transition)
                state = prospective
            else:
                blocked.append((transition, verdict))
        # The *event itself* (a sensor change) still happens even when the
        # handler's actions are blocked: move the event attribute.
        if blocked and not allowed:
            state = self._apply_event_only(state, event)
        self.simulator.state = state
        decision = EnforcementDecision(
            event=event,
            allowed=tuple(allowed),
            blocked=tuple(blocked),
            state=state,
        )
        self.log.append(decision)
        return decision

    def _apply_event_only(self, state: State, event: Event) -> State:
        if event.value is None:
            return state
        index = self.model.attribute_index(
            "location" if event.kind.value == "mode" else event.device,
            "mode" if event.kind.value == "mode" else event.attribute,
        )
        if index is None:
            return state
        if event.value not in self.model.attributes[index].domain:
            return state
        values = list(state)
        values[index] = event.value
        return tuple(values)

    def run(self, events: list[Event]) -> list[EnforcementDecision]:
        return [self.feed(event) for event in events]

    def interventions(self) -> list[EnforcementDecision]:
        return [d for d in self.log if d.intervened]
